# Shared shell helpers for CI jobs. Source, don't execute:
#
#   . scripts/ci_helpers.sh
#
# Everything here is deliberately jq-less. The one JSON reader CI needs
# is the repo's own `solve-client json-get`, which parses the line and
# resolves a dotted field path — unlike raw-substring greps (the old
# `grep -q '"threads":2'`), it cannot match the same bytes inside a
# string value or a differently-nested field.

# Release solve-client path; override before sourcing if yours differs.
: "${SOLVE_CLIENT:=./target/release/solve-client}"

# json_field PATH EXPECTED
#   Reads JSON lines on stdin and asserts that the value at dotted PATH
#   in every line equals EXPECTED (strings raw, everything else in the
#   engine's canonical rendering). Fails on a missing field, a
#   mismatch, or empty input.
json_field() {
  "$SOLVE_CLIENT" json-get "$1" --expect "$2" > /dev/null
}

# json_path PATH
#   Reads JSON lines on stdin and prints the value at dotted PATH, one
#   line per input line (strings print raw — a multi-line string stays
#   multi-line). Fails if the field is missing from any line.
json_path() {
  "$SOLVE_CLIENT" json-get "$1"
}

# wait_port LOGFILE [PID]
#   Polls LOGFILE (up to 30 s) for the server's machine-readable
#   `listening on HOST:PORT` line and prints the address:
#
#     addr=$(wait_port "$log" "$pid")
#
#   On timeout it emits a ::error:: annotation, dumps the log to stderr
#   (the server's own failure reason, if any, is in there), kills PID
#   when given, and returns 1 — so a hung server fails the job loudly
#   instead of timing out silently 20 minutes later.
wait_port() {
  _wp_log="$1"
  _wp_pid="${2:-}"
  for _wp_i in $(seq 150); do
    if grep -q "listening on" "$_wp_log" 2>/dev/null; then
      sed -n 's/^listening on //p' "$_wp_log" | head -1
      return 0
    fi
    sleep 0.2
  done
  echo "::error::server never became ready after 30s; log follows" >&2
  cat "$_wp_log" >&2 || true
  if [ -n "$_wp_pid" ]; then
    kill "$_wp_pid" 2>/dev/null || true
  fi
  return 1
}

# prom_family FAMILY FILE
#   Asserts the Prometheus text exposition in FILE has at least one
#   sample line for FAMILY (the family name at line start, followed by
#   a label set, a space, or a histogram suffix).
prom_family() {
  if ! grep -Eq "^$1(\\{| |_bucket|_sum|_count)" "$2"; then
    echo "missing Prometheus family: $1" >&2
    return 1
  fi
}

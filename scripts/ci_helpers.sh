# Shared shell helpers for CI jobs. Source, don't execute:
#
#   . scripts/ci_helpers.sh
#
# Everything here is deliberately jq-less. The one JSON reader CI needs
# is the repo's own `solve-client json-get`, which parses the line and
# resolves a dotted field path — unlike raw-substring greps (the old
# `grep -q '"threads":2'`), it cannot match the same bytes inside a
# string value or a differently-nested field.

# Release solve-client path; override before sourcing if yours differs.
: "${SOLVE_CLIENT:=./target/release/solve-client}"

# json_field PATH EXPECTED
#   Reads JSON lines on stdin and asserts that the value at dotted PATH
#   in every line equals EXPECTED (strings raw, everything else in the
#   engine's canonical rendering). Fails on a missing field, a
#   mismatch, or empty input.
json_field() {
  "$SOLVE_CLIENT" json-get "$1" --expect "$2" > /dev/null
}

# json_path PATH
#   Reads JSON lines on stdin and prints the value at dotted PATH, one
#   line per input line (strings print raw — a multi-line string stays
#   multi-line). Fails if the field is missing from any line.
json_path() {
  "$SOLVE_CLIENT" json-get "$1"
}

# prom_family FAMILY FILE
#   Asserts the Prometheus text exposition in FILE has at least one
#   sample line for FAMILY (the family name at line start, followed by
#   a label set, a space, or a histogram suffix).
prom_family() {
  if ! grep -Eq "^$1(\\{| |_bucket|_sum|_count)" "$2"; then
    echo "missing Prometheus family: $1" >&2
    return 1
  fi
}

//! The paper's headline result, live: FT-GMRES **runs through** a single
//! silent-data-corruption event of absurd magnitude (×10¹⁵⁰) in the inner
//! solver's orthogonalization phase, with and without the invariant-based
//! detector.
//!
//! ```sh
//! cargo run --release --example ft_gmres_run_through
//! ```

use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
use sdc_gmres::prelude::*;
use sdc_sparse::gallery;

fn main() {
    let a = gallery::poisson2d(50);
    let n = a.nrows();
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.par_spmv(&ones, &mut b);

    let base = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-8, max_outer: 60, ..Default::default() },
        inner_iters: 25,
        ..Default::default()
    };

    // Failure-free baseline.
    let (_, ff) = sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &base);
    println!("failure-free: {} outer iterations\n", ff.iterations);

    println!("injecting one SDC into h_1,j on the first MGS iteration of inner solve 2:");
    for class in FaultClass::all() {
        let point = CampaignPoint {
            aggregate_iteration: 25 + 3, // inner solve 2, iteration 3
            inner_per_outer: base.inner_iters,
            class,
            position: MgsPosition::First,
        };

        // Without detector: the fault is invisible, yet the outer
        // iteration still converges to the right answer.
        let inj = point.injector();
        let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &base, &inj);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        println!(
            "  {:<12} no detector : {:?} in {} outer (+{}) | error {err:.2e} | injected: {}",
            class.label(),
            rep.outcome,
            rep.iterations,
            rep.iterations.saturating_sub(ff.iterations),
            rep.injections.len()
        );

        // With detector: class-1 is caught and the inner solve restarted.
        let mut det_cfg = base;
        det_cfg.inner_detector =
            Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner));
        let inj = point.injector();
        let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &det_cfg, &inj);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        println!(
            "  {:<12} detector on : {:?} in {} outer (+{}) | error {err:.2e} | detected: {} | inner restarts: {}",
            class.label(),
            rep.outcome,
            rep.iterations,
            rep.iterations.saturating_sub(ff.iterations),
            rep.detected_anything(),
            rep.detector_restarts
        );
    }

    println!("\ntakeaway: the reliable outer iteration absorbs even a 1e150-scaled");
    println!("coefficient without rollback; the Eq.-3 bound catches every fault large");
    println!("enough to matter, and small faults are provably indistinguishable from");
    println!("legitimate data — and provably harmless to eventual convergence.");
}

//! Solving a severely ill-conditioned nonsymmetric circuit matrix — the
//! paper's second problem class — and what the §VI-D least-squares
//! policies do when the projected problem degenerates.
//!
//! ```sh
//! cargo run --release --example circuit_ill_conditioned
//! ```

use sdc_gmres::prelude::*;
use sdc_sparse::gallery::{circuit_mna, CircuitMnaConfig};
use sdc_sparse::structure;

fn main() {
    // A mid-sized instance of the mult_dcop_03 stand-in (DESIGN.md §3).
    let cfg = CircuitMnaConfig { nodes: 5000, seed: 1311, ..Default::default() };
    let mut a = circuit_mna(&cfg);
    println!(
        "synthetic circuit: {} nodes, {} nonzeros, ‖A‖_F = {:.3}",
        a.nrows(),
        a.nnz(),
        a.norm_fro()
    );
    println!(
        "  pattern symmetry score: {:.3} (1.0 = symmetric pattern)",
        structure::pattern_symmetry_score(&a)
    );
    println!("  structurally full rank: {}", structure::is_structurally_full_rank(&a));
    let d = a.diagonal();
    let dmax = d.iter().cloned().fold(0.0f64, f64::max);
    let dmin = d.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("  diagonal dynamic range: {:.1e} .. {:.1e} ({:.1e}x)", dmin, dmax, dmax / dmin);

    let n = a.nrows();
    let ones = vec![1.0; n];

    // Raw, unequilibrated: unpreconditioned Krylov stalls.
    let mut b = vec![0.0; n];
    a.par_spmv(&ones, &mut b);
    let ft = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-8, max_outer: 30, ..Default::default() },
        inner_iters: 25,
        ..Default::default()
    };
    let (_, rep) = sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &ft);
    println!(
        "\nraw matrix, FT-GMRES(25): {:?} after {} outer, true residual {:.2e}",
        rep.outcome,
        rep.iterations,
        rep.true_residual_norm.unwrap()
    );

    // Equilibrated (the §V "scale the linear system" move): tractable.
    let dscale: Vec<f64> = d.iter().map(|&v| 1.0 / v.abs().max(1e-300).sqrt()).collect();
    a.scale_rows(&dscale);
    a.scale_cols(&dscale);
    let mut b = vec![0.0; n];
    a.par_spmv(&ones, &mut b);
    let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &ft);
    let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    let bnorm = sdc_dense::vector::nrm2(&b);
    println!(
        "equilibrated, FT-GMRES(25): {:?} after {} outer, relative residual {:.2e}, max error {err:.2e}",
        rep.outcome,
        rep.iterations,
        rep.true_residual_norm.unwrap() / bnorm,
    );
    println!("  (error ≫ residual is the conditioning at work: κ ≳ 1e9 means a 1e-7 residual");
    println!("   only pins the solution to ~κ·1e-7 — the honest limit of any solver here)");

    // The robust projected-LSQ policy on the same solve.
    let mut robust = ft;
    robust.inner_lsq_policy = LstsqPolicy::RankRevealing { tol: 1e-12 };
    robust.outer.lsq_policy = LstsqPolicy::RankRevealing { tol: 1e-12 };
    let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &robust);
    let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    println!(
        "  + rank-revealing LSQ (§VI-D approach 3): {:?} after {} outer, max error {err:.2e}",
        rep.outcome, rep.iterations
    );
}

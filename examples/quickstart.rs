//! Quickstart: assemble a sparse system, solve it three ways, inspect
//! the reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sdc_gmres::prelude::*;
use sdc_sparse::gallery;

fn main() {
    // The paper's first test problem at a laptop-friendly size:
    // the 5-point Poisson operator on a 50x50 interior grid.
    let a = gallery::poisson2d(50);
    let n = a.nrows();
    println!("matrix: {} rows, {} nonzeros, ‖A‖_F = {:.2}", n, a.nnz(), a.norm_fro());

    // Right-hand side with known solution x* = 1.
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.par_spmv(&ones, &mut b);

    // 1. Plain GMRES.
    let cfg = GmresConfig { tol: 1e-10, max_iters: 300, ..Default::default() };
    let (x, rep) = gmres_solve(&a, &b, None, &cfg);
    report("GMRES", &x, &rep);

    // 2. CG — the matrix is SPD, so the cheaper solver applies too.
    let (x, rep) = cg_solve(&a, &b, None, &CgConfig { tol: 1e-10, max_iters: 1000 });
    report("CG", &x, &rep);

    // 3. FT-GMRES: reliable outer iteration, 25-iteration inner GMRES
    //    solves as the (sandboxed) preconditioner, SDC detector armed.
    let ft = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-10, max_outer: 40, ..Default::default() },
        inner_iters: 25,
        inner_detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner)),
        ..Default::default()
    };
    let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &ft);
    report("FT-GMRES", &x, &rep);
    println!(
        "  (outer iterations: {}, total inner iterations: {})",
        rep.iterations, rep.total_inner_iterations
    );
}

fn report(name: &str, x: &[f64], rep: &SolveReport) {
    let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    println!(
        "{name:>9}: {:?} in {} iterations | true residual {:.2e} | max error vs x*=1: {:.2e}",
        rep.outcome,
        rep.iterations,
        rep.true_residual_norm.unwrap_or(f64::NAN),
        err
    );
}

//! The campaign engine's run → kill → resume → report workflow, in
//! miniature and entirely through the library API.
//!
//! Runs a tiny strided Poisson campaign halfway, "kills" it (stops
//! after a unit budget and truncates a partial line, exactly what
//! `kill -9` mid-write leaves), resumes it, verifies the artifact is
//! byte-identical to an uninterrupted run, and renders the report from
//! the artifact alone.
//!
//! Run with: `cargo run --release --example campaign_workflow`

use sdc_repro::campaigns::{self, CampaignData, CampaignSpec, ProblemSpec, RunOptions};

fn main() {
    let spec = CampaignSpec {
        inner_iters: 8,
        outer_tol: 1e-8,
        outer_max: 60,
        stride: 5,
        ..CampaignSpec::paper_shape("walkthrough", vec![ProblemSpec::Poisson { m: 8 }])
    };
    let dir = std::env::temp_dir();
    let full = dir.join(format!("sdc_walkthrough_full_{}.jsonl", std::process::id()));
    let part = dir.join(format!("sdc_walkthrough_part_{}.jsonl", std::process::id()));
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&part).ok();
    let quiet = RunOptions { quiet: true, ..Default::default() };

    // 1. Uninterrupted reference run.
    let s = campaigns::run(&spec, &full, false, &quiet).expect("run");
    println!("uninterrupted: {} units -> {}", s.ran_units, full.display());

    // 2. "Killed" run: stop mid-campaign, tear the last line.
    let s = campaigns::run(
        &spec,
        &part,
        false,
        &RunOptions { quiet: true, max_units: Some(9), ..Default::default() },
    )
    .expect("partial run");
    println!("interrupted:   {} of {} units", s.ran_units, s.total_units);
    let bytes = std::fs::read(&part).expect("read partial");
    std::fs::write(&part, &bytes[..bytes.len() - 13]).expect("tear tail");

    // 3. Resume: completed units are skipped, the torn tail is repaired.
    let s = campaigns::run(&spec, &part, true, &quiet).expect("resume");
    println!("resumed:       {} skipped, {} ran", s.skipped_units, s.ran_units);
    assert_eq!(
        std::fs::read(&part).unwrap(),
        std::fs::read(&full).unwrap(),
        "resumed artifact must be byte-identical to the uninterrupted run"
    );
    println!("byte-identical: yes");

    // 4. Report from the artifact alone — no re-solving.
    let data = CampaignData::load(&part).expect("load artifact");
    println!("\n{}", campaigns::render_report(&data));

    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&part).ok();
}

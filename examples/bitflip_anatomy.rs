//! Anatomy of a bit flip: which of the 64 bits of an IEEE-754 double is
//! dangerous, which is detectable, which is noise — the quantitative form
//! of the paper's argument (§III-A-2) that bit flips are just one source
//! of numerical SDC.
//!
//! ```sh
//! cargo run --release --example bitflip_anatomy
//! ```

use sdc_faults::bitflip::{bitflip_anatomy, BitRegion};

fn main() {
    let reference = 3.7_f64; // a typical Hessenberg entry
    let bound = 446.0; // ‖A‖_F of the paper's Poisson matrix

    println!("flipping each bit of h = {reference} (detector bound ‖A‖_F = {bound}):\n");
    println!(" bit  region    corrupted value     |h'/h|        detector");
    println!(" ---  --------  ------------------  ------------  --------");
    for o in bitflip_anatomy(reference).iter().rev() {
        let region = match o.region {
            BitRegion::Sign => "sign    ",
            BitRegion::Exponent => "exponent",
            BitRegion::Mantissa => "mantissa",
        };
        let det = if o.detectable_by_bound(bound) { "CAUGHT" } else { "silent" };
        // Print the interesting rows: all exponent/sign bits, a few
        // mantissa bits.
        if o.bit >= 50 || o.bit <= 2 {
            println!(
                " {:>3}  {region}  {:>18.10e}  {:>12.3e}  {det}",
                o.bit, o.value, o.magnification
            );
        } else if o.bit == 26 {
            println!("  ..  mantissa  (bits 3..49: relative error between 2^-52 and 2^-3)  silent");
        }
    }

    let a = bitflip_anatomy(reference);
    let caught = a.iter().filter(|o| o.detectable_by_bound(bound)).count();
    let harmless = a
        .iter()
        .filter(|o| !o.detectable_by_bound(bound) && (o.magnification - 1.0).abs() < 0.5)
        .count();
    println!("\nof 64 possible single-bit flips:");
    println!("  {caught} are caught by the Eq.-3 bound (high exponent bits — the dangerous ones),");
    println!("  {harmless} change the value by <50% (small perturbations GMRES runs through),");
    println!(
        "  {} sit in between: undetectable but bounded — exactly the class the",
        64 - caught - harmless
    );
    println!("  flexible inner-outer iteration is proven to tolerate.");
}

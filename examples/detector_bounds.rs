//! The detector bound across matrix families: how tight is
//! `|h_ij| ≤ ‖A‖₂ ≤ ‖A‖_F` (Eq. 3) in practice, and what fraction of the
//! bit-flip space does each bound catch?
//!
//! ```sh
//! cargo run --release --example detector_bounds
//! ```

use sdc_faults::bitflip::{bitflip_anatomy, summarize_against_bound};
use sdc_gmres::arnoldi::arnoldi;
use sdc_gmres::ortho::OrthoStrategy;
use sdc_sparse::gallery::{self, CircuitMnaConfig};
use sdc_sparse::{norm_est, CsrMatrix};

fn analyze(name: &str, a: &CsrMatrix) {
    let n = a.nrows();
    let fro = a.norm_fro();
    let two = norm_est::norm2_est(a, 500, 1e-10).value;
    let v0: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.41).sin() + 0.6).collect();
    let dec = arnoldi(a, &v0, 25.min(n - 1), OrthoStrategy::Mgs);
    let hmax = dec.h.norm_max();

    // What does each bound catch of the 64 single-bit corruptions of a
    // typical coefficient?
    let typical = hmax * 0.5;
    let caught_fro = summarize_against_bound(&bitflip_anatomy(typical), fro).detectable;
    let caught_two = summarize_against_bound(&bitflip_anatomy(typical), two).detectable;

    println!(
        "{name:<28} ‖A‖₂≈{two:>9.3} ‖A‖_F={fro:>9.3} max|h|={hmax:>9.3} \
         slack(F)={:>7.1}x bits caught: F={caught_fro}/64 2-norm={caught_two}/64",
        fro / hmax.max(1e-300),
    );
}

fn main() {
    println!("Eq. 3 detector bounds: every fault-free |h_ij| must sit below both bounds.\n");
    analyze("poisson2d(60)", &gallery::poisson2d(60));
    analyze("poisson3d(14)", &gallery::poisson3d(14));
    analyze("convdiff(60, wind 4)", &gallery::convection_diffusion_2d(60, 4.0, 2.0));
    analyze("grcar(3600)", &gallery::grcar(3600, 3));
    analyze(
        "circuit_mna(3600)",
        &gallery::circuit_mna(&CircuitMnaConfig { nodes: 3600, seed: 7, ..Default::default() }),
    );
    analyze("sprand_spd(3600)", &gallery::sprand_spd(3600, 0.002, 3));
    println!();
    println!("‖A‖₂ is the tighter (stronger) detector; ‖A‖_F is cheaper to compute and");
    println!("still catches every corruption that could threaten the solver — Eq. 3");
    println!("guarantees zero false positives for both.");
}

//! Head-to-head: the paper's communication-free Hessenberg bound versus
//! Chen-style Online-ABFT (orthogonality checks + rollback, ref. [18]).
//!
//! The paper's position: "we develop invariants that require no
//! additional parallel communication and very little extra computation".
//! This example quantifies what each approach buys on the same faults.
//!
//! ```sh
//! cargo run --release --example abft_vs_bound
//! ```

use sdc_repro::faults::campaign::FaultClass;
use sdc_repro::faults::trigger::LoopPosition;
use sdc_repro::faults::{SingleFaultInjector, SitePredicate, Trigger};
use sdc_repro::prelude::*;
use sdc_repro::solvers::abft::{abft_gmres_solve, AbftGmresConfig};
use sdc_repro::solvers::gmres::{gmres_solve_instrumented, SiteContext};

fn main() {
    // A nonsymmetric problem where h_{1,j} coefficients are significant,
    // so that *small* faults actually matter.
    let a = gallery::convection_diffusion_2d(24, 3.0, 1.0);
    let n = a.nrows();
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.par_spmv(&ones, &mut b);
    let ctx = SiteContext { outer_iteration: 1, inner_solve: 1 };

    println!("convection-diffusion {n}x{n} | single fault at h_1,6 (first MGS of iteration 6)\n");
    println!(
        "{:<14} {:>22} {:>26}",
        "fault class", "Eq.3 bound (free)", "Online-ABFT (j dots/check)"
    );

    for class in FaultClass::all() {
        let trigger = Trigger::once(SitePredicate::mgs_site(1, 6, LoopPosition::First));

        // Paper's detector, record-only so both runs complete.
        let inj = SingleFaultInjector::new(class.model(), trigger);
        let gcfg = GmresConfig {
            tol: 1e-9,
            max_iters: 300,
            detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Record)),
            ..Default::default()
        };
        let (_, grep) = gmres_solve_instrumented(&a, &b, None, &gcfg, &inj, ctx);
        let bound_caught = !grep.detector_events.is_empty();

        // Online-ABFT with per-iteration checks.
        let inj = SingleFaultInjector::new(class.model(), trigger);
        let acfg =
            AbftGmresConfig { tol: 1e-9, max_iters: 400, check_every: 1, ..Default::default() };
        let (_, arep, stats) = abft_gmres_solve(&a, &b, None, &acfg, &inj, ctx);
        let abft_caught = stats.violations > 0;

        println!(
            "{:<14} {:>22} {:>26}",
            class.label(),
            format!("detected: {bound_caught}"),
            format!(
                "detected: {abft_caught} ({} dots, {} rollbacks)",
                stats.extra_dots, stats.rollbacks
            )
        );
        assert!(grep.outcome.is_converged() && arep.outcome.is_converged());
    }

    println!();
    println!("the bound check is free and catches exactly the theory-violating faults;");
    println!("the orthogonality audit also catches significant in-bound faults, but pays");
    println!("O(j) dot products (global reductions, in MPI terms) per check and needs");
    println!("rollback state. The paper's layered FT-GMRES makes the cheap option safe:");
    println!("whatever the bound misses, the reliable outer iteration runs through.");
}

//! The unified metrics registry: counters, gauges and log₂ histograms
//! on relaxed atomics, renderable as Prometheus text exposition format.
//!
//! Metrics are observability-only — no computation ever reads one — so
//! every update is a relaxed atomic RMW and reads never stop the world.
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones of the registered series; the [`Registry`] keeps the family
//! name, help text and label so [`Registry::render_prometheus`] can
//! walk everything in sorted order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket `i` counts observations
/// with value `< 2^i`; the last bucket is the overflow.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, active
/// connections) or only ratchet up (high-water marks, via
/// [`Gauge::set_max`]).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Ratchets the value up to at least `v` (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        let _ = self.0.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram (canonically microseconds). Bucketing is
/// identical to the server's original `LatencyHistogram`, so the
/// `stats` JSON it feeds is byte-for-byte unchanged by the migration.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

/// A point-in-time copy of a histogram's state.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` holds observations of bit length
    /// `i` (i.e. `< 2^i`), the last bucket overflows.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = (64 - v.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// A consistent-enough copy for rendering (relaxed reads).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.0.buckets) {
            *dst = src.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.0.count.load(Relaxed),
            sum: self.0.sum.load(Relaxed),
        }
    }

    /// Estimates the `p`-th percentile (0..=100); the estimate is the
    /// upper bound of the bucket the rank falls in.
    pub fn percentile(&self, p: f64) -> f64 {
        self.snapshot().percentile(p)
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum as f64 / self.count as f64
        } else {
            0.0
        }
    }

    /// Estimates the `p`-th percentile (0..=100) from the buckets; the
    /// estimate is the upper bound of the bucket the rank falls in.
    pub fn percentile(&self, p: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i) as f64;
            }
        }
        (1u64 << (HISTOGRAM_BUCKETS - 1)) as f64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: &'static str,
    kind: Kind,
    /// Series in registration order: `(label key/value, handle)`.
    /// Unlabeled families have exactly one series with `None`.
    series: Vec<(Option<(&'static str, &'static str)>, Handle)>,
}

/// A named collection of metric families.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        label: Option<(&'static str, &'static str)>,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family =
            families.entry(name).or_insert_with(|| Family { help, kind, series: Vec::new() });
        assert!(
            family.kind == kind,
            "metric '{name}' registered as both {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        if let Some(existing) = family.series.iter().find(|(l, _)| *l == label) {
            return existing.1.clone();
        }
        let handle = make();
        family.series.push((label, handle.clone()));
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        match self.register(name, help, Kind::Counter, None, || Handle::Counter(Counter::default()))
        {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) one labeled series of a counter family,
    /// e.g. `requests_total{kind="solve"}`.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Counter {
        match self.register(name, help, Kind::Counter, Some((key, value)), || {
            Handle::Counter(Counter::default())
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.register(name, help, Kind::Gauge, None, || Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a log₂ histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        match self
            .register(name, help, Kind::Histogram, None, || Handle::Histogram(Histogram::default()))
        {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every family as Prometheus text exposition format
    /// (families sorted by name, series sorted by label value).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            let mut series: Vec<_> = family.series.iter().collect();
            series.sort_by_key(|(label, _)| label.map(|(_, v)| v));
            for (label, handle) in series {
                let labels = match label {
                    Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
                    None => String::new(),
                };
                match handle {
                    Handle::Counter(c) => out.push_str(&format!("{name}{labels} {}\n", c.get())),
                    Handle::Gauge(g) => out.push_str(&format!("{name}{labels} {}\n", g.get())),
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        // The last bucket is the overflow: it has no
                        // finite upper bound, so it only appears in the
                        // `+Inf` bucket.
                        for (i, &c) in snap.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                            cumulative += c;
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                                1u64 << i
                            ));
                        }
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
                        out.push_str(&format!("{name}_sum {}\n", snap.sum));
                        out.push_str(&format!("{name}_count {}\n", snap.count));
                    }
                }
            }
        }
        out
    }

    /// Flattens every series to `(series name, value)` pairs, sorted:
    /// counters and gauges by value, histograms as `_count` and `_sum`.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (label, handle) in &family.series {
                let series = match label {
                    Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
                    None => name.to_string(),
                };
                match handle {
                    Handle::Counter(c) => out.push((series, c.get())),
                    Handle::Gauge(g) => out.push((series, g.get())),
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push((format!("{name}_count"), snap.count));
                        out.push((format!("{name}_sum"), snap.sum));
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_idempotent_registration() {
        let r = Registry::new();
        let c = r.counter("widgets_total", "Widgets made.");
        c.inc();
        c.add(4);
        // Re-registering returns the same underlying series.
        assert_eq!(r.counter("widgets_total", "Widgets made.").get(), 5);

        let g = r.gauge("depth", "Queue depth.");
        g.set(7);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 7);
        g.set(0);
        g.dec(); // saturates, no wrap
        assert_eq!(g.get(), 0);
        let peak = r.gauge("peak", "High-water mark.");
        peak.set_max(3);
        peak.set_max(1);
        assert_eq!(peak.get(), 3);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn histogram_matches_legacy_latency_semantics() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0.0, "empty histogram");
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the 3µs observations → bucket upper bound 4.
        assert_eq!(h.percentile(50.0), 4.0);
        // p99 is the slowest observation's bucket (5000 < 8192).
        assert_eq!(h.percentile(99.0), 8192.0);
        let snap = h.snapshot();
        assert_eq!(snap.sum, 1 + 3 * 3 + 2 * 100 + 5000);
        assert!((snap.mean() - snap.sum as f64 / 7.0).abs() < 1e-12);
        // Overflow lands in the last bucket.
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn prometheus_rendering_has_families_buckets_and_sorted_labels() {
        let r = Registry::new();
        r.labeled_counter("requests_total", "Requests by kind.", "kind", "solve").add(2);
        r.labeled_counter("requests_total", "Requests by kind.", "kind", "list").inc();
        r.gauge("queue_depth", "Current depth.").set(3);
        let h = r.histogram("latency_us", "Latency.");
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        // Families are sorted by name; labels by value.
        let latency_at = lines.iter().position(|l| *l == "# HELP latency_us Latency.").unwrap();
        let queue_at =
            lines.iter().position(|l| *l == "# HELP queue_depth Current depth.").unwrap();
        let req_at =
            lines.iter().position(|l| *l == "# HELP requests_total Requests by kind.").unwrap();
        assert!(latency_at < queue_at && queue_at < req_at, "{text}");
        assert!(text.contains("# TYPE latency_us histogram"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{kind=\"list\"} 1"));
        assert!(text.contains("requests_total{kind=\"solve\"} 2"));
        let list_at = lines.iter().position(|l| l.contains("kind=\"list\"")).unwrap();
        let solve_at = lines.iter().position(|l| l.contains("kind=\"solve\"")).unwrap();
        assert!(list_at < solve_at);
        // Histogram: cumulative buckets, +Inf equals count, sum exact.
        assert!(text.contains("latency_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("latency_us_bucket{le=\"128\"} 2"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_us_sum 103"));
        assert!(text.contains("latency_us_count 2"));
    }

    #[test]
    fn snapshot_flattens_series() {
        let r = Registry::new();
        r.counter("a_total", "").add(9);
        r.labeled_counter("b_total", "", "k", "x").inc();
        let h = r.histogram("lat_us", "");
        h.record(5);
        let snap = r.snapshot();
        assert!(snap.contains(&("a_total".to_string(), 9)));
        assert!(snap.contains(&("b_total{k=\"x\"}".to_string(), 1)));
        assert!(snap.contains(&("lat_us_count".to_string(), 1)));
        assert!(snap.contains(&("lat_us_sum".to_string(), 5)));
    }
}

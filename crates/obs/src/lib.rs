//! `sdc_obs`: the workspace observability spine.
//!
//! Every layer of the workspace — solvers, preconditioners, fault
//! injectors, the sparse engine, the work pool, the campaign executor
//! and the solve service — reports what it is doing through this crate,
//! and nothing in this crate is allowed to perturb what those layers
//! compute. Two ideas make that safe:
//!
//! 1. **Events are passive.** An [`Event`] is a named bag of typed
//!    fields handed to whatever [`Subscriber`] is installed; emission
//!    never feeds a value back into the caller. With no subscriber
//!    installed, [`enabled`] is a relaxed atomic load plus one
//!    thread-local read and call sites build nothing.
//! 2. **Channels separate logic from wall-clock.** Every [`Callsite`]
//!    is pinned to a [`Channel`]: [`Channel::Det`] events carry only
//!    logical fields (iteration numbers, residuals, injection sites)
//!    and are rendered to canonical JSONL whose bytes are a pure
//!    function of the computation — byte-diffable in CI like campaign
//!    artifacts. [`Channel::Timing`] events may carry durations, thread
//!    ids and scheduling accidents; they go to a sidecar that is never
//!    diffed.
//!
//! Subscribers come in two scopes: a process-wide global
//! ([`install_global`]) and a thread-local stack ([`with_local`]) used
//! for per-solve and per-campaign-unit capture. Metrics are a separate,
//! always-on surface: see [`metrics`].

pub mod flight;
pub mod metrics;
pub mod spanlog;
pub mod trace;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which trace channel a callsite's events belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// Deterministic: logical fields only, canonical JSONL, byte-diffed
    /// in CI. Bytes must be a pure function of spec + seed, independent
    /// of thread count and wall-clock.
    Det,
    /// Timing sidecar: durations, scheduling events, anything that can
    /// differ between runs. Never diffed.
    Timing,
}

/// A static identity for one emission point: its stable event name and
/// its channel. Declared once per site as a `static`, so the identity
/// of an event is a pointer to its callsite.
pub struct Callsite {
    /// Stable dotted event name, e.g. `"gmres.iter"`.
    pub name: &'static str,
    /// The channel every event from this site goes to.
    pub channel: Channel,
}

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, ordinals, bit patterns).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (residuals, bounds).
    F64(f64),
    /// Short string (labels, verdicts, format names).
    Str(String),
}

/// One structured event: a callsite plus its fields, in emission order.
pub struct Event {
    /// The static emission point.
    pub callsite: &'static Callsite,
    /// Field key/value pairs (keys are static, rendering sorts them).
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event at `callsite`. Call-sites should gate on
    /// [`enabled`] first so the field vector is never built when nobody
    /// is listening.
    pub fn new(callsite: &'static Callsite) -> Self {
        Self { callsite, fields: Vec::with_capacity(6) }
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, Value::I64(v)));
        self
    }

    /// Adds a floating-point field.
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, Value::F64(v)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, Value::Bool(v)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, Value::Str(v.into())));
        self
    }

    /// Hands the event to every installed subscriber.
    pub fn emit(self) {
        dispatch(&self);
    }
}

/// An event consumer. Implementations must tolerate concurrent calls
/// (the global subscriber sees events from every thread).
pub trait Subscriber: Send + Sync {
    /// Receives one event. Must not call back into solver code.
    fn event(&self, event: &Event);
}

static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<dyn Subscriber>>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
}

/// True when any subscriber (global or on this thread's local stack) is
/// installed. The no-subscriber fast path is one relaxed atomic load
/// and one thread-local check — call sites gate event construction on
/// this so tracing-off costs nothing measurable.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ON.load(Ordering::Relaxed) || LOCAL.with(|l| !l.borrow().is_empty())
}

/// Installs (or replaces) the process-wide subscriber.
pub fn install_global(sub: Arc<dyn Subscriber>) {
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = Some(sub);
    GLOBAL_ON.store(true, Ordering::Relaxed);
}

/// Removes the process-wide subscriber.
pub fn clear_global() {
    GLOBAL_ON.store(false, Ordering::Relaxed);
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Runs `f` with `sub` pushed on this thread's local subscriber stack.
/// Used for per-solve and per-campaign-unit capture: the subscriber
/// sees exactly the events emitted by `f` on this thread, and is popped
/// (panic-safely) when `f` returns.
pub fn with_local<R>(sub: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            LOCAL.with(|l| {
                l.borrow_mut().pop();
            });
        }
    }
    LOCAL.with(|l| l.borrow_mut().push(sub));
    let _guard = Guard;
    f()
}

thread_local! {
    static TRACE_CTX: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Process-global span-id allocator. Ids are only unique within one
/// process; cross-shard analysis keys spans by (span-log file, id).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Runs `f` with `id` as this thread's current trace id.
///
/// The trace id is pure correlation context: it is **never** injected
/// into deterministic-channel output (det bytes stay a pure function of
/// the computation). Context-aware subscribers — the span log, the
/// flight-recorder header — read it via [`current_trace`] at render
/// time and stamp it on their own sidecar records. Contexts nest and
/// pop panic-safely, mirroring [`with_local`].
pub fn with_trace<R>(id: impl Into<String>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            TRACE_CTX.with(|t| {
                t.borrow_mut().pop();
            });
        }
    }
    TRACE_CTX.with(|t| t.borrow_mut().push(id.into()));
    let _guard = Guard;
    f()
}

/// The innermost trace id installed on this thread, if any.
pub fn current_trace() -> Option<String> {
    TRACE_CTX.with(|t| t.borrow().last().cloned())
}

/// The id of the innermost open span on this thread (0 when none).
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Delivers an event to every local subscriber on this thread, then to
/// the global subscriber if one is installed.
pub fn dispatch(event: &Event) {
    LOCAL.with(|l| {
        for sub in l.borrow().iter() {
            sub.event(event);
        }
    });
    if GLOBAL_ON.load(Ordering::Relaxed) {
        let sub = GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(sub) = sub {
            sub.event(event);
        }
    }
}

/// A scope guard that emits a duration event on drop.
///
/// Spans are **timing-channel only**: a duration is wall-clock by
/// definition, so a span's callsite must be declared with
/// [`Channel::Timing`] (debug-asserted). Obtain one with [`span`]; it
/// returns `None` when no subscriber is installed, so the `Instant`
/// read is also skipped on the fast path.
pub struct SpanGuard {
    callsite: &'static Callsite,
    fields: Vec<(&'static str, Value)>,
    start: std::time::Instant,
    id: u64,
    parent: u64,
}

/// Opens a timing span at `callsite`; `None` when tracing is off.
///
/// Each span gets a process-unique id and records the id of the
/// innermost span already open on this thread as its parent (0 for a
/// root). The pair is emitted as `span`/`parent` fields on the closing
/// event, which is what lets `sdc_trace merge` rebuild the span tree
/// from a flat span log. Guards are scope-bound and must close in LIFO
/// order on the thread that opened them.
pub fn span(callsite: &'static Callsite) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    debug_assert!(
        callsite.channel == Channel::Timing,
        "span callsites must be Timing: durations are wall-clock ({})",
        callsite.name
    );
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Some(SpanGuard { callsite, fields: Vec::new(), start: std::time::Instant::now(), id, parent })
}

impl SpanGuard {
    /// Attaches an unsigned-integer field to the closing event.
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Attaches a string field to the closing event.
    pub fn str(&mut self, key: &'static str, v: impl Into<String>) -> &mut Self {
        self.fields.push((key, Value::Str(v.into())));
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert_eq!(popped, Some(self.id), "span guards must close in LIFO order");
        });
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("span", Value::U64(self.id)));
        fields.push(("parent", Value::U64(self.parent)));
        fields.push(("duration_us", Value::U64(self.start.elapsed().as_micros() as u64)));
        dispatch(&Event { callsite: self.callsite, fields });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static TEST_DET: Callsite = Callsite { name: "test.det", channel: Channel::Det };
    static TEST_TIMING: Callsite = Callsite { name: "test.timing", channel: Channel::Timing };

    // Tests observing `enabled()` share process-global state with the
    // global-subscriber test; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct CountingSub(AtomicUsize);
    impl Subscriber for CountingSub {
        fn event(&self, _: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_by_default_and_local_scope_enables() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let sub = Arc::new(CountingSub(AtomicUsize::new(0)));
        let n = with_local(sub.clone(), || {
            assert!(enabled());
            Event::new(&TEST_DET).u64("k", 1).emit();
            Event::new(&TEST_TIMING).u64("k", 2).emit();
            sub.0.load(Ordering::Relaxed)
        });
        assert_eq!(n, 2);
        assert!(!enabled());
        // After the scope, emissions go nowhere.
        Event::new(&TEST_DET).u64("k", 3).emit();
        assert_eq!(sub.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn local_stack_nests_and_pops_on_panic() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Arc::new(CountingSub(AtomicUsize::new(0)));
        let inner = Arc::new(CountingSub(AtomicUsize::new(0)));
        with_local(outer.clone(), || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_local(inner.clone(), || {
                    Event::new(&TEST_DET).emit();
                    panic!("boom")
                })
            }));
            assert!(res.is_err());
            // The inner subscriber was popped by the panic; only the
            // outer one sees this event.
            Event::new(&TEST_DET).emit();
        });
        assert_eq!(inner.0.load(Ordering::Relaxed), 1);
        assert_eq!(outer.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn global_subscriber_installs_and_clears() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sub = Arc::new(CountingSub(AtomicUsize::new(0)));
        install_global(sub.clone());
        assert!(enabled());
        Event::new(&TEST_DET).f64("x", 1.5).emit();
        clear_global();
        assert!(!enabled());
        Event::new(&TEST_DET).emit();
        assert_eq!(sub.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn span_emits_duration_on_drop_and_is_none_when_off() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(span(&TEST_TIMING).is_none());
        let sink = Arc::new(trace::TraceSink::new());
        with_local(sink.clone(), || {
            let mut s = span(&TEST_TIMING).expect("enabled");
            s.u64("pieces", 4).str("stage", "apply");
        });
        let timing = sink.timing_bytes();
        assert!(timing.contains("\"ev\":\"test.timing\""), "{timing}");
        assert!(timing.contains("\"duration_us\":"), "{timing}");
        assert!(timing.contains("\"pieces\":4"), "{timing}");
        assert!(sink.det_bytes().is_empty());
    }

    #[test]
    fn trace_context_nests_and_pops_on_panic() {
        assert_eq!(current_trace(), None);
        with_trace("outer", || {
            assert_eq!(current_trace().as_deref(), Some("outer"));
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_trace("inner", || {
                    assert_eq!(current_trace().as_deref(), Some("inner"));
                    panic!("boom")
                })
            }));
            assert!(res.is_err());
            assert_eq!(current_trace().as_deref(), Some("outer"));
        });
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn spans_link_parent_to_the_enclosing_span_on_this_thread() {
        let _lock = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(trace::TraceSink::new());
        with_local(sink.clone(), || {
            assert_eq!(current_span(), 0);
            let outer = span(&TEST_TIMING).expect("enabled");
            let outer_id = current_span();
            assert_ne!(outer_id, 0);
            {
                let _inner = span(&TEST_TIMING).expect("enabled");
                assert_ne!(current_span(), outer_id);
            }
            drop(outer);
            assert_eq!(current_span(), 0);
        });
        let timing = sink.timing_bytes();
        let lines: Vec<&str> = timing.lines().collect();
        assert_eq!(lines.len(), 2, "{timing}");
        // Inner closes first and names the outer as its parent; the
        // outer is a root (parent 0).
        let outer_id: u64 = lines[1]
            .split("\"span\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse().ok())
            .expect("outer span id");
        assert!(lines[0].contains(&format!("\"parent\":{outer_id}")), "{timing}");
        assert!(lines[1].contains("\"parent\":0"), "{timing}");
    }
}

//! The per-shard span log: every event this process emits, rendered to
//! one JSONL file with trace/span correlation stamped on.
//!
//! A [`SpanLog`] is installed as the *global* subscriber (`serve
//! --span-log PATH`), so it sees events from every thread: timing spans
//! (which already carry `span`/`parent` fields from their guards),
//! point events like `sched.batch` and `conn.state`, and mirrored
//! deterministic events (`gmres.iter`, `precond.apply`, …). At render
//! time it stamps two correlation fields read from the emitting
//! thread's context:
//!
//! - `trace`: the innermost [`crate::with_trace`] id, when present —
//!   this is how a client-assigned trace id reaches every record of the
//!   solve it named, *without* ever entering the deterministic channel
//!   (det bytes and response frames stay byte-identical with tracing on
//!   or off).
//! - `span`: the innermost open span's id, for point events emitted
//!   inside a span (span-closing events already carry their own id).
//!
//! ## File format (version 1)
//!
//! Line 1 is the meta header:
//!
//! ```json
//! {"ev":"spanlog.meta","format":1,"shard":0,"shards":2}
//! ```
//!
//! Every following line is one canonical event rendering (sorted keys,
//! same float formatting as the det channel) plus the correlation
//! fields above. Span ids are unique only within one process, so
//! cross-shard tools (`sdc_trace merge`) key spans by *(file, id)* and
//! use the header's `shard` to tag the joined tree. The log is a
//! timing-class artifact: it contains durations and scheduling
//! accidents and must never be byte-diffed.

use crate::{current_span, current_trace, Event, Subscriber, Value};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Span-log file format version, written to the meta header.
pub const FORMAT_VERSION: u64 = 1;

/// A global subscriber writing every event to one JSONL span log.
pub struct SpanLog {
    out: Mutex<BufWriter<File>>,
}

impl SpanLog {
    /// Creates `path` and writes the meta header identifying this
    /// process's shard (`shard`/`shards` as in `--shard i/n`; a
    /// standalone server writes `0/1`).
    pub fn create(path: &Path, shard: usize, shards: usize) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(
            w,
            "{{\"ev\":\"spanlog.meta\",\"format\":{FORMAT_VERSION},\"shard\":{shard},\"shards\":{shards}}}"
        )?;
        w.flush()?;
        Ok(Self { out: Mutex::new(w) })
    }
}

impl Subscriber for SpanLog {
    fn event(&self, event: &Event) {
        let mut extra: Vec<(&'static str, Value)> = Vec::with_capacity(2);
        if let Some(id) = current_trace() {
            extra.push(("trace", Value::Str(id)));
        }
        let span = current_span();
        if span != 0 {
            // Point events inherit the enclosing span; span-closing
            // events carry their own `span` field, which wins (the
            // merge in render drops colliding extras).
            extra.push(("span", Value::U64(span)));
        }
        let line = crate::trace::render_line_with(event, &extra);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        // Flush per line: the log must be complete when the process is
        // killed or a test reads it while the server still runs.
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, with_local, with_trace, Callsite, Channel};
    use std::sync::Arc;

    static POINT: Callsite = Callsite { name: "unit.point", channel: Channel::Det };
    static SPAN: Callsite = Callsite { name: "unit.span", channel: Channel::Timing };

    #[test]
    fn stamps_trace_and_span_context() {
        let dir = std::env::temp_dir().join(format!("sdc_spanlog_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("span.log");
        let log = Arc::new(SpanLog::create(&path, 1, 2).unwrap());
        with_local(log, || {
            with_trace("req-7", || {
                let _root = span(&SPAN);
                Event::new(&POINT).u64("i", 3).emit();
            });
            Event::new(&POINT).u64("i", 4).emit();
        });
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"ev\":\"spanlog.meta\",\"format\":1,\"shard\":1,\"shards\":2}");
        // The point event inside the span carries trace + inherited span.
        assert!(lines[1].contains("\"ev\":\"unit.point\""), "{text}");
        assert!(lines[1].contains("\"trace\":\"req-7\""), "{text}");
        assert!(lines[1].contains("\"span\":"), "{text}");
        // The closing span event keeps its own span id and parent 0.
        assert!(lines[2].contains("\"ev\":\"unit.span\""), "{text}");
        assert!(lines[2].contains("\"parent\":0"), "{text}");
        assert!(lines[2].contains("\"trace\":\"req-7\""), "{text}");
        // Outside the context: no stamps.
        assert!(!lines[3].contains("trace"), "{text}");
        assert!(!lines[3].contains("span\":"), "{text}");
    }
}

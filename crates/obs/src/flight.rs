//! The flight recorder: a fixed-size ring of the most recent events of
//! one solve, kept so a post-mortem can be written when the solve ends
//! badly (fault detection, solver error, panic, or the client vanishing
//! mid-solve).
//!
//! One [`FlightRecorder`] is created per solve and installed on the
//! executing thread's local subscriber stack next to the optional
//! [`crate::trace::TraceSink`]. Every det and timing event of the solve
//! is rendered into a preallocated ring slot; when the solve ends in
//! one of the dump conditions, [`FlightRecorder::dump`] emits a
//! canonical JSONL post-mortem: one `flight.header` line naming the
//! reason (plus trace id and loss accounting), then the retained events
//! oldest-first. Det lines are rendered by the exact same code path as
//! the det trace channel, so a post-mortem's det lines are byte-equal
//! to the corresponding window of a full `--trace-out` run.
//!
//! ## Memory ordering
//!
//! The ring is lock-free and allocation-free in steady state. Writes
//! claim the whole ring with one `swap(Acquire)` on the `busy` flag and
//! release it with a `store(Release)`; the `head` counter itself is
//! `Relaxed`. This is sound because:
//!
//! - There is exactly one writer by construction: the recorder lives on
//!   one thread's local subscriber stack ([`crate::with_local`] is
//!   thread-local, and pool-worker threads never see another thread's
//!   local sinks), so the CAS never spins — it is a cheap uncontended
//!   RMW. If a recorder is ever misused from two threads, a concurrent
//!   `event` finds `busy` set and *drops the event* (counted in
//!   `contended`) instead of racing on a slot — degraded, never UB.
//! - `dump` claims the same flag, so the Acquire/Release pair on `busy`
//!   is the only synchronization edge needed to make slot contents
//!   visible to a dumper on another thread; `head` is only ever read
//!   under that edge, which is why `Relaxed` suffices for it.
//! - Slot strings are preallocated and reused via
//!   [`crate::trace::render_line_into`]: after warm-up, recording an
//!   event performs zero heap allocation.

use crate::{Callsite, Channel, Event, Subscriber, Value};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Header callsite for post-mortem dumps (`{"ev":"flight.header",…}`).
pub static HEADER: Callsite = Callsite { name: "flight.header", channel: Channel::Timing };

/// Default ring capacity used by the server engine.
pub const DEFAULT_CAPACITY: usize = 256;

struct Slot {
    chan: Channel,
    line: String,
}

/// A fixed-capacity single-writer ring of rendered event lines.
pub struct FlightRecorder {
    slots: UnsafeCell<Vec<Slot>>,
    /// Total events ever recorded; the live window is the last
    /// `min(head, capacity)` of them at `head % capacity` offsets.
    head: AtomicUsize,
    /// Writer-exclusivity flag; see the module docs.
    busy: AtomicBool,
    /// Events dropped because the ring was busy (misuse indicator).
    contended: AtomicUsize,
    capacity: usize,
}

// SAFETY: all slot access (`event`, `dump`) is guarded by the `busy`
// flag: a thread either wins the swap and has exclusive access until
// its Release store, or backs off without touching the slots. See the
// module-level memory-ordering argument.
unsafe impl Sync for FlightRecorder {}
unsafe impl Send for FlightRecorder {}

impl FlightRecorder {
    /// A ring retaining the last `capacity` events. Slot strings start
    /// empty and grow to the longest line rendered into them.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        let slots =
            (0..capacity).map(|_| Slot { chan: Channel::Det, line: String::new() }).collect();
        Self {
            slots: UnsafeCell::new(slots),
            head: AtomicUsize::new(0),
            busy: AtomicBool::new(false),
            contended: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Total events recorded (including overwritten ones).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped to the single-writer guard (0 in correct use).
    pub fn contended(&self) -> usize {
        self.contended.load(Ordering::Relaxed)
    }

    /// Renders the post-mortem: the caller-built header event (reason,
    /// trace id, …) with loss accounting appended, then the retained
    /// events oldest-first, one canonical JSON line each.
    pub fn dump(&self, mut header: Event) -> String {
        while self.busy.swap(true, Ordering::Acquire) {
            // A mid-flight writer on another thread is misuse, but spin
            // briefly rather than lose the post-mortem.
            std::hint::spin_loop();
        }
        let recorded = self.head.load(Ordering::Relaxed);
        let kept = recorded.min(self.capacity);
        header.fields.push(("events", Value::U64(recorded as u64)));
        header.fields.push(("dropped", Value::U64((recorded - kept) as u64)));
        let mut out = crate::trace::render_line(&header);
        out.push('\n');
        // SAFETY: we hold the busy flag (exclusive access).
        let slots = unsafe { &*self.slots.get() };
        for i in (recorded - kept)..recorded {
            out.push_str(&slots[i % self.capacity].line);
            out.push('\n');
        }
        self.busy.store(false, Ordering::Release);
        out
    }
}

impl Subscriber for FlightRecorder {
    fn event(&self, event: &Event) {
        if self.busy.swap(true, Ordering::Acquire) {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let n = self.head.load(Ordering::Relaxed);
        // SAFETY: we hold the busy flag (exclusive access).
        let slots = unsafe { &mut *self.slots.get() };
        let slot = &mut slots[n % self.capacity];
        slot.chan = event.callsite.channel;
        crate::trace::render_line_into(event, &[], &mut slot.line);
        self.head.store(n + 1, Ordering::Relaxed);
        self.busy.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_local, Callsite};
    use std::sync::Arc;

    static DET: Callsite = Callsite { name: "unit.det", channel: Channel::Det };
    static TIMING: Callsite = Callsite { name: "unit.timing", channel: Channel::Timing };

    #[test]
    fn keeps_the_most_recent_events_and_accounts_losses() {
        let rec = Arc::new(FlightRecorder::new(4));
        with_local(rec.clone(), || {
            for i in 0..10u64 {
                Event::new(&DET).u64("i", i).emit();
            }
            Event::new(&TIMING).u64("us", 5).emit();
        });
        assert_eq!(rec.recorded(), 11);
        assert_eq!(rec.contended(), 0);
        let dump = rec.dump(Event::new(&HEADER).str("reason", "test"));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 5, "{dump}");
        assert_eq!(
            lines[0],
            "{\"dropped\":7,\"ev\":\"flight.header\",\"events\":11,\"reason\":\"test\"}"
        );
        // Oldest retained first, newest last.
        assert_eq!(lines[1], "{\"ev\":\"unit.det\",\"i\":7}");
        assert_eq!(lines[3], "{\"ev\":\"unit.det\",\"i\":9}");
        assert_eq!(lines[4], "{\"ev\":\"unit.timing\",\"us\":5}");
    }

    #[test]
    fn dump_lines_match_the_det_channel_rendering_exactly() {
        let rec = Arc::new(FlightRecorder::new(8));
        let sink = Arc::new(crate::trace::TraceSink::new());
        with_local(sink.clone(), || {
            with_local(rec.clone(), || {
                Event::new(&DET).f64("r", 0.5).str("s", "x\"y").emit();
            })
        });
        let dump = rec.dump(Event::new(&HEADER).str("reason", "test"));
        let det = sink.det_bytes();
        assert_eq!(dump.lines().nth(1).unwrap(), det.trim_end());
    }
}

//! The two-channel trace sink: canonical JSONL for the deterministic
//! channel, a free-form sidecar for timing.
//!
//! [`TraceSink`] is a [`Subscriber`] that renders every event to one
//! JSON line and appends it to the buffer of the event's channel. The
//! deterministic buffer's bytes are canonical — sorted keys, shortest
//! round-trip floats (the same algorithm as the campaign artifact
//! serializer) — so two runs of the same computation produce identical
//! bytes regardless of thread count, and CI can `cmp` them like any
//! other artifact. The timing buffer uses the same rendering but its
//! contents (durations, scheduling events) are inherently run-specific
//! and must never be diffed.

use crate::{Channel, Event, Subscriber, Value};
use std::sync::Mutex;

/// A subscriber that buffers rendered event lines per channel.
#[derive(Default)]
pub struct TraceSink {
    det: Mutex<String>,
    timing: Mutex<String>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The deterministic channel's bytes so far (newline-terminated
    /// JSONL; empty when no deterministic event fired).
    pub fn det_bytes(&self) -> String {
        self.det.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The deterministic channel as individual lines.
    pub fn det_lines(&self) -> Vec<String> {
        self.det_bytes().lines().map(String::from).collect()
    }

    /// The timing sidecar's bytes so far.
    pub fn timing_bytes(&self) -> String {
        self.timing.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drains both channels, returning `(det, timing)` and leaving the
    /// sink empty (for per-unit reuse).
    pub fn take(&self) -> (String, String) {
        let det = std::mem::take(&mut *self.det.lock().unwrap_or_else(|e| e.into_inner()));
        let timing = std::mem::take(&mut *self.timing.lock().unwrap_or_else(|e| e.into_inner()));
        (det, timing)
    }
}

impl Subscriber for TraceSink {
    fn event(&self, event: &Event) {
        let line = render_line(event);
        let buf = match event.callsite.channel {
            Channel::Det => &self.det,
            Channel::Timing => &self.timing,
        };
        let mut buf = buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.push_str(&line);
        buf.push('\n');
    }
}

/// Renders one event as a canonical JSON line (no trailing newline):
/// the event name under the `"ev"` key plus every field, keys sorted.
pub fn render_line(event: &Event) -> String {
    let mut out = String::with_capacity(64);
    render_line_into(event, &[], &mut out);
    out
}

/// [`render_line`] with caller-supplied correlation fields merged in
/// (the span log uses this to stamp `trace`/`span` context onto a line
/// without mutating the event). An extra key that collides with an
/// event field is dropped — the event's own value wins.
pub fn render_line_with(event: &Event, extra: &[(&'static str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    render_line_into(event, extra, &mut out);
    out
}

/// Renders into a caller-owned buffer (cleared first, capacity kept).
/// The flight recorder's steady-state zero-allocation claim rests on
/// this: ring slots are reused strings whose capacity converges to the
/// longest line seen.
pub fn render_line_into(event: &Event, extra: &[(&'static str, Value)], out: &mut String) {
    let mut pairs: Vec<(&str, &Value)> = event.fields.iter().map(|(k, v)| (*k, v)).collect();
    let name = Value::Str(event.callsite.name.to_string());
    pairs.push(("ev", &name));
    for (k, v) in extra {
        if !pairs.iter().any(|(pk, _)| pk == k) {
            pairs.push((k, v));
        }
    }
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    out.clear();
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(k, out);
        out.push(':');
        write_value(v, out);
    }
    out.push('}');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Str(s) => write_escaped(s, out),
    }
}

/// Shortest-round-trip float rendering, byte-compatible with the
/// campaign artifact serializer (`sdc_campaigns::json::fmt_f64`): this
/// crate sits below `sdc_campaigns` in the dependency graph, so the
/// algorithm is duplicated here rather than imported — the two are
/// pinned together by a test in `sdc_campaigns`.
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        return "NaN".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "Infinity".to_string() } else { "-Infinity".to_string() };
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral and exactly representable: print without exponent.
        // (-0.0 normalizes to 0 here, which parses back equal.)
        return format!("{}", x as i64);
    }
    format!("{x:e}")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Callsite;
    use std::sync::Arc;

    static DET: Callsite = Callsite { name: "unit.det", channel: Channel::Det };
    static TIMING: Callsite = Callsite { name: "unit.timing", channel: Channel::Timing };

    #[test]
    fn renders_sorted_canonical_lines() {
        let e = Event::new(&DET)
            .u64("zeta", 7)
            .f64("alpha", 0.5)
            .bool("mid", true)
            .str("label", "a\"b")
            .i64("neg", -3);
        let line = render_line(&e);
        assert_eq!(
            line,
            "{\"alpha\":5e-1,\"ev\":\"unit.det\",\"label\":\"a\\\"b\",\"mid\":true,\"neg\":-3,\"zeta\":7}"
        );
    }

    #[test]
    fn float_formatting_matches_campaign_convention() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-0.0), "0");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-12345.0), "-12345");
        assert_eq!(fmt_f64(0.5), "5e-1");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "Infinity");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
        // Round-trip exactness on an awkward value.
        let x = 0.1 + 0.2;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn sink_splits_channels_and_takes() {
        let sink = Arc::new(TraceSink::new());
        sink.event(&Event::new(&DET).u64("i", 1));
        sink.event(&Event::new(&TIMING).u64("us", 9));
        sink.event(&Event::new(&DET).u64("i", 2));
        assert_eq!(sink.det_lines().len(), 2);
        assert!(sink.det_bytes().ends_with('\n'));
        assert!(sink.timing_bytes().contains("\"us\":9"));
        assert!(!sink.det_bytes().contains("us"));
        let (det, timing) = sink.take();
        assert_eq!(det.lines().count(), 2);
        assert_eq!(timing.lines().count(), 1);
        assert!(sink.det_bytes().is_empty() && sink.timing_bytes().is_empty());
    }

    #[test]
    fn control_characters_escape() {
        let e = Event::new(&DET).str("s", "a\u{1}\tb");
        assert!(render_line(&e).contains("\\u0001\\tb"));
    }

    #[test]
    fn extra_fields_merge_sorted_and_never_override() {
        let e = Event::new(&DET).u64("i", 1);
        let line =
            render_line_with(&e, &[("trace", Value::Str("t-1".into())), ("i", Value::U64(9))]);
        assert_eq!(line, "{\"ev\":\"unit.det\",\"i\":1,\"trace\":\"t-1\"}");
    }

    #[test]
    fn render_into_reuses_the_buffer() {
        let mut buf = String::new();
        render_line_into(&Event::new(&DET).u64("long_field_name", 123456), &[], &mut buf);
        let cap = buf.capacity();
        render_line_into(&Event::new(&DET).u64("i", 1), &[], &mut buf);
        assert_eq!(buf, "{\"ev\":\"unit.det\",\"i\":1}");
        assert_eq!(buf.capacity(), cap);
    }
}

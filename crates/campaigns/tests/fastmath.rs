//! The fast-math kernel tier, end to end over the committed spec
//! (`specs/smoke_fastmath.json`).
//!
//! The tier is *not* bitwise-equal to strict — that is its point — but
//! it must be exactly reproducible on its own terms: deterministic
//! run-to-run, byte-identical across SIMD modes (the scalar body fuses
//! with `f64::mul_add`, the AVX2 body with `vfmadd`; both are correctly
//! rounded), and pinned by its **own** golden report, separate from the
//! strict smoke golden. Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sdc_campaigns --test fastmath
//! ```

use sdc_campaigns::{CampaignData, CampaignSpec, RunOptions};
use sdc_sparse::simd::{set_mode, test_mode_guard, SimdMode};
use std::path::{Path, PathBuf};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdc_fastmath_{}_{name}.jsonl", std::process::id()))
}

fn load_spec() -> CampaignSpec {
    let text =
        std::fs::read_to_string(repo_file("specs/smoke_fastmath.json")).expect("spec readable");
    CampaignSpec::parse(&text).expect("committed spec must parse")
}

#[test]
fn committed_spec_opts_into_the_tier() {
    let spec = load_spec();
    assert_eq!(spec.kernel_tier, sdc_sparse::KernelTier::FastMath);
    assert_eq!(spec.format, sdc_sparse::SparseFormat::Csr);
    // The tier survives the canonical round trip (it is non-default, so
    // it must appear in the serialized bytes).
    let line = spec.to_json().to_line();
    assert!(line.contains("\"kernel_tier\":\"fast_math\""), "{line}");
    assert_eq!(CampaignSpec::parse(&line).unwrap(), spec);
}

#[test]
fn fastmath_artifact_is_simd_mode_invariant_and_matches_golden() {
    let _guard = test_mode_guard();
    let spec = load_spec();
    let quiet = RunOptions { quiet: true, ..Default::default() };

    // Reference artifact under the forced scalar fallback.
    set_mode(SimdMode::Scalar).unwrap();
    let scalar_path = tmp("scalar");
    std::fs::remove_file(&scalar_path).ok();
    let summary = sdc_campaigns::run(&spec, &scalar_path, false, &quiet).unwrap();
    assert!(summary.is_complete());
    let scalar_bytes = std::fs::read(&scalar_path).unwrap();

    // The AVX2 fused kernel must reproduce it byte for byte: vfmadd and
    // f64::mul_add are both correctly rounded, so the tier's results are
    // host-independent even though they differ from strict.
    if set_mode(SimdMode::Avx2).is_ok() {
        let avx2_path = tmp("avx2");
        std::fs::remove_file(&avx2_path).ok();
        sdc_campaigns::run(&spec, &avx2_path, false, &quiet).unwrap();
        assert_eq!(
            std::fs::read(&avx2_path).unwrap(),
            scalar_bytes,
            "fast-math artifact must not depend on the SIMD mode"
        );
        std::fs::remove_file(&avx2_path).ok();
    }

    // The report is pinned by its own golden, separate from the strict
    // smoke golden.
    let data = CampaignData::load(&scalar_path).unwrap();
    assert!(data.is_complete());
    let report = sdc_campaigns::render_report(&data);
    let golden_path = repo_file("tests/golden/smoke_fastmath_report.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &report).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(report, golden, "report drifted from tests/golden/smoke_fastmath_report.txt");

    std::fs::remove_file(&scalar_path).ok();
}

//! The storage-format invariance contract: a campaign solved through
//! the SELL-C-σ engine emits exactly the bytes the CSR engine emits.
//! Only the artifact *header* may differ (it embeds the spec, which
//! names the format); every baseline, problem and experiment record —
//! residuals, iteration counts, detector events — must be identical,
//! because SELL SpMV is bitwise-equal to CSR SpMV by construction.

use sdc_campaigns::{run, CampaignSpec, RunOptions};
use sdc_sparse::SparseFormat;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdc_formats_{}_{name}.jsonl", std::process::id()))
}

fn smoke_spec() -> CampaignSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/smoke.json");
    CampaignSpec::parse(&std::fs::read_to_string(path).expect("committed smoke spec"))
        .expect("smoke spec parses")
}

/// Artifact lines after the header (which embeds the format axis).
fn records(spec: &CampaignSpec, name: &str) -> Vec<String> {
    let path = tmp(name);
    std::fs::remove_file(&path).ok();
    let opts = RunOptions { quiet: true, ..Default::default() };
    let summary = run(spec, &path, false, &opts).unwrap();
    assert!(summary.is_complete());
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<String> = text.lines().map(String::from).collect();
    assert!(lines[0].contains("\"kind\":\"header\""));
    lines[1..].to_vec()
}

#[test]
fn campaign_records_are_byte_identical_across_formats() {
    let base = smoke_spec();
    assert_eq!(base.format, SparseFormat::Auto, "committed smoke spec stays on auto");
    let reference = records(&base, "auto");
    assert!(!reference.is_empty());
    for fmt in [SparseFormat::Csr, SparseFormat::Sell] {
        let spec = CampaignSpec { format: fmt, ..base.clone() };
        let got = records(&spec, fmt.as_str());
        assert_eq!(
            got.len(),
            reference.len(),
            "format {fmt}: record count differs from the auto run"
        );
        for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "format {fmt}: record {i} differs");
        }
    }
}

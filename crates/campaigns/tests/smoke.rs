//! End-to-end smoke test over the committed spec
//! (`specs/smoke.json`): run → interrupt → resume → report, asserting
//! the resumed artifact is byte-identical to an uninterrupted run and
//! the report matches the committed golden summary
//! (`tests/golden/smoke_report.txt`).
//!
//! The CI smoke job drives the same spec and golden through the
//! `campaign` binary; this test keeps the contract enforced by plain
//! `cargo test` too. Regenerate the golden after an intentional format
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sdc_campaigns --test smoke
//! ```

use sdc_campaigns::{CampaignData, CampaignSpec, RunOptions};
use std::path::{Path, PathBuf};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdc_smoke_{}_{name}.jsonl", std::process::id()))
}

fn load_smoke_spec() -> CampaignSpec {
    let text = std::fs::read_to_string(repo_file("specs/smoke.json")).expect("spec readable");
    CampaignSpec::parse(&text).expect("committed spec must parse")
}

#[test]
fn committed_spec_parses_and_round_trips() {
    let spec = load_smoke_spec();
    assert_eq!(spec.name, "smoke");
    assert_eq!(spec.scenarios().len(), 8);
    let back = CampaignSpec::parse(&spec.to_json().to_line()).unwrap();
    assert_eq!(back, spec);
}

#[test]
fn det_trace_matches_the_committed_golden() {
    let _guard = sdc_parallel::test_serial_guard();
    // The deterministic trace of the committed smoke spec is part of the
    // repo's observable contract: any change to event names, fields, or
    // ordering shows up as a byte diff against this golden. The CI
    // trace-smoke job byte-diffs the same pair through the `campaign`
    // binary.
    let spec = load_smoke_spec();
    let art_path = tmp("trace_art");
    let trace_path = tmp("trace_det");
    std::fs::remove_file(&art_path).ok();
    std::fs::remove_file(&trace_path).ok();
    let opts =
        RunOptions { quiet: true, trace_out: Some(trace_path.clone()), ..Default::default() };
    let summary = sdc_campaigns::run(&spec, &art_path, false, &opts).unwrap();
    assert!(summary.is_complete());
    let trace = std::fs::read_to_string(&trace_path).unwrap();

    let golden_path = repo_file("tests/golden/smoke_trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &trace).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(trace, golden, "det trace drifted from tests/golden/smoke_trace.jsonl");

    std::fs::remove_file(&art_path).ok();
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn run_interrupt_resume_report_matches_golden() {
    let spec = load_smoke_spec();
    let quiet = RunOptions { quiet: true, ..Default::default() };

    // Uninterrupted reference run.
    let full_path = tmp("full");
    std::fs::remove_file(&full_path).ok();
    let summary = sdc_campaigns::run(&spec, &full_path, false, &quiet).unwrap();
    assert!(summary.is_complete());
    let full_bytes = std::fs::read(&full_path).unwrap();

    // Interrupted run: stop mid-campaign, then chop a partial record off
    // the tail (what a kill mid-write leaves), then resume to the end.
    let part_path = tmp("part");
    std::fs::remove_file(&part_path).ok();
    let interrupted = sdc_campaigns::run(
        &spec,
        &part_path,
        false,
        &RunOptions { quiet: true, max_units: Some(9), shard_size: 4, ..Default::default() },
    )
    .unwrap();
    assert!(!interrupted.is_complete());
    let bytes = std::fs::read(&part_path).unwrap();
    std::fs::write(&part_path, &bytes[..bytes.len() - 23]).unwrap();

    let resumed = sdc_campaigns::run(&spec, &part_path, true, &quiet).unwrap();
    assert!(resumed.is_complete());
    assert!(resumed.skipped_units > 0, "resume must reuse completed units");
    assert_eq!(
        std::fs::read(&part_path).unwrap(),
        full_bytes,
        "resumed artifact must be byte-identical to the uninterrupted run"
    );

    // A second resume is a byte-preserving no-op.
    let noop = sdc_campaigns::run(&spec, &part_path, true, &quiet).unwrap();
    assert_eq!(noop.ran_units, 0);
    assert_eq!(std::fs::read(&part_path).unwrap(), full_bytes);

    // The report is reconstructed from the artifact alone and must match
    // the committed golden summary byte for byte.
    let data = CampaignData::load(&full_path).unwrap();
    assert!(data.is_complete());
    let report = sdc_campaigns::render_report(&data);
    let golden_path = repo_file("tests/golden/smoke_report.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &report).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(report, golden, "report drifted from tests/golden/smoke_report.txt");

    std::fs::remove_file(&full_path).ok();
    std::fs::remove_file(&part_path).ok();
}

#[test]
fn report_numbers_match_live_solves() {
    // Acceptance check: the artifact-only report reproduces the
    // Figure-3-style sweep summary and the Table-1 numbers that a live
    // (re-solving) computation gives.
    let spec = load_smoke_spec();
    let path = tmp("live");
    std::fs::remove_file(&path).ok();
    sdc_campaigns::run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() })
        .unwrap();
    let data = CampaignData::load(&path).unwrap();

    // Table-1 numbers against a freshly built matrix.
    let p = spec.problems[0].build();
    let info = &data.problems[0];
    assert_eq!(info.rows, p.a.nrows());
    assert_eq!(info.cols, p.a.ncols());
    assert_eq!(info.nnz, p.a.nnz());
    assert_eq!(info.norm_fro.to_bits(), p.a.norm_fro().to_bits());

    // Sweep summary against the raw path.
    for (s, stored) in &data.series {
        let base = sdc_campaigns::failure_free(&p, &spec.baseline_config(s.lsq));
        let live = sdc_campaigns::run_sweep(
            &p,
            &spec.campaign_config(s),
            s.class,
            s.position,
            base.iterations,
        );
        assert_eq!(stored.failure_free_outer, live.failure_free_outer);
        assert_eq!(stored.max_outer(), live.max_outer());
        assert_eq!(stored.max_increase(), live.max_increase());
        assert_eq!(stored.count_no_penalty(), live.count_no_penalty());
        assert_eq!(stored.count_detected(), live.count_detected());
        assert_eq!(stored.count_failures(), live.count_failures());
    }
    std::fs::remove_file(&path).ok();
}

//! The campaign determinism contract under real parallelism: the JSONL
//! artifact must be byte-identical at every thread count, on the same
//! committed smoke spec the CI golden uses.

use sdc_campaigns::{run, CampaignSpec, RunOptions};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdc_threads_{}_{name}.jsonl", std::process::id()))
}

fn smoke_spec() -> CampaignSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/smoke.json");
    CampaignSpec::parse(&std::fs::read_to_string(path).expect("committed smoke spec"))
        .expect("smoke spec parses")
}

#[test]
fn artifact_bytes_identical_at_1_2_and_8_threads() {
    let _guard = sdc_parallel::test_serial_guard();
    let spec = smoke_spec();
    let opts = RunOptions { quiet: true, ..Default::default() };
    let mut artifacts: Vec<(usize, Vec<u8>)> = Vec::new();
    for t in [1usize, 2, 8] {
        sdc_parallel::set_threads(t);
        let path = tmp(&format!("t{t}"));
        std::fs::remove_file(&path).ok();
        let summary = run(&spec, &path, false, &opts).unwrap();
        assert!(summary.is_complete());
        artifacts.push((t, std::fs::read(&path).unwrap()));
        std::fs::remove_file(&path).ok();
    }
    sdc_parallel::set_threads(0);
    let (_, reference) = &artifacts[0];
    assert!(!reference.is_empty());
    for (t, bytes) in &artifacts[1..] {
        assert_eq!(bytes, reference, "artifact at {t} threads differs from the 1-thread artifact");
    }
}

#[test]
fn preconditioned_artifact_bytes_identical_at_1_and_4_threads() {
    let _guard = sdc_parallel::test_serial_guard();
    // The committed ILU(0) precond spec: the campaign determinism
    // contract must survive the preconditioned inner solves, whose
    // triangular sweeps and Chebyshev-style kernels run inside the
    // worker pool.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/smoke_precond.json");
    let spec = CampaignSpec::parse(&std::fs::read_to_string(path).expect("committed precond spec"))
        .expect("precond spec parses");
    assert_eq!(spec.precond, sdc_gmres::precond::PrecondKind::Ilu0);
    // The legacy smoke spec predates the precond axis: its canonical
    // serialization must not mention it (byte-stability of old specs).
    assert!(!smoke_spec().to_json().to_line().contains("precond"));

    let opts = RunOptions { quiet: true, ..Default::default() };
    let mut artifacts: Vec<(usize, Vec<u8>)> = Vec::new();
    for t in [1usize, 4] {
        sdc_parallel::set_threads(t);
        let path = tmp(&format!("precond_t{t}"));
        std::fs::remove_file(&path).ok();
        let summary = run(&spec, &path, false, &opts).unwrap();
        assert!(summary.is_complete());
        artifacts.push((t, std::fs::read(&path).unwrap()));
        std::fs::remove_file(&path).ok();
    }
    sdc_parallel::set_threads(0);
    let (_, reference) = &artifacts[0];
    assert!(!reference.is_empty());
    for (t, bytes) in &artifacts[1..] {
        assert_eq!(
            bytes, reference,
            "preconditioned artifact at {t} threads differs from the 1-thread artifact"
        );
    }
}

#[test]
fn det_trace_bytes_identical_at_1_2_and_8_threads() {
    let _guard = sdc_parallel::test_serial_guard();
    // The deterministic trace channel inherits the artifact's contract:
    // per-unit capture + append-in-unit-order makes the trace file a
    // pure function of the spec at any thread count.
    let spec = smoke_spec();
    let mut traces: Vec<(usize, Vec<u8>)> = Vec::new();
    for t in [1usize, 2, 8] {
        sdc_parallel::set_threads(t);
        let path = tmp(&format!("trace_art_t{t}"));
        let trace_path = tmp(&format!("trace_det_t{t}"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace_path).ok();
        let opts =
            RunOptions { quiet: true, trace_out: Some(trace_path.clone()), ..Default::default() };
        let summary = run(&spec, &path, false, &opts).unwrap();
        assert!(summary.is_complete());
        traces.push((t, std::fs::read(&trace_path).unwrap()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace_path).ok();
    }
    sdc_parallel::set_threads(0);
    let (_, reference) = &traces[0];
    assert!(!reference.is_empty());
    let text = String::from_utf8(reference.clone()).unwrap();
    for ev in ["campaign.unit", "gmres.iter", "fgmres.outer", "fault.inject"] {
        assert!(text.contains(&format!("\"ev\":\"{ev}\"")), "trace must contain {ev} events");
    }
    for (t, bytes) in &traces[1..] {
        assert_eq!(bytes, reference, "det trace at {t} threads differs from the 1-thread trace");
    }
}

#[test]
fn interrupt_and_resume_at_different_thread_counts_is_byte_identical() {
    let _guard = sdc_parallel::test_serial_guard();
    // Run to completion at 1 thread; run half at 8 threads, kill, and
    // resume at 3 — the patched-together artifact must still match.
    let spec = smoke_spec();
    let quiet = RunOptions { quiet: true, ..Default::default() };

    sdc_parallel::set_threads(1);
    let full_path = tmp("full");
    std::fs::remove_file(&full_path).ok();
    run(&spec, &full_path, false, &quiet).unwrap();
    let full = std::fs::read(&full_path).unwrap();
    std::fs::remove_file(&full_path).ok();

    let part_path = tmp("part");
    std::fs::remove_file(&part_path).ok();
    sdc_parallel::set_threads(8);
    let sum = run(
        &spec,
        &part_path,
        false,
        &RunOptions { quiet: true, max_units: Some(9), shard_size: 4, ..Default::default() },
    )
    .unwrap();
    assert!(!sum.is_complete());
    sdc_parallel::set_threads(3);
    let sum = run(&spec, &part_path, true, &quiet).unwrap();
    assert!(sum.is_complete());
    sdc_parallel::set_threads(0);

    assert_eq!(std::fs::read(&part_path).unwrap(), full);
    std::fs::remove_file(&part_path).ok();
}

//! The aggregation and report layer: everything here works from a stored
//! artifact alone — no solver runs, no matrices built.
//!
//! [`CampaignData::load`] reconstructs the spec, per-problem
//! characteristics, baselines and full [`SweepResult`] series from the
//! JSONL records. [`render_report`] turns that into the Figure-3-style
//! sweep summary plus a Table-1-style characteristics block, and
//! [`render_diff`] compares two artifacts series by series (e.g. a new
//! detector policy against a stored reference run).

use crate::artifact::{self, ArtifactError, Record};
use crate::json::fmt_f64;
use crate::spec::{CampaignSpec, LsqSpec, Scenario};
use crate::sweep::SweepResult;
use std::fmt::Write as _;
use std::path::Path;

/// Matrix characteristics recovered from a problem record.
#[derive(Clone, Debug, PartialEq)]
pub struct ProblemInfo {
    /// Index into the spec's problem list.
    pub index: usize,
    /// Display name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// `‖A‖_F` — the paper's safe detector bound.
    pub norm_fro: f64,
    /// `‖A‖₂` estimate, when the campaign recorded one.
    pub norm2_est: Option<f64>,
}

/// Everything an artifact holds, reassembled.
#[derive(Clone, Debug)]
pub struct CampaignData {
    /// The spec stored in the header.
    pub spec: CampaignSpec,
    /// One entry per problem record present.
    pub problems: Vec<ProblemInfo>,
    /// Baseline outer-iteration counts, in baseline-key order.
    pub baselines: Vec<((usize, LsqSpec), usize)>,
    /// One reconstructed series per scenario, in canonical scenario
    /// order; scenarios with no completed experiments yet have empty
    /// `points`.
    pub series: Vec<(Scenario, SweepResult)>,
    /// Experiment records present in the artifact.
    pub present_units: usize,
    /// Experiment records a complete run would hold (computable once all
    /// baselines are present; 0 beforehand).
    pub expected_units: usize,
}

impl CampaignData {
    /// Loads and reassembles an artifact.
    ///
    /// The file must start with a header record; otherwise it is not an
    /// artifact. A partial tail (killed run) is fine — the data is
    /// simply incomplete, as reported by [`CampaignData::is_complete`].
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let scan = artifact::scan(path)?;
        let mut records = scan.records.into_iter();
        let spec = match records.next() {
            Some(Record::Header { spec }) => spec,
            _ => {
                return Err(ArtifactError::Corrupt {
                    line: 1,
                    msg: "artifact must start with a header record".into(),
                })
            }
        };

        let scenarios = spec.scenarios();
        let mut problems = Vec::new();
        let mut baselines: Vec<((usize, LsqSpec), usize)> = Vec::new();
        let mut series: Vec<(Scenario, SweepResult)> = scenarios
            .iter()
            .map(|&s| {
                (
                    s,
                    SweepResult {
                        class: s.class,
                        position: s.position,
                        failure_free_outer: 0,
                        points: Vec::new(),
                    },
                )
            })
            .collect();
        let mut present_units = 0usize;

        for rec in records {
            match rec {
                Record::Header { .. } => {
                    return Err(ArtifactError::Corrupt {
                        line: 0,
                        msg: "duplicate header record".into(),
                    })
                }
                Record::Problem { index, name, rows, cols, nnz, norm_fro, norm2_est } => {
                    problems.push(ProblemInfo {
                        index,
                        name,
                        rows,
                        cols,
                        nnz,
                        norm_fro,
                        norm2_est,
                    });
                }
                Record::Baseline { problem, lsq, outer_iterations, .. } => {
                    baselines.push(((problem, lsq), outer_iterations));
                    for (s, r) in series.iter_mut() {
                        if s.problem == problem && s.lsq == lsq {
                            r.failure_free_outer = outer_iterations;
                        }
                    }
                }
                Record::Experiment { scenario, point, .. } => {
                    present_units += 1;
                    if let Some((_, r)) = series.iter_mut().find(|(s, _)| *s == scenario) {
                        r.points.push(point);
                    }
                }
            }
        }

        // Expected units are computable exactly once every baseline is
        // known: each scenario's domain is 1..=inner·ff stepped by stride.
        let keys = spec.baseline_keys();
        let expected_units = if keys.iter().all(|k| baselines.iter().any(|(bk, _)| bk == k)) {
            scenarios
                .iter()
                .map(|s| {
                    let ff = baselines
                        .iter()
                        .find(|(bk, _)| *bk == (s.problem, s.lsq))
                        .map(|(_, o)| *o)
                        .unwrap_or(0);
                    spec.unit_domain(ff).count()
                })
                .sum()
        } else {
            0
        };

        Ok(CampaignData { spec, problems, baselines, series, present_units, expected_units })
    }

    /// True when every expected experiment is present.
    pub fn is_complete(&self) -> bool {
        self.expected_units > 0 && self.present_units == self.expected_units
    }

    /// The reconstructed series for one scenario, if present.
    pub fn series_for(&self, scenario: &Scenario) -> Option<&SweepResult> {
        self.series.iter().find(|(s, _)| s == scenario).map(|(_, r)| r)
    }
}

fn scenario_line(s: &Scenario, r: &SweepResult) -> String {
    format!(
        "{}: points={} worst={} (+{}, {:.1}%) no-penalty={} detected={} failures={}",
        s.label(),
        r.points.len(),
        r.max_outer(),
        r.max_increase(),
        r.pct_increase(),
        r.count_no_penalty(),
        r.count_detected(),
        r.count_failures()
    )
}

/// Renders the full report: completeness, Table-1-style characteristics,
/// baselines, one summary line per series, and the §VII-E rollup.
pub fn render_report(data: &CampaignData) -> String {
    let mut out = String::new();
    let status = if data.is_complete() {
        "complete".to_string()
    } else if data.expected_units == 0 {
        format!("{} experiments, preamble incomplete", data.present_units)
    } else {
        format!("INCOMPLETE: {}/{} experiments", data.present_units, data.expected_units)
    };
    writeln!(out, "=== campaign '{}' ({status}) ===", data.spec.name).unwrap();
    writeln!(
        out,
        "spec: {} problem(s), {} scenario(s), inner_iters={}, outer_tol={}, stride={}, seed={}",
        data.spec.problems.len(),
        data.series.len(),
        data.spec.inner_iters,
        fmt_f64(data.spec.outer_tol),
        data.spec.stride,
        data.spec.seed
    )
    .unwrap();

    writeln!(out, "\n-- matrix characteristics (Table 1) --").unwrap();
    for p in &data.problems {
        writeln!(out, "problem {}: {}", p.index, p.name).unwrap();
        writeln!(out, "  rows x cols : {} x {}", p.rows, p.cols).unwrap();
        writeln!(out, "  nonzeros    : {}", p.nnz).unwrap();
        writeln!(out, "  ||A||_F     : {}", fmt_f64(p.norm_fro)).unwrap();
        match p.norm2_est {
            Some(n2) => writeln!(out, "  ||A||_2 est : {}", fmt_f64(n2)).unwrap(),
            None => writeln!(out, "  ||A||_2 est : (not recorded)").unwrap(),
        }
    }

    writeln!(out, "\n-- fault-free baselines --").unwrap();
    for ((problem, lsq), outer) in &data.baselines {
        writeln!(out, "problem {problem}, lsq={}: {outer} outer iterations", lsq.label()).unwrap();
    }

    writeln!(out, "\n-- sweep series --").unwrap();
    for (s, r) in &data.series {
        if r.points.is_empty() {
            writeln!(out, "{}: (no experiments yet)", s.label()).unwrap();
        } else {
            writeln!(out, "{}", scenario_line(s, r)).unwrap();
        }
    }

    // §VII-E rollup, per problem: worst case with/without the detector.
    writeln!(out, "\n-- worst-case summary (paper \u{a7}VII-E) --").unwrap();
    for p in &data.problems {
        let undetected: Vec<&SweepResult> = data
            .series
            .iter()
            .filter(|(s, r)| {
                s.problem == p.index
                    && s.detector == crate::spec::DetectorPolicy::Off
                    && !r.points.is_empty()
            })
            .map(|(_, r)| r)
            .collect();
        let detected: Vec<&SweepResult> = data
            .series
            .iter()
            .filter(|(s, r)| {
                s.problem == p.index
                    && s.detector != crate::spec::DetectorPolicy::Off
                    && !r.points.is_empty()
            })
            .map(|(_, r)| r)
            .collect();
        let ff = undetected.first().or(detected.first()).map(|r| r.failure_free_outer).unwrap_or(0);
        writeln!(out, "problem {}: failure-free = {ff} outer", p.index).unwrap();
        if let Some(worst) = undetected.iter().map(|r| r.max_outer()).max() {
            writeln!(
                out,
                "  worst case, no detector : {worst} (+{}, {:.1}%)",
                worst.saturating_sub(ff),
                100.0 * worst.saturating_sub(ff) as f64 / ff.max(1) as f64
            )
            .unwrap();
        }
        if let Some(worst) = detected.iter().map(|r| r.max_outer()).max() {
            writeln!(
                out,
                "  worst case, detector on : {worst} (+{}, {:.1}%)",
                worst.saturating_sub(ff),
                100.0 * worst.saturating_sub(ff) as f64 / ff.max(1) as f64
            )
            .unwrap();
        }
        let failures: usize =
            undetected.iter().chain(detected.iter()).map(|r| r.count_failures()).sum();
        writeln!(out, "  non-converged experiments: {failures}").unwrap();
    }
    out
}

/// Renders a cross-run diff: series present in both artifacts are
/// compared point by point; series unique to one side are listed.
pub fn render_diff(a: &CampaignData, b: &CampaignData) -> String {
    let mut out = String::new();
    writeln!(out, "=== diff: '{}' vs '{}' ===", a.spec.name, b.spec.name).unwrap();
    let mut identical = 0usize;
    for (s, ra) in &a.series {
        match b.series_for(s) {
            None => {
                writeln!(out, "only in '{}': {}", a.spec.name, s.label()).unwrap();
            }
            Some(rb) => {
                let n = ra.points.len().min(rb.points.len());
                let mut changed_outer = 0usize;
                let mut changed_residual = 0usize;
                for (pa, pb) in ra.points[..n].iter().zip(rb.points[..n].iter()) {
                    if pa.outer_iterations != pb.outer_iterations {
                        changed_outer += 1;
                    }
                    if pa.true_rel_residual.to_bits() != pb.true_rel_residual.to_bits() {
                        changed_residual += 1;
                    }
                }
                let len_note = if ra.points.len() != rb.points.len() {
                    format!(" point-count {} -> {}", ra.points.len(), rb.points.len())
                } else {
                    String::new()
                };
                if changed_outer == 0 && changed_residual == 0 && len_note.is_empty() {
                    identical += 1;
                } else {
                    writeln!(
                        out,
                        "{}:{len_note} outer-changed {changed_outer}/{n}, \
                         residual-changed {changed_residual}/{n}, \
                         worst {} -> {} (ff {} -> {})",
                        s.label(),
                        ra.max_outer(),
                        rb.max_outer(),
                        ra.failure_free_outer,
                        rb.failure_free_outer
                    )
                    .unwrap();
                }
            }
        }
    }
    for (s, _) in &b.series {
        if a.series_for(s).is_none() {
            writeln!(out, "only in '{}': {}", b.spec.name, s.label()).unwrap();
        }
    }
    writeln!(out, "identical series: {identical}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, RunOptions};
    use crate::spec::{CampaignSpec, DetectorPolicy, ProblemSpec};
    use std::path::PathBuf;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            inner_iters: 8,
            outer_tol: 1e-8,
            outer_max: 60,
            stride: 5,
            ..CampaignSpec::paper_shape("tiny-report", vec![ProblemSpec::Poisson { m: 8 }])
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sdc_report_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn reconstruction_matches_live_sweep() {
        use crate::sweep::{failure_free, run_sweep};
        let spec = tiny_spec();
        let path = tmp("reconstruct");
        std::fs::remove_file(&path).ok();
        run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() }).unwrap();

        let data = CampaignData::load(&path).unwrap();
        assert!(data.is_complete());

        // Every reconstructed series equals the raw-path sweep.
        let p = spec.problems[0].build();
        for (s, reconstructed) in &data.series {
            let cfg = spec.campaign_config(s);
            let base_cfg = spec.baseline_config(s.lsq);
            let ff = failure_free(&p, &base_cfg);
            let reference = run_sweep(&p, &cfg, s.class, s.position, ff.iterations);
            assert_eq!(reconstructed.failure_free_outer, reference.failure_free_outer);
            assert_eq!(reconstructed.points.len(), reference.points.len());
            for (a, b) in reconstructed.points.iter().zip(reference.points.iter()) {
                assert_eq!(a.aggregate, b.aggregate);
                assert_eq!(a.outer_iterations, b.outer_iterations);
                assert_eq!(a.detected, b.detected);
                assert_eq!(a.true_rel_residual.to_bits(), b.true_rel_residual.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_renders_and_diff_is_clean_for_identical_runs() {
        let spec = tiny_spec();
        let p1 = tmp("render1");
        let p2 = tmp("render2");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        let quiet = RunOptions { quiet: true, ..Default::default() };
        run(&spec, &p1, false, &quiet).unwrap();
        run(&spec, &p2, false, &quiet).unwrap();

        let d1 = CampaignData::load(&p1).unwrap();
        let d2 = CampaignData::load(&p2).unwrap();

        let report = render_report(&d1);
        assert!(report.contains("campaign 'tiny-report' (complete)"));
        assert!(report.contains("Table 1"));
        assert!(report.contains("failure-free"));
        // Detector scenarios appear.
        assert!(report.contains("detector=restart_inner"));

        let diff = render_diff(&d1, &d2);
        assert!(diff.contains(&format!("identical series: {}", d1.series.len())), "{diff}");

        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn incomplete_artifact_reports_progress() {
        let spec = tiny_spec();
        let path = tmp("incomplete");
        std::fs::remove_file(&path).ok();
        run(
            &spec,
            &path,
            false,
            &RunOptions { quiet: true, max_units: Some(3), ..Default::default() },
        )
        .unwrap();
        let data = CampaignData::load(&path).unwrap();
        assert!(!data.is_complete());
        assert_eq!(data.present_units, 3);
        assert!(data.expected_units > 3);
        let report = render_report(&data);
        assert!(report.contains("INCOMPLETE"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diff_flags_detector_difference() {
        // Same grid, one run with detector block, one without.
        let spec_a = tiny_spec();
        let mut spec_b = tiny_spec();
        spec_b.blocks.pop(); // drop the detector block
        let pa = tmp("diff_a");
        let pb = tmp("diff_b");
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        let quiet = RunOptions { quiet: true, ..Default::default() };
        run(&spec_a, &pa, false, &quiet).unwrap();
        run(&spec_b, &pb, false, &quiet).unwrap();
        let da = CampaignData::load(&pa).unwrap();
        let db = CampaignData::load(&pb).unwrap();
        let diff = render_diff(&da, &db);
        assert!(diff.contains("only in 'tiny-report'"), "{diff}");
        assert!(diff.contains(DetectorPolicy::RestartInner.as_str()), "{diff}");
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }
}

//! The evaluation problems of §VII-A.

use sdc_gmres::operator::LinearOperator;
use sdc_gmres::precond::{BuiltPrecond, PrecondKind};
use sdc_sparse::gallery::{self, CircuitMnaConfig};
use sdc_sparse::{io, CsrMatrix, KernelTier, SellMatrix, SparseFormat};
use std::path::Path;
use std::sync::OnceLock;

/// A named linear system `A x = b`.
pub struct Problem {
    /// Display name.
    pub name: String,
    /// The operator.
    pub a: CsrMatrix,
    /// Right-hand side. The paper does not state its choice; we use
    /// `b = A·1` so the exact solution is the ones vector and solution
    /// error is directly interpretable (recorded in EXPERIMENTS.md).
    pub b: Vec<f64>,
    /// Lazily-built SELL-C-σ engine; shared by every unit that solves
    /// this problem with `format = sell` (or `auto` resolving to SELL),
    /// so the conversion happens once per problem, not once per solve.
    sell: OnceLock<SellMatrix>,
    /// Cached `auto_format` verdict — the heuristic scans every row
    /// length, which must not re-run on each of a campaign's thousands
    /// of solves.
    auto: OnceLock<SparseFormat>,
    /// Lazily-built preconditioners, one slot per non-trivial
    /// [`PrecondKind`] (jacobi / ilu0 / chebyshev). A campaign's
    /// thousands of solves share one factorization; the setup cost
    /// (ILU elimination, Chebyshev eigenvalue estimate) is paid once.
    precond: [OnceLock<Result<BuiltPrecond, String>>; 3],
}

impl Problem {
    /// Builds a problem with `b = A·1`.
    pub fn with_ones_solution(name: impl Into<String>, a: CsrMatrix) -> Self {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.par_spmv(&ones, &mut b);
        Self {
            name: name.into(),
            a,
            b,
            sell: OnceLock::new(),
            auto: OnceLock::new(),
            precond: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    /// The preconditioner of `kind` for this problem, built on first use
    /// and cached. `PrecondKind::None` never fails and allocates nothing.
    pub fn precond(&self, kind: PrecondKind) -> Result<&BuiltPrecond, String> {
        static NONE: BuiltPrecond = BuiltPrecond::None;
        let slot = match kind {
            PrecondKind::None => return Ok(&NONE),
            PrecondKind::Jacobi => 0,
            PrecondKind::Ilu0 => 1,
            PrecondKind::Chebyshev => 2,
        };
        self.precond[slot]
            .get_or_init(|| BuiltPrecond::build(kind, &self.a))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The operator in the requested storage format (`Auto` resolves via
    /// [`sdc_sparse::auto_format`], computed once per problem). SELL
    /// SpMV is bitwise identical to CSR, so the choice can never change
    /// a solve result or an artifact byte — it is purely a performance
    /// knob.
    pub fn operator(&self, format: SparseFormat) -> &dyn sdc_gmres::operator::LinearOperator {
        match self.resolved_format(format) {
            SparseFormat::Sell => self.sell.get_or_init(|| SellMatrix::from_csr(&self.a)),
            _ => &self.a,
        }
    }

    /// The operator at an explicit kernel tier. `Strict` is exactly
    /// [`Problem::operator`]; `FastMath` swaps in the intra-row-fused
    /// CSR kernel (the tier is CSR-only, so a `sell`/`auto` format
    /// request at `FastMath` still runs the *strict* SELL engine — the
    /// spec layer documents this as "fast_math implies csr").
    pub fn operator_tiered(&self, format: SparseFormat, tier: KernelTier) -> TieredOp<'_> {
        match (tier, self.resolved_format(format)) {
            (KernelTier::FastMath, SparseFormat::Csr) => TieredOp::Fast(&self.a),
            _ => TieredOp::Strict(self.operator(format)),
        }
    }

    /// The concrete engine [`Problem::operator`] picks for `format`.
    pub fn resolved_format(&self, format: SparseFormat) -> SparseFormat {
        match format {
            SparseFormat::Auto => *self.auto.get_or_init(|| sdc_sparse::auto_format(&self.a)),
            concrete => concrete,
        }
    }
}

/// A problem's operator committed to one kernel tier.
///
/// `Strict` wraps whichever strict engine [`Problem::operator`] picked;
/// `Fast` runs [`CsrMatrix::par_spmv_fastmath`], the explicitly
/// versioned fast-math tier. The enum keeps tier dispatch out of the
/// per-apply hot path's vtable chain and lets call sites borrow the
/// problem's cached storage.
pub enum TieredOp<'a> {
    /// Bitwise-reproducible kernels (the default tier).
    Strict(&'a dyn LinearOperator),
    /// Fast-math CSR kernels (opt-in, separate goldens).
    Fast(&'a CsrMatrix),
}

impl LinearOperator for TieredOp<'_> {
    fn nrows(&self) -> usize {
        match self {
            TieredOp::Strict(op) => op.nrows(),
            TieredOp::Fast(a) => a.nrows(),
        }
    }
    fn ncols(&self) -> usize {
        match self {
            TieredOp::Strict(op) => op.ncols(),
            TieredOp::Fast(a) => a.ncols(),
        }
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self {
            TieredOp::Strict(op) => op.apply(x, y),
            TieredOp::Fast(a) => a.par_spmv_fastmath(x, y),
        }
    }
}

/// The paper's first problem: `gallery('poisson',m)`. `m = 100` gives the
/// Table-I matrix (10,000 rows, 49,600 nnz).
pub fn poisson(m: usize) -> Problem {
    Problem::with_ones_solution(format!("Poisson {m}x{m}"), gallery::poisson2d(m))
}

/// The paper's second problem. If `mtx` is given, loads the *real*
/// `mult_dcop_03.mtx`; otherwise generates the synthetic circuit stand-in
/// (DESIGN.md §3).
///
/// Either way the matrix is symmetrically equilibrated
/// (`D^{-1/2} A D^{-1/2}` with `D = diag(max(|a_ii|, ε))`): the raw
/// operator's 10+-decade diagonal dynamic range stalls *any*
/// unpreconditioned Krylov method, and the paper itself frames scaling
/// the system as part of making detection effective (§V). Equilibration
/// preserves nonsymmetry and leaves the matrix very ill-conditioned.
pub fn dcop(mtx: Option<&Path>, nodes: usize, seed: u64) -> Problem {
    let (name, mut a) = match mtx {
        Some(path) => {
            let a = io::read_matrix_market(path)
                .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
            (format!("mult_dcop_03 ({})", path.display()), a)
        }
        None => {
            let cfg = CircuitMnaConfig { nodes, seed, ..Default::default() };
            (format!("synthetic circuit (n={nodes}, seed={seed})"), gallery::circuit_mna(&cfg))
        }
    };
    equilibrate(&mut a);
    Problem::with_ones_solution(name, a)
}

/// Symmetric diagonal equilibration in place.
pub fn equilibrate(a: &mut CsrMatrix) {
    let d: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&v| {
            let m = v.abs().max(1e-300);
            1.0 / m.sqrt()
        })
        .collect();
    a.scale_rows(&d);
    a.scale_cols(&d);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_problem_shape() {
        let p = poisson(10);
        assert_eq!(p.a.nrows(), 100);
        assert_eq!(p.b.len(), 100);
        // b = A*1: interior rows sum to 0, boundary rows positive.
        assert!(p.b.iter().all(|&v| v >= -1e-14));
    }

    #[test]
    fn dcop_problem_is_equilibrated_and_nonsymmetric() {
        let p = dcop(None, 800, 7);
        let d = p.a.diagonal();
        for (i, &v) in d.iter().enumerate() {
            assert!((v.abs() - 1.0).abs() < 1e-9, "diag[{i}] = {v} not ±1 after equilibration");
        }
        assert!(!p.a.is_numerically_symmetric(1e-12));
    }

    #[test]
    fn operator_formats_agree_bitwise() {
        let p = poisson(20);
        let x: Vec<f64> = (0..p.a.ncols()).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut y_csr = vec![0.0; p.a.nrows()];
        p.operator(SparseFormat::Csr).apply(&x, &mut y_csr);
        for fmt in [SparseFormat::Sell, SparseFormat::Auto] {
            let mut y = vec![0.0; p.a.nrows()];
            p.operator(fmt).apply(&x, &mut y);
            assert!(
                y.iter().zip(&y_csr).all(|(a, b)| a.to_bits() == b.to_bits()),
                "format {fmt} diverged"
            );
        }
        assert_ne!(p.resolved_format(SparseFormat::Auto), SparseFormat::Auto);
    }

    #[test]
    fn precond_cache_builds_once_per_kind() {
        let p = poisson(10);
        for kind in PrecondKind::all() {
            let pc = p.precond(kind).expect("build must succeed on poisson");
            assert_eq!(pc.kind(), kind);
            let again = p.precond(kind).expect("cached");
            assert!(std::ptr::eq(pc, again), "{kind}: second call must hit the cache");
        }
    }

    #[test]
    fn equilibration_preserves_pattern() {
        let mut a = sdc_sparse::gallery::circuit_mna(&CircuitMnaConfig {
            nodes: 300,
            seed: 3,
            ..Default::default()
        });
        let nnz = a.nnz();
        equilibrate(&mut a);
        assert_eq!(a.nnz(), nnz);
        assert!(a.all_finite());
    }
}

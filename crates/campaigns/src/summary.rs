//! JSON rendering of solver telemetry digests.
//!
//! [`sdc_gmres::telemetry::SolveSummary`] is the single source of field
//! names and outcome labels for solve summaries; this module is its one
//! JSON renderer. The experiment binaries print summaries through
//! [`SolveSummary::render`], the `sdc_server` wire protocol embeds
//! [`summary_json`] in every `solve` response — both read the same
//! digest, so the surfaces cannot drift apart.

use crate::json::Json;
use sdc_gmres::prelude::{SolveSummary, SummaryValue};

/// Renders a summary as a canonical JSON object (sorted keys, exact
/// floats; optional fields omitted when absent).
pub fn summary_json(s: &SolveSummary) -> Json {
    Json::Obj(
        s.fields()
            .into_iter()
            .map(|(k, v)| {
                let j = match v {
                    SummaryValue::Count(n) => Json::Num(n as f64),
                    SummaryValue::Float(x) => Json::Num(x),
                    SummaryValue::Bool(b) => Json::Bool(b),
                    SummaryValue::Text(t) => Json::Str(t),
                };
                (k.to_string(), j)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_gmres::prelude::{SolveOutcome, SolveReport};

    fn sample_report() -> SolveReport {
        let mut rep = SolveReport::new();
        rep.outcome = SolveOutcome::Converged;
        rep.iterations = 9;
        rep.total_inner_iterations = 225;
        rep.residual_norm = 1.5e-9;
        rep.true_residual_norm = Some(2.5e-9);
        rep
    }

    #[test]
    fn summary_json_is_canonical_and_round_trips() {
        let s = SolveSummary::from_report(&sample_report());
        let j = summary_json(&s);
        let line = j.to_line();
        // Canonical: parse → serialize is the identity.
        assert_eq!(Json::parse(&line).unwrap().to_line(), line);
        // Field spot checks through the parsed form.
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.field("outcome").unwrap().as_str().unwrap(), "converged");
        assert_eq!(back.field("iterations").unwrap().as_usize().unwrap(), 9);
        assert_eq!(back.field("true_residual_norm").unwrap().as_f64().unwrap(), 2.5e-9);
        assert!(back.get("detail").is_none(), "absent detail must be omitted");
    }

    #[test]
    fn non_finite_residuals_survive_serialization() {
        let mut rep = sample_report();
        rep.residual_norm = f64::NAN;
        rep.true_residual_norm = Some(f64::INFINITY);
        let line = summary_json(&SolveSummary::from_report(&rep)).to_line();
        let back = Json::parse(&line).unwrap();
        assert!(back.field("residual_norm").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(back.field("true_residual_norm").unwrap().as_f64().unwrap(), f64::INFINITY);
    }
}

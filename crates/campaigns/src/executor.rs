//! The sharded, resumable campaign executor.
//!
//! Execution model:
//!
//! 1. The spec is expanded into a canonical *unit sequence*: preamble
//!    records (header, one problem record per problem, one baseline
//!    record per distinct (problem, lsq) pair), then one experiment unit
//!    per (scenario, strided aggregate iteration), scenario-major.
//! 2. Units are partitioned into fixed-size shards. Each shard's
//!    experiments run genuinely concurrently over the `sdc_parallel`
//!    work pool (threads claim units dynamically; nested parallel
//!    kernels inside a solve run inline on their worker), but results
//!    are collected and appended to the artifact *in unit order*,
//!    followed by a flush — so the artifact's bytes are a pure function
//!    of the spec at **any** thread count, and a killed run loses at
//!    most one shard. `tests/threads.rs` pins this byte-for-byte at
//!    1/2/8 threads.
//! 3. On resume the existing artifact is scanned, validated against the
//!    canonical sequence, truncated after the last record that matches
//!    it, and execution continues from the first missing unit. Baselines
//!    already in the artifact are *reused, not re-solved*.
//!
//! Every unit carries a stable seed derived from the spec seed and the
//! unit index (SplitMix64), recorded in its artifact line. The paper's
//! single-fault experiments are fully deterministic and do not consume
//! it, but stochastic workloads (random fault sites, perturbed
//! right-hand sides) get reproducible per-unit randomness for free.

use crate::artifact::{self, ArtifactError, Record};
use crate::problems::Problem;
use crate::spec::{CampaignSpec, LsqSpec, Scenario};
use crate::sweep::{failure_free, run_experiment};
use rayon::prelude::*;
use sdc_faults::campaign::CampaignPoint;
use sdc_gmres::prelude::FtGmresConfig;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A job-progress callback: invoked once per record *appended by this
/// invocation* (records already on disk from a resumed run are not
/// replayed), on the thread that owns the artifact file, immediately
/// after the record is written. `sdc_server` streams campaign jobs to
/// clients through this hook; it sees exactly the lines the artifact
/// gained.
pub type ProgressHook = std::sync::Arc<dyn Fn(&Record) + Send + Sync>;

/// Executor tuning knobs.
#[derive(Clone)]
pub struct RunOptions {
    /// Units per shard: the parallel batch size and the flush/checkpoint
    /// granularity. A killed run re-does at most this many experiments.
    pub shard_size: usize,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Stop (cleanly, mid-campaign) after running this many new units —
    /// a deterministic stand-in for `kill` in tests and smoke runs.
    pub max_units: Option<usize>,
    /// Called for every newly appended record (see [`ProgressHook`]).
    pub on_record: Option<ProgressHook>,
    /// Write each unit's deterministic solve trace (the `sdc_obs` Det
    /// channel) to this path as JSONL: a `campaign.unit` marker line per
    /// unit followed by that unit's events. Units are captured with
    /// per-unit thread-local sinks and appended in canonical unit order,
    /// so the file is byte-identical at any thread count. The file is
    /// rewritten from scratch on every invocation; units skipped by a
    /// resume are not re-traced.
    pub trace_out: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { shard_size: 64, quiet: false, max_units: None, on_record: None, trace_out: None }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("shard_size", &self.shard_size)
            .field("quiet", &self.quiet)
            .field("max_units", &self.max_units)
            .field("on_record", &self.on_record.as_ref().map(|_| "<hook>"))
            .field("trace_out", &self.trace_out)
            .finish()
    }
}

/// What a run did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Total experiment units the spec expands to.
    pub total_units: usize,
    /// Units already present in the artifact and skipped.
    pub skipped_units: usize,
    /// Units executed by this invocation.
    pub ran_units: usize,
    /// Units still missing (nonzero only when `max_units` stopped the
    /// run early).
    pub remaining_units: usize,
}

impl RunSummary {
    /// True when the artifact now holds every unit.
    pub fn is_complete(&self) -> bool {
        self.remaining_units == 0
    }
}

/// Errors from [`run`].
#[derive(Debug)]
pub enum RunError {
    /// Artifact I/O or corruption.
    Artifact(ArtifactError),
    /// The output file already exists and `resume` was not requested.
    AlreadyExists(PathBuf),
    /// Resume pointed at a non-empty file that is not an artifact of
    /// this campaign (refused rather than truncated).
    NotAnArtifact(PathBuf),
    /// The spec failed structural validation.
    InvalidSpec(String),
    /// The artifact's header spec differs from the requested spec.
    SpecMismatch(String),
    /// A fault-free baseline failed to converge — the sweep domain is
    /// undefined, so the spec (tolerance/cap/problem) is broken.
    BaselineDiverged {
        /// Problem index whose baseline failed.
        problem: usize,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Artifact(e) => write!(f, "{e}"),
            RunError::AlreadyExists(p) => {
                write!(f, "artifact {} already exists; use resume to continue it", p.display())
            }
            RunError::NotAnArtifact(p) => write!(
                f,
                "{} is not an artifact of this campaign; refusing to overwrite it \
                 (delete the file to start fresh)",
                p.display()
            ),
            RunError::InvalidSpec(msg) => write!(f, "invalid spec: {msg}"),
            RunError::SpecMismatch(msg) => write!(f, "spec mismatch: {msg}"),
            RunError::BaselineDiverged { problem, iterations } => write!(
                f,
                "fault-free baseline for problem {problem} did not converge \
                 within {iterations} outer iterations"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ArtifactError> for RunError {
    fn from(e: ArtifactError) -> Self {
        RunError::Artifact(e)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Artifact(ArtifactError::Io(e))
    }
}

/// SplitMix64 finalizer: the stable per-unit seed derivation.
pub fn unit_seed(base_seed: u64, unit: u64) -> u64 {
    let mut z = base_seed.wrapping_add(unit.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One experiment unit of the canonical sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Unit {
    /// Position in the canonical sequence (0-based).
    index: usize,
    /// Index into the canonical scenario list.
    scenario_idx: usize,
    /// 1-based aggregate inner iteration to fault.
    aggregate: usize,
}

/// The fully-expanded execution plan for a spec.
struct Plan {
    scenarios: Vec<Scenario>,
    baseline_keys: Vec<(usize, LsqSpec)>,
    /// Baseline outer iterations per baseline key (same order).
    baseline_outers: Vec<usize>,
    units: Vec<Unit>,
}

/// Lazily-built problems: a record-complete resume (re-render, no-op
/// `campaign resume`) never loads or generates a single matrix.
struct ProblemCache<'a> {
    spec: &'a CampaignSpec,
    cells: Vec<std::sync::OnceLock<Problem>>,
}

impl<'a> ProblemCache<'a> {
    fn new(spec: &'a CampaignSpec) -> Self {
        Self { spec, cells: (0..spec.problems.len()).map(|_| Default::default()).collect() }
    }

    fn get(&self, i: usize) -> &Problem {
        self.cells[i].get_or_init(|| self.spec.problems[i].build())
    }
}

/// Expands the spec, solving (or reusing) the baselines it needs.
///
/// `known_baselines` maps (problem, lsq) to an outer-iteration count
/// recovered from an existing artifact; anything missing is solved here.
fn expand(
    spec: &CampaignSpec,
    problems: &ProblemCache,
    known_baselines: &HashMap<(usize, LsqSpec), usize>,
    quiet: bool,
) -> Result<Plan, RunError> {
    let baseline_keys = spec.baseline_keys();
    let mut baseline_outers = Vec::with_capacity(baseline_keys.len());
    for &(pidx, lsq) in &baseline_keys {
        if let Some(&outer) = known_baselines.get(&(pidx, lsq)) {
            baseline_outers.push(outer);
            continue;
        }
        let problem = problems.get(pidx);
        if !quiet {
            eprintln!(
                "[campaign] baseline: problem {pidx} ({}), lsq={}",
                problem.name,
                lsq.label()
            );
        }
        let cfg = spec.baseline_config(lsq);
        let rep = failure_free(problem, &cfg);
        if !rep.outcome.is_converged() {
            return Err(RunError::BaselineDiverged { problem: pidx, iterations: rep.iterations });
        }
        baseline_outers.push(rep.iterations);
    }

    let scenarios = spec.scenarios();
    let mut units = Vec::new();
    for (scenario_idx, s) in scenarios.iter().enumerate() {
        let key_pos = baseline_keys
            .iter()
            .position(|&(p, l)| p == s.problem && l == s.lsq)
            .expect("every scenario has a baseline key");
        let ff_outer = baseline_outers[key_pos];
        for aggregate in spec.unit_domain(ff_outer) {
            units.push(Unit { index: units.len(), scenario_idx, aggregate });
        }
    }
    Ok(Plan { scenarios, baseline_keys, baseline_outers, units })
}

/// Validates an existing artifact's records against the canonical
/// sequence for `spec`.
///
/// Returns the number of leading records that match (the rest of the
/// file is truncated) and the baselines found among them. The header, if
/// present, must carry an identical spec — a different spec is an error,
/// not a truncation, because silently rewriting someone else's artifact
/// would destroy data.
type BaselineMap = HashMap<(usize, LsqSpec), usize>;

fn validate_prefix(
    spec: &CampaignSpec,
    records: &[Record],
) -> Result<(usize, BaselineMap), RunError> {
    let mut baselines = BaselineMap::new();
    let Some(first) = records.first() else {
        return Ok((0, baselines));
    };
    match first {
        Record::Header { spec: stored } => {
            if stored != spec {
                return Err(RunError::SpecMismatch(
                    "artifact was produced by a different spec".into(),
                ));
            }
        }
        _ => return Ok((0, baselines)),
    }

    // Preamble: problem records (by index), then baseline records (by
    // key), then experiments (by unit order). We validate *keys*; the
    // measured payloads are trusted as-is.
    let n_problems = spec.problems.len();
    let baseline_keys = spec.baseline_keys();
    let mut matched = 1usize;
    for rec in &records[1..] {
        let expected_problem = matched - 1; // problems occupy records 1..=n
        let ok = match rec {
            Record::Header { .. } => false,
            Record::Problem { index, .. } => {
                expected_problem < n_problems && *index == expected_problem
            }
            Record::Baseline { problem, lsq, outer_iterations, .. } => {
                let b = matched.checked_sub(1 + n_problems);
                match b {
                    Some(b) if b < baseline_keys.len() => {
                        let (kp, kl) = baseline_keys[b];
                        if kp == *problem && kl == *lsq {
                            baselines.insert((kp, kl), *outer_iterations);
                            true
                        } else {
                            false
                        }
                    }
                    _ => false,
                }
            }
            Record::Experiment { unit, .. } => {
                let u = matched.checked_sub(1 + n_problems + baseline_keys.len());
                u == Some(*unit)
            }
        };
        if !ok {
            break;
        }
        matched += 1;
    }

    // Experiments may only start after the full preamble; a file cut
    // inside the preamble keeps its matched prefix and recomputes the
    // rest (deterministically, so bytes still line up).
    Ok((matched, baselines))
}

/// Characterizes one problem for its artifact record.
fn problem_record(spec: &CampaignSpec, index: usize, p: &Problem) -> Record {
    let norm2_est = if spec.norm2_iters > 0 {
        Some(sdc_sparse::norm_est::norm2_est(&p.a, spec.norm2_iters, 1e-12).value)
    } else {
        None
    };
    Record::Problem {
        index,
        name: p.name.clone(),
        rows: p.a.nrows(),
        cols: p.a.ncols(),
        nnz: p.a.nnz(),
        norm_fro: p.a.norm_fro(),
        norm2_est,
    }
}

/// Runs (or resumes) a campaign, streaming records to `artifact_path`.
///
/// With `resume = false` the artifact must not already exist. With
/// `resume = true` an existing artifact is continued: completed units
/// are skipped, a partial or broken tail is truncated, and the appended
/// records are exactly those an uninterrupted run would have written —
/// the final file is byte-identical either way. Resuming a missing file
/// simply starts it.
pub fn run(
    spec: &CampaignSpec,
    artifact_path: &Path,
    resume: bool,
    opts: &RunOptions,
) -> Result<RunSummary, RunError> {
    // Invalid specs (e.g. a programmatically-built stride of 0) must
    // fail loudly here, not panic mid-run or emit a broken artifact.
    spec.validate().map_err(RunError::InvalidSpec)?;

    let exists = artifact_path.exists();
    if exists && !resume {
        return Err(RunError::AlreadyExists(artifact_path.to_path_buf()));
    }

    // Scan + validate whatever is already on disk.
    let (scan, matched, known_baselines) = if exists {
        let scan = artifact::scan(artifact_path)?;
        let (matched, baselines) = validate_prefix(spec, &scan.records)?;
        // A non-empty file whose first record is not this campaign's
        // header is someone else's data; truncating it would destroy it.
        // (A torn-header artifact also lands here — it holds nothing
        // recoverable, so refusing with a clear message is the safe
        // default; delete the file to start over.)
        if matched == 0 && std::fs::metadata(artifact_path)?.len() > 0 {
            return Err(RunError::NotAnArtifact(artifact_path.to_path_buf()));
        }
        (Some(scan), matched, baselines)
    } else {
        (None, 0, HashMap::new())
    };

    // Problems are built on first use — expand() only touches the ones
    // whose baselines are not already stored in the artifact.
    let problems = ProblemCache::new(spec);
    let plan = expand(spec, &problems, &known_baselines, opts.quiet)?;

    let n_preamble = 1 + spec.problems.len() + plan.baseline_keys.len();
    let completed_units = matched.saturating_sub(n_preamble);

    // Truncate the file to the matched prefix and open for append.
    let file = if let Some(scan) = &scan {
        let keep = if matched == 0 { 0 } else { scan.ends[matched - 1] };
        let file = std::fs::OpenOptions::new().write(true).open(artifact_path)?;
        file.set_len(keep)?;
        let mut f = file;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::End(0))?;
        f
    } else {
        std::fs::File::create(artifact_path)?
    };
    let mut out = std::io::BufWriter::new(file);

    // Complete the preamble, constructing only the missing records —
    // problem characterization (norm_fro, optional norm2 power
    // iteration) is skipped entirely for records already on disk.
    let n_problems = spec.problems.len();
    for i in matched..n_preamble {
        let rec = if i == 0 {
            Record::Header { spec: spec.clone() }
        } else if i <= n_problems {
            problem_record(spec, i - 1, problems.get(i - 1))
        } else {
            let b = i - 1 - n_problems;
            let (pidx, lsq) = plan.baseline_keys[b];
            Record::Baseline {
                problem: pidx,
                lsq,
                outer_iterations: plan.baseline_outers[b],
                converged: true,
            }
        };
        artifact::append(&mut out, &rec)?;
        if let Some(hook) = &opts.on_record {
            hook(&rec);
        }
    }
    out.flush()?;

    // Shard and run the remaining units.
    let todo = &plan.units[completed_units.min(plan.units.len())..];

    // One solver configuration per scenario, built once — but not at
    // all when the artifact is already complete.
    let ft_configs: Vec<FtGmresConfig> = if todo.is_empty() {
        Vec::new()
    } else {
        plan.scenarios
            .iter()
            .map(|s| {
                let cfg = spec.campaign_config(s);
                let p = problems.get(s.problem);
                cfg.ft_config_with(&p.a, cfg.precond(p))
            })
            .collect()
    };
    let budget = opts.max_units.unwrap_or(usize::MAX);
    let mut ran = 0usize;
    let traced = opts.trace_out.is_some();
    let mut trace_file = match &opts.trace_out {
        Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p)?)),
        None => None,
    };
    for shard in todo.chunks(opts.shard_size.max(1)) {
        if ran >= budget {
            break;
        }
        let shard = &shard[..shard.len().min(budget - ran)];
        if !opts.quiet {
            eprintln!(
                "[campaign] shard: units {}..{} of {}",
                shard[0].index,
                shard[shard.len() - 1].index + 1,
                plan.units.len()
            );
        }
        let records: Vec<(Record, Option<String>)> = shard
            .par_iter()
            .map(|u| {
                let s = plan.scenarios[u.scenario_idx];
                let point = CampaignPoint {
                    aggregate_iteration: u.aggregate,
                    inner_per_outer: spec.inner_iters,
                    class: s.class,
                    position: s.position,
                };
                let p = problems.get(s.problem);
                let solve = || {
                    run_experiment(
                        p,
                        &ft_configs[u.scenario_idx],
                        point,
                        spec.format,
                        spec.kernel_tier,
                        p.precond(spec.precond).expect("validated at plan time"),
                    )
                };
                // Per-unit capture on the claiming thread: the solve
                // orchestration (and thus every Det event) runs here, so
                // the captured lines are independent of the thread count.
                let (measured, trace) = if traced {
                    let sink = std::sync::Arc::new(sdc_obs::trace::TraceSink::new());
                    let m = sdc_obs::with_local(sink.clone(), solve);
                    (m, Some(sink.det_bytes()))
                } else {
                    (solve(), None)
                };
                let rec = Record::Experiment {
                    unit: u.index,
                    scenario: s,
                    seed: unit_seed(spec.seed, u.index as u64),
                    point: measured,
                };
                (rec, trace)
            })
            .collect();
        for (rec, trace) in &records {
            artifact::append(&mut out, rec)?;
            if let Some(hook) = &opts.on_record {
                hook(rec);
            }
            if let (Some(tf), Some(trace), Record::Experiment { unit, seed, point, .. }) =
                (trace_file.as_mut(), trace, rec)
            {
                writeln!(
                    tf,
                    "{{\"aggregate\":{},\"ev\":\"campaign.unit\",\"seed\":{},\"unit\":{}}}",
                    point.aggregate, seed, unit
                )?;
                tf.write_all(trace.as_bytes())?;
            }
        }
        out.flush()?;
        if let Some(tf) = trace_file.as_mut() {
            tf.flush()?;
        }
        ran += shard.len();
    }

    Ok(RunSummary {
        total_units: plan.units.len(),
        skipped_units: completed_units.min(plan.units.len()),
        ran_units: ran,
        remaining_units: plan.units.len() - completed_units.min(plan.units.len()) - ran,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, GridBlock, ProblemSpec};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            inner_iters: 8,
            outer_tol: 1e-8,
            outer_max: 60,
            stride: 5,
            ..CampaignSpec::paper_shape("tiny", vec![ProblemSpec::Poisson { m: 8 }])
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sdc_exec_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn unit_seed_is_stable_and_spread() {
        assert_eq!(unit_seed(42, 0), unit_seed(42, 0));
        assert_ne!(unit_seed(42, 0), unit_seed(42, 1));
        assert_ne!(unit_seed(42, 0), unit_seed(43, 0));
        // Golden value: the derivation is part of the artifact contract.
        assert_eq!(unit_seed(0, 0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn fresh_run_completes_and_is_ordered() {
        let path = tmp("fresh");
        std::fs::remove_file(&path).ok();
        let spec = tiny_spec();
        let sum =
            run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() }).unwrap();
        assert!(sum.is_complete());
        assert_eq!(sum.skipped_units, 0);
        assert_eq!(sum.ran_units, sum.total_units);

        let scan = artifact::scan(&path).unwrap();
        assert!(!scan.dirty_tail);
        // Header + 1 problem + 1 baseline + all units.
        assert_eq!(scan.records.len(), 2 + 1 + sum.total_units);
        let mut expect_unit = 0usize;
        for rec in &scan.records {
            if let Record::Experiment { unit, .. } = rec {
                assert_eq!(*unit, expect_unit, "units must be in canonical order");
                expect_unit += 1;
            }
        }
        // Second run without resume refuses to clobber.
        assert!(matches!(
            run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() }),
            Err(RunError::AlreadyExists(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_then_resumed_is_byte_identical() {
        let spec = tiny_spec();
        let quiet = RunOptions { quiet: true, ..Default::default() };

        let full_path = tmp("full");
        std::fs::remove_file(&full_path).ok();
        run(&spec, &full_path, false, &quiet).unwrap();
        let full = std::fs::read(&full_path).unwrap();

        // Stop after 7 units (mid-shard), then resume.
        let part_path = tmp("part");
        std::fs::remove_file(&part_path).ok();
        let sum = run(
            &spec,
            &part_path,
            false,
            &RunOptions { quiet: true, max_units: Some(7), shard_size: 5, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sum.ran_units, 7);
        assert!(!sum.is_complete());

        // Simulate the kill landing mid-write: chop 11 bytes off the tail.
        let bytes = std::fs::read(&part_path).unwrap();
        std::fs::write(&part_path, &bytes[..bytes.len() - 11]).unwrap();

        let sum = run(&spec, &part_path, true, &quiet).unwrap();
        assert!(sum.is_complete());
        assert!(sum.skipped_units >= 6, "most finished units survive the kill");
        let resumed = std::fs::read(&part_path).unwrap();
        assert_eq!(resumed, full, "resumed artifact must be byte-identical");

        // Resume of a complete artifact is a no-op.
        let sum = run(&spec, &part_path, true, &quiet).unwrap();
        assert_eq!(sum.ran_units, 0);
        assert_eq!(sum.skipped_units, sum.total_units);
        assert_eq!(std::fs::read(&part_path).unwrap(), full);

        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&part_path).ok();
    }

    #[test]
    fn complete_resume_is_lazy_and_never_rebuilds_problems() {
        // Run a campaign on a Matrix Market problem, then delete the
        // .mtx. A record-complete resume must still succeed: nothing in
        // the no-op path may load or characterize the matrix again.
        let mtx = std::env::temp_dir().join(format!("sdc_exec_lazy_{}.mtx", std::process::id()));
        sdc_sparse::io::write_matrix_market(&mtx, &sdc_sparse::gallery::poisson2d(6)).unwrap();
        let spec = CampaignSpec {
            inner_iters: 6,
            outer_tol: 1e-8,
            outer_max: 60,
            stride: 9,
            ..CampaignSpec::paper_shape(
                "lazy",
                vec![ProblemSpec::MatrixMarket { path: mtx.clone(), equilibrate: false }],
            )
        };
        let path = tmp("lazy");
        std::fs::remove_file(&path).ok();
        let quiet = RunOptions { quiet: true, ..Default::default() };
        run(&spec, &path, false, &quiet).unwrap();
        let before = std::fs::read(&path).unwrap();

        std::fs::remove_file(&mtx).unwrap();
        let sum = run(&spec, &path, true, &quiet).unwrap();
        assert_eq!(sum.ran_units, 0);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_record_hook_sees_exactly_the_appended_lines() {
        use std::sync::{Arc, Mutex};
        let spec = tiny_spec();
        let path = tmp("hook");
        std::fs::remove_file(&path).ok();

        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let opts = RunOptions {
            quiet: true,
            on_record: Some(Arc::new(move |r: &Record| {
                sink.lock().unwrap().push(r.to_line());
            })),
            ..Default::default()
        };
        run(&spec, &path, false, &opts).unwrap();

        // The hook saw every line of the artifact, in order.
        let file_lines: Vec<String> =
            std::fs::read_to_string(&path).unwrap().lines().map(String::from).collect();
        assert_eq!(*seen.lock().unwrap(), file_lines);

        // A complete resume appends nothing, so the hook stays silent.
        seen.lock().unwrap().clear();
        run(&spec, &path, true, &opts).unwrap();
        assert!(seen.lock().unwrap().is_empty(), "no-op resume must not replay records");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_to_overwrite_non_artifact_files() {
        let path = tmp("notours");
        std::fs::write(&path, "important notes, not an artifact\n").unwrap();
        let quiet = RunOptions { quiet: true, ..Default::default() };
        let err = run(&tiny_spec(), &path, true, &quiet).unwrap_err();
        assert!(matches!(err, RunError::NotAnArtifact(_)), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "important notes, not an artifact\n",
            "the file must be untouched"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_spec_errors_instead_of_panicking() {
        let path = tmp("stride0");
        std::fs::remove_file(&path).ok();
        let spec = CampaignSpec { stride: 0, ..tiny_spec() };
        let quiet = RunOptions { quiet: true, ..Default::default() };
        let err = run(&spec, &path, false, &quiet).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
        assert!(!path.exists(), "no artifact may be created for a broken spec");
    }

    #[test]
    fn resume_rejects_foreign_spec() {
        let path = tmp("foreign");
        std::fs::remove_file(&path).ok();
        let quiet = RunOptions { quiet: true, ..Default::default() };
        run(&tiny_spec(), &path, false, &quiet).unwrap();

        let mut other = tiny_spec();
        other.stride = 3;
        assert!(matches!(run(&other, &path, true, &quiet), Err(RunError::SpecMismatch(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn executor_matches_raw_sweep() {
        // The artifact path and the library run_sweep path must agree
        // experiment for experiment.
        use crate::sweep::{failure_free, run_sweep};
        let spec = CampaignSpec { blocks: vec![GridBlock::undetected_full()], ..tiny_spec() };
        let path = tmp("parity");
        std::fs::remove_file(&path).ok();
        run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() }).unwrap();
        let scan = artifact::scan(&path).unwrap();

        let p = spec.problems[0].build();
        let s0 = spec.scenarios()[0];
        let cfg = spec.campaign_config(&s0);
        let ff = failure_free(&p, &cfg);
        let reference = run_sweep(&p, &cfg, s0.class, s0.position, ff.iterations);

        let mut artifact_points = Vec::new();
        for rec in &scan.records {
            if let Record::Experiment { scenario, point, .. } = rec {
                if *scenario == s0 {
                    artifact_points.push(*point);
                }
            }
        }
        assert_eq!(artifact_points.len(), reference.points.len());
        for (a, b) in artifact_points.iter().zip(reference.points.iter()) {
            assert_eq!(a.aggregate, b.aggregate);
            assert_eq!(a.outer_iterations, b.outer_iterations);
            assert_eq!(a.true_rel_residual.to_bits(), b.true_rel_residual.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }
}

//! A minimal shared command-line flag parser.
//!
//! Every experiment binary in the workspace speaks the same tiny flag
//! vocabulary (`--quick`, `--stride N`, `--matrix PATH`, `--out PATH`,
//! `--csv DIR`, ...). Before this module each binary hand-rolled its own
//! `std::env::args` loop with subtly different error behavior; now a
//! binary declares its flags once and gets parsing, `--help` text and
//! consistent error messages for free. No external dependencies — the
//! grammar is just `--flag` and `--flag VALUE`.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

#[derive(Clone, Debug)]
struct FlagSpec {
    name: &'static str,
    value_name: Option<&'static str>,
    help: &'static str,
}

/// A declarative flag set for one binary (or one subcommand).
#[derive(Clone, Debug)]
pub struct Cli {
    program: String,
    about: String,
    flags: Vec<FlagSpec>,
    accepts_positional: bool,
}

/// The invoking binary's name (basename of `argv[0]`), for accurate
/// usage/error text without every call site restating its own name.
pub fn program_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(|p| p.file_name())
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "program".to_string())
}

impl Cli {
    /// Starts a flag set for `program`.
    pub fn new(program: impl Into<String>, about: impl Into<String>) -> Self {
        Self {
            program: program.into(),
            about: about.into(),
            flags: Vec::new(),
            accepts_positional: false,
        }
    }

    /// Declares a boolean switch (`--name`).
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec { name, value_name: None, help });
        self
    }

    /// Declares a value-taking option (`--name VALUE`).
    pub fn opt(mut self, name: &'static str, value_name: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec { name, value_name: Some(value_name), help });
        self
    }

    /// Allows bare positional arguments (collected in order).
    pub fn positional(mut self) -> Self {
        self.accepts_positional = true;
        self
    }

    /// Declares the workspace-standard `--threads N` flag. Apply it with
    /// [`Parsed::apply_threads`]; precedence is `--threads` >
    /// `SDC_THREADS` > available parallelism.
    pub fn with_threads(self) -> Self {
        self.opt("threads", "N", "worker threads (overrides SDC_THREADS; default: all cores)")
    }

    /// Declares the workspace-standard `--format {csr,sell,auto}` flag.
    /// Read it with [`Parsed::format`]; the default is `auto` (pick the
    /// SpMV engine per matrix from its row-length distribution).
    pub fn with_format(self) -> Self {
        self.opt("format", "F", "sparse storage engine: csr, sell or auto (default: auto)")
    }

    /// Declares the workspace-standard `--precond {none,jacobi,ilu0,chebyshev}`
    /// flag. Read it with [`Parsed::precond`]; the default is `none`.
    pub fn with_precond(self) -> Self {
        self.opt("precond", "P", "right preconditioner: none, jacobi, ilu0 or chebyshev")
    }

    /// Declares the workspace-standard `--simd {auto,avx2,scalar}` flag.
    /// Apply it with [`Parsed::apply_simd`]; precedence is `--simd` >
    /// `SDC_SIMD` > auto-detection. Every mode computes bitwise-identical
    /// results — the knob exists for benchmarking and for forcing the
    /// scalar fallback in CI.
    pub fn with_simd(self) -> Self {
        self.opt("simd", "M", "SIMD kernel mode: auto, avx2 or scalar (overrides SDC_SIMD)")
    }

    /// The generated usage text.
    pub fn usage(&self) -> String {
        let mut out = format!("{} — {}\n\nflags:\n", self.program, self.about);
        let width =
            self.flags.iter().map(|f| f.name.len() + 3 + f.value_name.unwrap_or("").len()).max();
        let width = width.unwrap_or(0).max(8);
        for f in &self.flags {
            let lhs = match f.value_name {
                Some(v) => format!("--{} {v}", f.name),
                None => format!("--{}", f.name),
            };
            out.push_str(&format!("  {lhs:<width$}  {}\n", f.help));
        }
        out.push_str(&format!("  {:<width$}  print this help\n", "--help"));
        out
    }

    /// Parses an explicit argument list (testable, no process exit).
    pub fn parse_from<I: IntoIterator<Item = String>>(&self, args: I) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Err(HELP_SENTINEL.to_string());
            }
            if let Some(name) = arg.strip_prefix("--") {
                let Some(spec) = self.flags.iter().find(|f| f.name == name) else {
                    return Err(format!("{}: unknown flag --{name}", self.program));
                };
                match spec.value_name {
                    None => {
                        parsed.switches.insert(spec.name);
                    }
                    Some(value_name) => {
                        let Some(value) = it.next() else {
                            return Err(format!(
                                "{}: --{name} needs a {value_name} argument",
                                self.program
                            ));
                        };
                        if parsed.values.insert(spec.name, value).is_some() {
                            return Err(format!("{}: --{name} given twice", self.program));
                        }
                    }
                }
            } else if self.accepts_positional {
                parsed.positional.push(arg);
            } else {
                return Err(format!("{}: unexpected argument '{arg}'", self.program));
            }
        }
        Ok(parsed)
    }

    /// Parses the process arguments; prints usage and exits on `--help`
    /// or error. `skip` is how many leading arguments to drop (1 for the
    /// program name, 2 when a subcommand was already consumed).
    pub fn parse_env(&self, skip: usize) -> Parsed {
        match self.parse_from(std::env::args().skip(skip)) {
            Ok(p) => p,
            Err(e) if e == HELP_SENTINEL => {
                eprint!("{}", self.usage());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{e}");
                eprint!("{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

const HELP_SENTINEL: &str = "\u{0}help";

/// Parsed arguments.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    switches: HashSet<&'static str>,
    values: HashMap<&'static str, String>,
    /// Bare positional arguments, in order.
    pub positional: Vec<String>,
}

impl Parsed {
    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The raw value of an option, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// The value of an option as a path, if given.
    pub fn path(&self, name: &str) -> Option<PathBuf> {
        self.value(name).map(PathBuf::from)
    }

    /// The value of an option parsed to `T`, if given; a parse failure
    /// is an error naming the flag.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => {
                raw.parse::<T>().map(Some).map_err(|_| format!("--{name}: cannot parse '{raw}'"))
            }
        }
    }

    /// Applies a `--threads` value (declared with [`Cli::with_threads`])
    /// to the global `sdc_parallel` pool and returns the effective
    /// thread count. Without the flag the pool keeps its `SDC_THREADS` /
    /// hardware default — so precedence is `--threads` > `SDC_THREADS` >
    /// available parallelism.
    pub fn apply_threads(&self) -> Result<usize, String> {
        if let Some(n) = self.get::<usize>("threads")? {
            if n == 0 {
                return Err("--threads: must be at least 1".to_string());
            }
            sdc_parallel::set_threads(n);
        }
        Ok(sdc_parallel::threads())
    }

    /// The value of a `--format` flag (declared with [`Cli::with_format`]),
    /// defaulting to `auto`; a bad value is an error naming the flag.
    pub fn format(&self) -> Result<sdc_sparse::SparseFormat, String> {
        match self.value("format") {
            None => Ok(sdc_sparse::SparseFormat::Auto),
            Some(raw) => sdc_sparse::SparseFormat::parse(raw).map_err(|e| format!("--format: {e}")),
        }
    }

    /// Applies a `--simd` value (declared with [`Cli::with_simd`]) to the
    /// global kernel dispatch and returns the effective ISA. Without the
    /// flag the dispatch keeps its `SDC_SIMD` / detection default — so
    /// precedence is `--simd` > `SDC_SIMD` > auto-detection. An explicit
    /// `--simd avx2` on a host without AVX2+FMA is an error (unlike the
    /// env var, which quietly degrades to scalar so one exported
    /// `SDC_SIMD=avx2` doesn't break mixed fleets).
    pub fn apply_simd(&self) -> Result<sdc_sparse::simd::Isa, String> {
        match self.value("simd") {
            None => Ok(sdc_sparse::simd::active()),
            Some(raw) => {
                let mode = sdc_sparse::SimdMode::parse(raw).map_err(|e| format!("--simd: {e}"))?;
                sdc_sparse::simd::set_mode(mode).map_err(|e| format!("--simd: {e}"))
            }
        }
    }

    /// The value of a `--precond` flag (declared with
    /// [`Cli::with_precond`]), defaulting to `none`; a bad value is an
    /// error naming the flag.
    pub fn precond(&self) -> Result<sdc_gmres::precond::PrecondKind, String> {
        match self.value("precond") {
            None => Ok(sdc_gmres::precond::PrecondKind::None),
            Some(raw) => {
                sdc_gmres::precond::PrecondKind::parse(raw).map_err(|e| format!("--precond: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> Cli {
        Cli::new("demo", "a test binary")
            .switch("quick", "subsampled run")
            .opt("stride", "N", "sweep stride")
            .opt("out", "PATH", "artifact path")
    }

    #[test]
    fn parses_switches_values_and_errors() {
        let p = cli()
            .parse_from(["--quick", "--stride", "5", "--out", "a.jsonl"].map(String::from))
            .unwrap();
        assert!(p.has("quick"));
        assert_eq!(p.get::<usize>("stride").unwrap(), Some(5));
        assert_eq!(p.path("out").unwrap(), PathBuf::from("a.jsonl"));
        assert_eq!(p.get::<usize>("missing").unwrap(), None);

        assert!(cli().parse_from(["--bogus".to_string()]).is_err());
        assert!(cli().parse_from(["--stride".to_string()]).is_err(), "missing value");
        assert!(cli().parse_from(["--stride", "1", "--stride", "2"].map(String::from)).is_err());
        assert!(cli().parse_from(["stray".to_string()]).is_err());
        let p = cli().positional().parse_from(["stray".to_string()]).unwrap();
        assert_eq!(p.positional, vec!["stray".to_string()]);
    }

    #[test]
    fn bad_value_names_the_flag() {
        let p = cli().parse_from(["--stride", "lots"].map(String::from)).unwrap();
        let err = p.get::<usize>("stride").unwrap_err();
        assert!(err.contains("--stride"), "{err}");
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        let _guard = sdc_parallel::test_serial_guard();
        let c = cli().with_threads();
        let p = c.parse_from(["--threads", "4"].map(String::from)).unwrap();
        assert_eq!(p.get::<usize>("threads").unwrap(), Some(4));
        assert_eq!(p.apply_threads().unwrap(), 4);
        sdc_parallel::set_threads(0); // restore the default for other tests

        let p = c.parse_from(["--threads", "0"].map(String::from)).unwrap();
        let err = p.apply_threads().unwrap_err();
        assert!(err.contains("--threads"), "{err}");

        // Without the flag the pool default is untouched but reported.
        let p = c.parse_from([]).unwrap();
        assert!(p.apply_threads().unwrap() >= 1);
    }

    #[test]
    fn format_flag_parses_defaults_and_rejects() {
        use sdc_sparse::SparseFormat;
        let c = cli().with_format();
        for (raw, want) in
            [("csr", SparseFormat::Csr), ("sell", SparseFormat::Sell), ("auto", SparseFormat::Auto)]
        {
            let p = c.parse_from(["--format", raw].map(String::from)).unwrap();
            assert_eq!(p.format().unwrap(), want);
        }
        // Default without the flag.
        assert_eq!(c.parse_from([]).unwrap().format().unwrap(), SparseFormat::Auto);
        let err =
            c.parse_from(["--format", "ell"].map(String::from)).unwrap().format().unwrap_err();
        assert!(err.contains("--format"), "{err}");
    }

    #[test]
    fn precond_flag_parses_defaults_and_rejects() {
        use sdc_gmres::precond::PrecondKind;
        let c = cli().with_precond();
        for (raw, want) in [
            ("none", PrecondKind::None),
            ("jacobi", PrecondKind::Jacobi),
            ("ilu0", PrecondKind::Ilu0),
            ("chebyshev", PrecondKind::Chebyshev),
        ] {
            let p = c.parse_from(["--precond", raw].map(String::from)).unwrap();
            assert_eq!(p.precond().unwrap(), want);
        }
        // Default without the flag.
        assert_eq!(c.parse_from([]).unwrap().precond().unwrap(), PrecondKind::None);
        let err =
            c.parse_from(["--precond", "amg"].map(String::from)).unwrap().precond().unwrap_err();
        assert!(err.contains("--precond"), "{err}");
    }

    #[test]
    fn simd_flag_parses_defaults_and_rejects() {
        use sdc_sparse::simd::{test_mode_guard, Isa};
        let _guard = test_mode_guard();
        let c = cli().with_simd();
        // Forcing scalar always succeeds, on any host.
        let p = c.parse_from(["--simd", "scalar"].map(String::from)).unwrap();
        assert_eq!(p.apply_simd().unwrap(), Isa::Scalar);
        // Without the flag the dispatch default is untouched but reported.
        let p = c.parse_from([]).unwrap();
        let isa = p.apply_simd().unwrap();
        assert!(isa == Isa::Scalar || isa == Isa::Avx2);
        // Bad values name the flag.
        let p = c.parse_from(["--simd", "sse9"].map(String::from)).unwrap();
        let err = p.apply_simd().unwrap_err();
        assert!(err.contains("--simd"), "{err}");
        // Explicit avx2 errors (rather than degrading) when unsupported.
        if sdc_sparse::simd::detected() == Isa::Scalar {
            let p = c.parse_from(["--simd", "avx2"].map(String::from)).unwrap();
            assert!(p.apply_simd().is_err());
        }
    }

    #[test]
    fn usage_lists_every_flag() {
        let u = cli().usage();
        for needle in ["--quick", "--stride N", "--out PATH", "--help", "a test binary"] {
            assert!(u.contains(needle), "usage missing {needle}:\n{u}");
        }
    }
}

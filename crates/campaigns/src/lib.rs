//! `sdc_campaigns` — the declarative, resumable, artifact-first campaign
//! engine.
//!
//! The paper's results are single-fault *sweeps*: thousands of
//! independent re-solves over a (problem × fault class × MGS position ×
//! detector policy × least-squares policy) grid. This crate turns those
//! sweeps from one-shot binaries into a subsystem:
//!
//! * [`spec`] — a [`spec::CampaignSpec`] describes a full scenario grid
//!   as data, serialized with the dependency-free [`json`] module (the
//!   build container is offline; there is no serde).
//! * [`executor`] — expands the spec into a deterministic unit sequence,
//!   runs units in genuinely parallel shards (real threads), and streams one JSONL
//!   record per completed experiment to an artifact file whose bytes are
//!   a pure function of the spec — independent of scheduling, sharding
//!   or interruption. Killed campaigns resume where they stopped.
//! * [`artifact`] — the JSONL record format and the tolerant scanner
//!   that resume and reporting are built on.
//! * [`report`] — reconstructs [`sweep::SweepResult`] series,
//!   Table-1-style characteristics and cross-run diffs from a stored
//!   artifact alone, with no re-solving.
//! * [`sweep`] — the raw single-series sweep driver (previously
//!   `sdc_bench::campaign`), shared by the executor and by callers that
//!   want results in memory without an artifact.
//! * [`problems`] — the evaluation problems (previously
//!   `sdc_bench::problems`).
//! * [`cli`] — the minimal flag parser shared by every experiment
//!   binary.
//!
//! See `crates/campaigns/README.md` for the spec format and the
//! run/resume/report workflow, and `crates/campaigns/DESIGN.md` for why
//! the artifact is the source of truth.

pub mod artifact;
pub mod cli;
pub mod executor;
pub mod json;
pub mod problems;
pub mod report;
pub mod spec;
pub mod summary;
pub mod sweep;

pub use executor::{run, ProgressHook, RunError, RunOptions, RunSummary};
pub use problems::Problem;
pub use report::{render_diff, render_report, CampaignData};
pub use spec::{CampaignSpec, DetectorPolicy, GridBlock, LsqSpec, ProblemSpec, Scenario};
pub use summary::summary_json;
pub use sweep::{failure_free, run_sweep, CampaignConfig, SweepPoint, SweepResult};

//! A hand-rolled, dependency-free JSON value type, parser and serializer.
//!
//! The campaign engine stores specs and artifacts as JSON/JSONL, but the
//! build container is fully offline, so `serde` is not available. This
//! module implements the subset the engine needs — which is all of JSON,
//! plus one deliberate extension: the bare tokens `NaN`, `Infinity` and
//! `-Infinity` are accepted and produced for non-finite numbers, because
//! fault-injection experiments legitimately generate them and silently
//! mapping them to `null` would corrupt artifacts.
//!
//! Numbers round-trip exactly: [`fmt_f64`] emits the shortest decimal
//! representation that parses back to the identical bit pattern (Rust's
//! `{}`/`{:e}` formatting is shortest-round-trip by specification, and
//! `str::parse::<f64>` is correctly rounded).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`], so re-serializing a parsed value produces
/// keys in sorted order. The engine always *constructs* records through
/// this type, which makes every artifact line canonical by construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, including the non-finite extension tokens.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

/// A JSON syntax or schema error, with a byte offset for syntax errors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was found (0 for
    /// schema-level errors raised by accessors).
    pub offset: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(offset: usize, msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { offset, msg: msg.into() })
}

/// Formats a float so that parsing the result reproduces the exact same
/// `f64`, preferring readable forms:
///
/// * integral values within `i64`'s exact range print as integers
///   (`25`, `-3`);
/// * everything else prints via `{:e}` (shortest round-trip scientific,
///   e.g. `1.5e-7`);
/// * non-finite values print as `NaN` / `Infinity` / `-Infinity`.
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        return "NaN".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "Infinity".to_string() } else { "-Infinity".to_string() };
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral and exactly representable: print without exponent.
        // (-0.0 normalizes to 0 here, which parses back equal.)
        return format!("{}", x as i64);
    }
    format!("{x:e}")
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes the value on a single line (JSONL-safe: no newlines).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(pos, "trailing characters after value");
        }
        Ok(v)
    }

    // ---- typed accessors (schema-level errors) ----

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or(JsonError { offset: 0, msg: format!("missing field '{key}'") })
    }

    /// This value as a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(0, format!("expected string, got {}", other.kind())),
        }
    }

    /// This value as a float.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => err(0, format!("expected number, got {}", other.kind())),
        }
    }

    /// This value as a non-negative integer (must be integral and exact).
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let x = self.as_f64()?;
        if x < 0.0 || x != x.trunc() || x > 9.0e15 {
            return err(0, format!("expected non-negative integer, got {x}"));
        }
        Ok(x as usize)
    }

    /// This value as a 64-bit unsigned integer.
    ///
    /// Accepts either a JSON number (when integral and exactly
    /// representable in `f64`) or a decimal string — the canonical form
    /// the engine writes, since seeds use the full 64-bit range and JSON
    /// numbers only carry 53 bits exactly.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        if let Json::Str(s) = self {
            return s
                .parse::<u64>()
                .map_err(|_| JsonError { offset: 0, msg: format!("expected u64, got '{s}'") });
        }
        let x = self.as_f64()?;
        if x < 0.0 || x != x.trunc() || x > 9.0e15 {
            return err(0, format!("expected u64, got {x}"));
        }
        Ok(x as u64)
    }

    /// The canonical serialization of a `u64`: a decimal string, exact
    /// for the full 64-bit range.
    pub fn u64(x: u64) -> Json {
        Json::Str(x.to_string())
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(0, format!("expected bool, got {}", other.kind())),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(0, format!("expected array, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum container nesting. Engine output nests a handful of levels;
/// the limit exists so a pathological input returns an error instead of
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return err(*pos, format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return err(*pos, "unexpected end of input");
    };
    match c {
        b'{' => parse_object(b, pos, depth),
        b'[' => parse_array(b, pos, depth),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_keyword(b, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(b, pos, "false", Json::Bool(false)),
        b'n' => parse_keyword(b, pos, "null", Json::Null),
        b'N' => parse_keyword(b, pos, "NaN", Json::Num(f64::NAN)),
        b'I' => parse_keyword(b, pos, "Infinity", Json::Num(f64::INFINITY)),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => err(*pos, format!("unexpected character '{}'", other as char)),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        err(*pos, format!("invalid token (expected '{word}')"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b[*pos] == b'-' {
        *pos += 1;
        // `-Infinity` extension.
        if b[*pos..].starts_with(b"Infinity") {
            *pos += "Infinity".len();
            return Ok(Json::Num(f64::NEG_INFINITY));
        }
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    match text.parse::<f64>() {
        Ok(x) => Ok(Json::Num(x)),
        Err(_) => err(start, format!("invalid number '{text}'")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return err(*pos, "unterminated string");
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return err(*pos, "unterminated escape");
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return err(*pos, "truncated \\u escape");
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| JsonError {
                                offset: *pos,
                                msg: "non-ascii \\u escape".into(),
                            })?
                            .to_string();
                        let cp = u32::from_str_radix(&hex, 16).map_err(|_| JsonError {
                            offset: *pos,
                            msg: format!("bad \\u escape '{hex}'"),
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return err(*pos - 1, format!("bad escape '\\{}'", other as char));
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar (possibly multi-byte) verbatim.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| JsonError { offset: *pos, msg: "invalid utf-8".into() })?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(*pos, "expected ',' or ']' in array"),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return err(*pos, "expected string key");
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return err(*pos, "expected ':' after key");
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        if map.insert(key.clone(), value).is_some() {
            return err(*pos, format!("duplicate key '{key}'"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return err(*pos, "expected ',' or '}' in object"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_round_trips_exactly() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            25.0,
            0.1,
            1.5e-7,
            1e150,
            1e-300,
            10f64.powf(-0.5),
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
            -9.007199254740991e15,
        ];
        for &x in &cases {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            // -0.0 normalizes to 0.0 by design; everything else is bitwise.
            if x == 0.0 {
                assert_eq!(back, 0.0);
            } else {
                assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
            }
        }
    }

    #[test]
    fn fmt_f64_integral_is_plain() {
        assert_eq!(fmt_f64(25.0), "25");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.0), "0");
    }

    #[test]
    fn fmt_f64_non_finite_tokens() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "Infinity");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn fmt_f64_agrees_with_the_obs_copy() {
        // `sdc_obs` sits below this crate in the dependency graph and
        // duplicates fmt_f64 to stay dependency-free; the two must never
        // drift, or det traces stop being byte-comparable with artifacts.
        let mut cases = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            25.0,
            0.5,
            0.1,
            1.5e-7,
            1e150,
            1e-300,
            9.0e15,
            9.1e15,
            -9.007199254740991e15,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ];
        let mut z = 0x9e3779b97f4a7c15u64;
        for _ in 0..512 {
            z = z.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(1);
            let x = f64::from_bits(z);
            cases.push(x);
            cases.push((z >> 12) as f64);
        }
        for &x in &cases {
            assert_eq!(fmt_f64(x), sdc_obs::trace::fmt_f64(x), "bits {:#x}", x.to_bits());
        }
    }

    #[test]
    fn value_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::str("fig3")),
            ("stride", Json::Num(5.0)),
            ("tol", Json::Num(1e-7)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::str("v\" \\ \n"))])),
        ]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "JSONL lines must be newline-free");
        let back = Json::parse(&line).unwrap();
        assert_eq!(back, v);
        // Canonical: serializing the parse is identical.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn parses_standard_json_with_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e0 , \"x\" ] , \"b\" : false } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(!v.field("b").unwrap().as_bool().unwrap());
    }

    #[test]
    fn parses_non_finite_extension() {
        let v = Json::parse("[NaN,Infinity,-Infinity]").unwrap();
        let a = v.as_arr().unwrap();
        assert!(a[0].as_f64().unwrap().is_nan());
        assert_eq!(a[1].as_f64().unwrap(), f64::INFINITY);
        assert_eq!(a[2].as_f64().unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessor_errors_name_the_problem() {
        let v = Json::parse("{\"n\":1.5}").unwrap();
        assert!(v.field("missing").is_err());
        assert!(v.field("n").unwrap().as_usize().is_err());
        assert!(v.field("n").unwrap().as_str().is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the limit: fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Pathological input must come back as an error, not a crash.
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        let deep_obj = "{\"a\":".repeat(100_000) + "1" + &"}".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("π ‖A‖_F €".to_string());
        assert_eq!(Json::parse(&v.to_line()).unwrap(), v);
    }
}

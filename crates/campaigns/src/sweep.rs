//! The single-SDC sweep driver (§VII-B).
//!
//! For each experiment the solver re-solves the same system (same matrix,
//! right-hand side and initial guess) with a single fault injected at one
//! (aggregate inner iteration, MGS position, fault class) coordinate. The
//! experiments are mutually independent, so the sweep runs them in
//! parallel on the sdc_parallel pool — each experiment's kernels are deterministic, so
//! the sweep's output is identical however it is scheduled.
//!
//! This module is the *raw* path: one (class, position) series, no
//! persistence. The [`crate::executor`] runs the same experiments unit by
//! unit behind an artifact file; [`crate::report`] reconstructs
//! [`SweepResult`] values from that artifact without re-solving.

use crate::problems::Problem;
use rayon::prelude::*;
use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
use sdc_gmres::prelude::*;

/// Sweep configuration (mirrors the paper's experimental setup).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Inner iterations per outer iteration (paper: 25).
    pub inner_iters: usize,
    /// Outer relative-residual tolerance.
    pub outer_tol: f64,
    /// Outer iteration cap (well above the failure-free count so
    /// penalties are measurable).
    pub outer_max: usize,
    /// Detector response, or `None` to run undetected.
    pub detector_response: Option<DetectorResponse>,
    /// Sweep stride: 1 = every aggregate iteration (the paper's full
    /// figures), larger = subsampled quick runs.
    pub stride: usize,
    /// Inner projected-LSQ policy (§VI-D; the paper recommends 1 or 3).
    pub inner_lsq: LstsqPolicy,
    /// Sparse storage engine for the operator. SELL SpMV is bitwise
    /// identical to CSR, so this is a pure performance knob: artifacts
    /// are byte-identical whichever engine runs.
    pub format: sdc_sparse::SparseFormat,
    /// Right preconditioner applied inside the inner solves (the sequel
    /// paper's opaque inner operator). `None` reproduces the
    /// unpreconditioned solver bit-for-bit, including the legacy
    /// Frobenius detector bound.
    pub precond: PrecondKind,
    /// SpMV kernel tier. `Strict` (the default, elided from specs and
    /// artifacts) keeps every byte identical to the legacy solver;
    /// `FastMath` opts into the intra-row-fused CSR kernel, which
    /// changes solve trajectories and is pinned by its own goldens.
    pub tier: sdc_sparse::KernelTier,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            inner_iters: 25,
            outer_tol: 1e-8,
            outer_max: 120,
            detector_response: None,
            stride: 1,
            inner_lsq: LstsqPolicy::Standard,
            format: sdc_sparse::SparseFormat::Auto,
            precond: PrecondKind::None,
            tier: sdc_sparse::KernelTier::Strict,
        }
    }
}

impl CampaignConfig {
    /// The FT-GMRES configuration realizing this campaign on matrix `a`
    /// with no preconditioner (legacy path, byte-stable).
    pub fn ft_config(&self, a: &sdc_sparse::CsrMatrix) -> FtGmresConfig {
        self.ft_config_with(a, &BuiltPrecond::None)
    }

    /// The FT-GMRES configuration realizing this campaign on matrix `a`,
    /// preconditioned by `precond`. The detector bound follows the
    /// iteration it guards: the Frobenius bound for plain Arnoldi, the
    /// `‖A‖_F·‖M⁻¹‖`-scaled bound when the inner operator is `A·M⁻¹`.
    pub fn ft_config_with(
        &self,
        a: &sdc_sparse::CsrMatrix,
        precond: &BuiltPrecond,
    ) -> FtGmresConfig {
        FtGmresConfig {
            outer: sdc_gmres::fgmres::FgmresConfig {
                tol: self.outer_tol,
                max_outer: self.outer_max,
                ..Default::default()
            },
            inner_iters: self.inner_iters,
            inner_lsq_policy: self.inner_lsq,
            inner_detector: self.detector_response.map(|resp| {
                if precond.is_none() {
                    SdcDetector::with_frobenius_bound(a, resp)
                } else {
                    SdcDetector::with_preconditioned_bound(a, precond, resp)
                }
            }),
            ..Default::default()
        }
    }

    /// Resolves this config's preconditioner on problem `p` (cached per
    /// problem). Panics on a build failure: campaign configs are
    /// validated up front, so an unfactorable matrix is a caller bug.
    pub fn precond<'p>(&self, p: &'p Problem) -> &'p BuiltPrecond {
        p.precond(self.precond).unwrap_or_else(|e| panic!("{} on {}: {e}", self.precond, p.name))
    }
}

/// One experiment's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The aggregate inner iteration that was faulted (x-axis).
    pub aggregate: usize,
    /// Outer iterations to convergence (y-axis).
    pub outer_iterations: usize,
    /// Whether the solve converged within the cap.
    pub converged: bool,
    /// Whether the fault was actually committed (late sites may never be
    /// reached if the solve converges first).
    pub injected: bool,
    /// Whether the detector flagged anything.
    pub detected: bool,
    /// Detector-forced inner restarts.
    pub restarts: usize,
    /// Reliable relative residual of the returned solution.
    pub true_rel_residual: f64,
}

/// A full (class, position) series.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Fault class of this series.
    pub class: FaultClass,
    /// MGS position of this series.
    pub position: MgsPosition,
    /// Failure-free outer iteration count (the baseline).
    pub failure_free_outer: usize,
    /// One point per (strided) aggregate iteration.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The worst outer-iteration count in the series.
    pub fn max_outer(&self) -> usize {
        self.points.iter().map(|p| p.outer_iterations).max().unwrap_or(0)
    }

    /// The worst increase over failure-free.
    pub fn max_increase(&self) -> usize {
        self.max_outer().saturating_sub(self.failure_free_outer)
    }

    /// Worst-case percentage increase in time-to-solution (§VII-E).
    pub fn pct_increase(&self) -> f64 {
        100.0 * self.max_increase() as f64 / self.failure_free_outer.max(1) as f64
    }

    /// Number of experiments with no penalty at all.
    pub fn count_no_penalty(&self) -> usize {
        self.points.iter().filter(|p| p.outer_iterations <= self.failure_free_outer).count()
    }

    /// Number of experiments in which the fault was committed and detected.
    pub fn count_detected(&self) -> usize {
        self.points.iter().filter(|p| p.detected).count()
    }

    /// Number of experiments that failed to converge.
    pub fn count_failures(&self) -> usize {
        self.points.iter().filter(|p| !p.converged).count()
    }
}

/// Runs the failure-free baseline and returns its report.
pub fn failure_free(p: &Problem, cfg: &CampaignConfig) -> SolveReport {
    let pc = cfg.precond(p);
    let ft = cfg.ft_config_with(&p.a, pc);
    let op = p.operator_tiered(cfg.format, cfg.tier);
    let (_, rep) =
        sdc_gmres::ftgmres::ftgmres_solve_precond(&op, &p.b, None, &ft, pc, &sdc_faults::NoFaults);
    rep
}

/// Runs one full sweep series: a single SDC of `class` at `position`,
/// swept over every (strided) aggregate inner iteration in
/// `1..=inner_iters·failure_free_outer`.
pub fn run_sweep(
    p: &Problem,
    cfg: &CampaignConfig,
    class: FaultClass,
    position: MgsPosition,
    failure_free_outer: usize,
) -> SweepResult {
    let pc = cfg.precond(p);
    let ft = cfg.ft_config_with(&p.a, pc);
    let domain: Vec<usize> =
        (1..=cfg.inner_iters * failure_free_outer).step_by(cfg.stride.max(1)).collect();
    let points: Vec<SweepPoint> = domain
        .par_iter()
        .map(|&aggregate| {
            let point = CampaignPoint {
                aggregate_iteration: aggregate,
                inner_per_outer: cfg.inner_iters,
                class,
                position,
            };
            run_experiment(p, &ft, point, cfg.format, cfg.tier, pc)
        })
        .collect();
    SweepResult { class, position, failure_free_outer, points }
}

/// Runs exactly one experiment: one solve with one SDC coordinate armed.
///
/// Both [`run_sweep`] and the campaign executor go through this function,
/// so a sweep point and the corresponding artifact record are guaranteed
/// to be the same computation. `format` picks the SpMV engine; results
/// are bitwise independent of it. `tier` picks the arithmetic contract;
/// `FastMath` results differ from `Strict` (but deterministically so).
pub fn run_experiment(
    p: &Problem,
    ft: &FtGmresConfig,
    point: CampaignPoint,
    format: sdc_sparse::SparseFormat,
    tier: sdc_sparse::KernelTier,
    precond: &BuiltPrecond,
) -> SweepPoint {
    let inj = point.injector();
    let op = p.operator_tiered(format, tier);
    let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve_precond(&op, &p.b, None, ft, precond, &inj);
    let mut r = vec![0.0; p.b.len()];
    sdc_gmres::operator::residual(&p.a, &p.b, &x, &mut r);
    let true_rel = sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(&p.b).max(1e-300);
    SweepPoint {
        aggregate: point.aggregate_iteration,
        outer_iterations: rep.iterations,
        converged: rep.outcome.is_converged(),
        injected: !rep.injections.is_empty(),
        detected: rep.detected_anything(),
        restarts: rep.detector_restarts,
        true_rel_residual: true_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            inner_iters: 8,
            outer_tol: 1e-8,
            outer_max: 60,
            detector_response: None,
            stride: 5,
            inner_lsq: LstsqPolicy::Standard,
            format: sdc_sparse::SparseFormat::Auto,
            precond: PrecondKind::None,
            tier: sdc_sparse::KernelTier::Strict,
        }
    }

    #[test]
    fn sweep_runs_and_all_points_converge() {
        let p = problems::poisson(8);
        let cfg = tiny_cfg();
        let ff = failure_free(&p, &cfg);
        assert!(ff.outcome.is_converged());
        let res = run_sweep(&p, &cfg, FaultClass::Slight, MgsPosition::First, ff.iterations);
        assert!(!res.points.is_empty());
        assert_eq!(res.count_failures(), 0, "all experiments must converge");
        for pt in &res.points {
            assert!(pt.true_rel_residual <= 1e-7, "agg {}: {}", pt.aggregate, pt.true_rel_residual);
        }
    }

    #[test]
    fn detector_sweep_detects_all_committed_class1() {
        let p = problems::poisson(8);
        let mut cfg = tiny_cfg();
        cfg.detector_response = Some(DetectorResponse::RestartInner);
        let ff = failure_free(&p, &cfg);
        let res = run_sweep(&p, &cfg, FaultClass::Huge, MgsPosition::First, ff.iterations);
        for pt in &res.points {
            if pt.injected {
                assert!(pt.detected, "committed class-1 fault at {} escaped", pt.aggregate);
            }
        }
        // With the detector, the worst-case penalty is tiny.
        assert!(res.max_increase() <= 2, "max increase {}", res.max_increase());
    }

    #[test]
    fn sweep_is_deterministic() {
        let p = problems::poisson(6);
        let cfg = CampaignConfig { inner_iters: 5, stride: 7, ..tiny_cfg() };
        let ff = failure_free(&p, &cfg);
        let r1 = run_sweep(&p, &cfg, FaultClass::Tiny, MgsPosition::Last, ff.iterations);
        let r2 = run_sweep(&p, &cfg, FaultClass::Tiny, MgsPosition::Last, ff.iterations);
        assert_eq!(r1.points.len(), r2.points.len());
        for (a, b) in r1.points.iter().zip(r2.points.iter()) {
            assert_eq!(a.outer_iterations, b.outer_iterations);
            assert_eq!(a.true_rel_residual.to_bits(), b.true_rel_residual.to_bits());
        }
    }

    #[test]
    fn preconditioned_sweep_converges_and_is_deterministic() {
        let p = problems::poisson(8);
        for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
            let mut cfg = tiny_cfg();
            cfg.precond = kind;
            cfg.detector_response = Some(DetectorResponse::RestartInner);
            let ff = failure_free(&p, &cfg);
            assert!(ff.outcome.is_converged(), "{kind}: baseline must converge");
            let r1 = run_sweep(&p, &cfg, FaultClass::Huge, MgsPosition::First, ff.iterations);
            let r2 = run_sweep(&p, &cfg, FaultClass::Huge, MgsPosition::First, ff.iterations);
            assert_eq!(r1.count_failures(), 0, "{kind}: every experiment must converge");
            for (a, b) in r1.points.iter().zip(r2.points.iter()) {
                assert_eq!(a.outer_iterations, b.outer_iterations, "{kind}");
                assert_eq!(a.true_rel_residual.to_bits(), b.true_rel_residual.to_bits(), "{kind}");
            }
        }
    }

    #[test]
    fn summary_statistics() {
        let res = SweepResult {
            class: FaultClass::Huge,
            position: MgsPosition::First,
            failure_free_outer: 9,
            points: vec![
                SweepPoint {
                    aggregate: 1,
                    outer_iterations: 12,
                    converged: true,
                    injected: true,
                    detected: true,
                    restarts: 1,
                    true_rel_residual: 1e-9,
                },
                SweepPoint {
                    aggregate: 2,
                    outer_iterations: 9,
                    converged: true,
                    injected: true,
                    detected: false,
                    restarts: 0,
                    true_rel_residual: 1e-9,
                },
            ],
        };
        assert_eq!(res.max_outer(), 12);
        assert_eq!(res.max_increase(), 3);
        assert!((res.pct_increase() - 33.333).abs() < 0.01);
        assert_eq!(res.count_no_penalty(), 1);
        assert_eq!(res.count_detected(), 1);
        assert_eq!(res.count_failures(), 0);
    }
}

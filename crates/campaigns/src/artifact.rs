//! The JSONL artifact format: one self-describing record per line.
//!
//! An artifact is the campaign's single source of truth. It opens with a
//! header carrying the full spec, then one record per problem (matrix
//! characteristics for Table-1-style reporting), one per baseline solve,
//! and one per completed experiment — always in the engine's canonical
//! order, so the file's bytes are a pure function of the spec no matter
//! how execution was scheduled, sharded or interrupted.
//!
//! [`scan`] reads a (possibly truncated) artifact back, tolerating a
//! partial trailing line — the expected state after a `kill -9` — and
//! reporting the byte offset of the last complete record so the executor
//! can truncate and append.

use crate::json::{Json, JsonError};
use crate::spec::{CampaignSpec, LsqSpec, Scenario};
use crate::sweep::SweepPoint;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// One line of an artifact.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// First line: format version + the full spec.
    Header {
        /// The campaign spec this artifact realizes.
        spec: CampaignSpec,
    },
    /// Matrix characteristics of one problem (Table-1 inputs).
    Problem {
        /// Index into the spec's problem list.
        index: usize,
        /// Display name.
        name: String,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Stored nonzeros.
        nnz: usize,
        /// Frobenius norm `‖A‖_F` (the paper's safe detector bound).
        norm_fro: f64,
        /// Power-iteration estimate of `‖A‖₂`, when the spec asked for it.
        norm2_est: Option<f64>,
    },
    /// One fault-free baseline solve.
    Baseline {
        /// Problem index.
        problem: usize,
        /// Least-squares policy the baseline ran with.
        lsq: LsqSpec,
        /// Outer iterations to convergence.
        outer_iterations: usize,
        /// Whether the baseline converged (it must, but record the truth).
        converged: bool,
    },
    /// One completed experiment (one faulted solve).
    Experiment {
        /// Position in the canonical unit sequence (0-based).
        unit: usize,
        /// The scenario coordinate.
        scenario: Scenario,
        /// Stable per-unit seed derived from the spec seed.
        seed: u64,
        /// The measured outcome.
        point: SweepPoint,
    },
}

impl Record {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// The record as a JSON value (exactly what [`Record::to_line`]
    /// serializes; `sdc_server` embeds this in streamed job events).
    pub fn to_json(&self) -> Json {
        match self {
            Record::Header { spec } => {
                Json::obj(vec![("kind", Json::str("header")), ("spec", spec.to_json())])
            }
            Record::Problem { index, name, rows, cols, nnz, norm_fro, norm2_est } => {
                let mut pairs = vec![
                    ("kind", Json::str("problem")),
                    ("index", Json::Num(*index as f64)),
                    ("name", Json::str(name)),
                    ("rows", Json::Num(*rows as f64)),
                    ("cols", Json::Num(*cols as f64)),
                    ("nnz", Json::Num(*nnz as f64)),
                    ("norm_fro", Json::Num(*norm_fro)),
                ];
                if let Some(n2) = norm2_est {
                    pairs.push(("norm2_est", Json::Num(*n2)));
                }
                Json::obj(pairs)
            }
            Record::Baseline { problem, lsq, outer_iterations, converged } => Json::obj(vec![
                ("kind", Json::str("baseline")),
                ("problem", Json::Num(*problem as f64)),
                ("lsq", lsq.to_json()),
                ("outer_iterations", Json::Num(*outer_iterations as f64)),
                ("converged", Json::Bool(*converged)),
            ]),
            Record::Experiment { unit, scenario, seed, point } => Json::obj(vec![
                ("kind", Json::str("experiment")),
                ("unit", Json::Num(*unit as f64)),
                ("scenario", scenario.to_json()),
                ("seed", Json::u64(*seed)),
                ("aggregate", Json::Num(point.aggregate as f64)),
                ("outer_iterations", Json::Num(point.outer_iterations as f64)),
                ("converged", Json::Bool(point.converged)),
                ("injected", Json::Bool(point.injected)),
                ("detected", Json::Bool(point.detected)),
                ("restarts", Json::Num(point.restarts as f64)),
                ("true_rel_residual", Json::Num(point.true_rel_residual)),
            ]),
        }
    }

    /// Parses one JSONL line.
    pub fn parse(line: &str) -> Result<Record, JsonError> {
        let v = Json::parse(line)?;
        match v.field("kind")?.as_str()? {
            "header" => Ok(Record::Header { spec: CampaignSpec::from_json(v.field("spec")?)? }),
            "problem" => Ok(Record::Problem {
                index: v.field("index")?.as_usize()?,
                name: v.field("name")?.as_str()?.to_string(),
                rows: v.field("rows")?.as_usize()?,
                cols: v.field("cols")?.as_usize()?,
                nnz: v.field("nnz")?.as_usize()?,
                norm_fro: v.field("norm_fro")?.as_f64()?,
                norm2_est: match v.get("norm2_est") {
                    Some(n) => Some(n.as_f64()?),
                    None => None,
                },
            }),
            "baseline" => Ok(Record::Baseline {
                problem: v.field("problem")?.as_usize()?,
                lsq: LsqSpec::from_json(v.field("lsq")?)?,
                outer_iterations: v.field("outer_iterations")?.as_usize()?,
                converged: v.field("converged")?.as_bool()?,
            }),
            "experiment" => Ok(Record::Experiment {
                unit: v.field("unit")?.as_usize()?,
                scenario: Scenario::from_json(v.field("scenario")?)?,
                seed: v.field("seed")?.as_u64()?,
                point: SweepPoint {
                    aggregate: v.field("aggregate")?.as_usize()?,
                    outer_iterations: v.field("outer_iterations")?.as_usize()?,
                    converged: v.field("converged")?.as_bool()?,
                    injected: v.field("injected")?.as_bool()?,
                    detected: v.field("detected")?.as_bool()?,
                    restarts: v.field("restarts")?.as_usize()?,
                    true_rel_residual: v.field("true_rel_residual")?.as_f64()?,
                },
            }),
            other => Err(JsonError { offset: 0, msg: format!("unknown record kind '{other}'") }),
        }
    }
}

/// Errors reading or validating an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structurally broken record before the tail (offset is 1-based
    /// line number).
    Corrupt {
        /// 1-based line number of the broken record.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Corrupt { line, msg } => {
                write!(f, "artifact corrupt at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// The result of scanning an existing artifact.
#[derive(Debug)]
pub struct Scan {
    /// Every complete, parseable record, in file order.
    pub records: Vec<Record>,
    /// End byte offset (exclusive, including the newline) of each record
    /// in `records` — `ends[i]` is where the file would be truncated to
    /// keep exactly records `0..=i`.
    pub ends: Vec<u64>,
    /// Byte length of the valid prefix (everything after this offset is
    /// a partial or broken tail to be truncated before appending).
    pub valid_bytes: u64,
    /// True when the file had a broken/partial tail past `valid_bytes`.
    pub dirty_tail: bool,
}

/// Scans an artifact, tolerating a partial trailing line.
///
/// A line is only considered at all if it is newline-terminated — a
/// record whose write was cut short by a kill is, by construction, the
/// unterminated last line. A *terminated* line that fails to parse stops
/// the scan there (the rest of the file cannot be trusted to be in
/// canonical order), returning everything before it as the valid prefix.
pub fn scan(path: &Path) -> Result<Scan, ArtifactError> {
    let bytes = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut valid_bytes = 0u64;
    let mut start = 0usize;
    let mut lineno = 0usize;
    while start < bytes.len() {
        let Some(rel_end) = bytes[start..].iter().position(|&b| b == b'\n') else {
            break; // unterminated tail
        };
        let end = start + rel_end;
        lineno += 1;
        let line = std::str::from_utf8(&bytes[start..end])
            .map_err(|_| ArtifactError::Corrupt { line: lineno, msg: "invalid utf-8".into() });
        let parsed = line.and_then(|l| {
            Record::parse(l)
                .map_err(|e| ArtifactError::Corrupt { line: lineno, msg: e.to_string() })
        });
        match parsed {
            Ok(rec) => {
                records.push(rec);
                ends.push((end + 1) as u64);
                valid_bytes = (end + 1) as u64;
                start = end + 1;
            }
            Err(_) => break, // truncate from here
        }
    }
    let dirty_tail = valid_bytes != bytes.len() as u64;
    Ok(Scan { records, ends, valid_bytes, dirty_tail })
}

/// Appends one record (plus newline) to a writer.
pub fn append(w: &mut impl Write, rec: &Record) -> std::io::Result<()> {
    w.write_all(rec.to_line().as_bytes())?;
    w.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, DetectorPolicy, ProblemSpec};
    use sdc_faults::campaign::{FaultClass, MgsPosition};

    fn spec() -> CampaignSpec {
        CampaignSpec::paper_shape("t", vec![ProblemSpec::Poisson { m: 8 }])
    }

    fn sample_records() -> Vec<Record> {
        let scenario = Scenario {
            problem: 0,
            class: FaultClass::Huge,
            position: MgsPosition::First,
            detector: DetectorPolicy::Off,
            lsq: LsqSpec::Standard,
        };
        vec![
            Record::Header { spec: spec() },
            Record::Problem {
                index: 0,
                name: "Poisson 8x8".into(),
                rows: 64,
                cols: 64,
                nnz: 288,
                norm_fro: 42.5,
                norm2_est: None,
            },
            Record::Baseline {
                problem: 0,
                lsq: LsqSpec::Standard,
                outer_iterations: 9,
                converged: true,
            },
            Record::Experiment {
                unit: 0,
                scenario,
                seed: 0xdead_beef,
                point: SweepPoint {
                    aggregate: 1,
                    outer_iterations: 12,
                    converged: true,
                    injected: true,
                    detected: false,
                    restarts: 0,
                    true_rel_residual: 3.5e-9,
                },
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let line = rec.to_line();
            assert!(!line.contains('\n'));
            let back = Record::parse(&line).unwrap();
            assert_eq!(back, rec, "{line}");
            assert_eq!(back.to_line(), line, "canonical serialization");
        }
    }

    #[test]
    fn scan_handles_partial_tail() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sdc_artifact_scan_{}.jsonl", std::process::id()));
        let mut buf = Vec::new();
        let recs = sample_records();
        for r in &recs {
            append(&mut buf, r).unwrap();
        }
        let full_len = buf.len() as u64;

        // Complete file: everything valid, clean tail.
        std::fs::write(&path, &buf).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records, recs);
        assert_eq!(s.valid_bytes, full_len);
        assert!(!s.dirty_tail);

        // Kill mid-record: the last line is cut short.
        std::fs::write(&path, &buf[..buf.len() - 17]).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), recs.len() - 1);
        assert!(s.dirty_tail);
        // The valid prefix ends exactly where the last complete record did.
        let third_end = {
            let mut b = Vec::new();
            for r in &recs[..3] {
                append(&mut b, r).unwrap();
            }
            b.len() as u64
        };
        assert_eq!(s.valid_bytes, third_end);

        // Garbage mid-file stops the scan at the garbage line.
        let mut garbled = Vec::new();
        append(&mut garbled, &recs[0]).unwrap();
        garbled.extend_from_slice(b"{not json}\n");
        append(&mut garbled, &recs[1]).unwrap();
        std::fs::write(&path, &garbled).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.dirty_tail);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_scans_clean() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sdc_artifact_empty_{}.jsonl", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.valid_bytes, 0);
        assert!(!s.dirty_tail);
        std::fs::remove_file(&path).ok();
    }
}

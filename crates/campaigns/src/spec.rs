//! The declarative campaign specification.
//!
//! A [`CampaignSpec`] describes a full scenario grid — problems, fault
//! classes, MGS positions, detector policies, least-squares policies,
//! sweep stride and the base seed — as data. The executor turns it into a
//! deterministic sequence of work units; nothing about *how* the grid is
//! run (sharding, parallelism, resume) lives here.
//!
//! A spec is one JSON object (see `crates/campaigns/README.md` for the
//! format). The grid is a union of `blocks`, each a cross product of its
//! lists; this is what lets one spec express the paper's figures exactly
//! (six undetected series plus the detector-on class-1 series) without
//! running the full cross product of every axis.

use crate::json::{Json, JsonError};
use crate::problems::{self, Problem};
use crate::sweep::CampaignConfig;
use sdc_faults::campaign::{FaultClass, MgsPosition};
use sdc_gmres::prelude::{DetectorResponse, LstsqPolicy, PrecondKind};
use std::path::PathBuf;

/// Current spec/artifact format version.
pub const FORMAT_VERSION: u64 = 1;

/// How one evaluation problem is constructed.
#[derive(Clone, Debug, PartialEq)]
pub enum ProblemSpec {
    /// `gallery('poisson', m)` with `b = A·1`.
    Poisson {
        /// Grid side; the matrix is `m² × m²`.
        m: usize,
    },
    /// The synthetic `mult_dcop_03` stand-in, equilibrated.
    Dcop {
        /// Circuit node count.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A Matrix Market file from disk.
    MatrixMarket {
        /// Path to the `.mtx` file.
        path: PathBuf,
        /// Apply symmetric diagonal equilibration after loading.
        equilibrate: bool,
    },
}

impl ProblemSpec {
    /// Builds the problem (loads/generates the matrix, forms `b = A·1`).
    pub fn build(&self) -> Problem {
        match self {
            ProblemSpec::Poisson { m } => problems::poisson(*m),
            ProblemSpec::Dcop { nodes, seed } => problems::dcop(None, *nodes, *seed),
            ProblemSpec::MatrixMarket { path, equilibrate } => {
                let mut a = sdc_sparse::io::read_matrix_market(path)
                    .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
                if *equilibrate {
                    problems::equilibrate(&mut a);
                }
                Problem::with_ones_solution(format!("mtx ({})", path.display()), a)
            }
        }
    }

    /// Serializes to the spec's JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            ProblemSpec::Poisson { m } => {
                Json::obj(vec![("kind", Json::str("poisson")), ("m", Json::Num(*m as f64))])
            }
            ProblemSpec::Dcop { nodes, seed } => Json::obj(vec![
                ("kind", Json::str("dcop")),
                ("nodes", Json::Num(*nodes as f64)),
                ("seed", Json::u64(*seed)),
            ]),
            ProblemSpec::MatrixMarket { path, equilibrate } => Json::obj(vec![
                ("kind", Json::str("matrix_market")),
                ("path", Json::str(path.to_string_lossy())),
                ("equilibrate", Json::Bool(*equilibrate)),
            ]),
        }
    }

    /// Parses the spec's JSON form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("kind")?.as_str()? {
            "poisson" => Ok(ProblemSpec::Poisson { m: v.field("m")?.as_usize()? }),
            "dcop" => Ok(ProblemSpec::Dcop {
                nodes: v.field("nodes")?.as_usize()?,
                seed: v.field("seed")?.as_u64()?,
            }),
            "matrix_market" => Ok(ProblemSpec::MatrixMarket {
                path: PathBuf::from(v.field("path")?.as_str()?),
                equilibrate: v.field("equilibrate")?.as_bool()?,
            }),
            other => Err(JsonError { offset: 0, msg: format!("unknown problem kind '{other}'") }),
        }
    }
}

/// The detector axis of the grid: off, or on with one of the responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetectorPolicy {
    /// No detector.
    Off,
    /// Detector in observation mode.
    Record,
    /// Detector restarts the inner solve on violation.
    RestartInner,
    /// Detector aborts the inner solve on violation.
    AbortInner,
    /// Detector halts the whole solver on violation.
    Halt,
}

impl DetectorPolicy {
    /// The solver-side response, `None` when the detector is off.
    pub fn response(&self) -> Option<DetectorResponse> {
        match self {
            DetectorPolicy::Off => None,
            DetectorPolicy::Record => Some(DetectorResponse::Record),
            DetectorPolicy::RestartInner => Some(DetectorResponse::RestartInner),
            DetectorPolicy::AbortInner => Some(DetectorResponse::AbortInner),
            DetectorPolicy::Halt => Some(DetectorResponse::Halt),
        }
    }

    /// The spec string for this policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            DetectorPolicy::Off => "none",
            DetectorPolicy::Record => "record",
            DetectorPolicy::RestartInner => "restart_inner",
            DetectorPolicy::AbortInner => "abort_inner",
            DetectorPolicy::Halt => "halt",
        }
    }

    /// Parses the spec string.
    pub fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "none" => Ok(DetectorPolicy::Off),
            "record" => Ok(DetectorPolicy::Record),
            "restart_inner" => Ok(DetectorPolicy::RestartInner),
            "abort_inner" => Ok(DetectorPolicy::AbortInner),
            "halt" => Ok(DetectorPolicy::Halt),
            other => Err(JsonError { offset: 0, msg: format!("unknown detector '{other}'") }),
        }
    }
}

/// The projected-least-squares axis (§VI-D policies).
#[derive(Clone, Copy, Debug)]
pub enum LsqSpec {
    /// Approach 1: plain back-substitution.
    Standard,
    /// Approach 2: rank-revealing only on non-finite values.
    FallbackOnNonFinite {
        /// Relative singular-value truncation tolerance.
        tol: f64,
    },
    /// Approach 3: always rank-revealing.
    RankRevealing {
        /// Relative singular-value truncation tolerance.
        tol: f64,
    },
}

impl LsqSpec {
    /// The solver-side policy.
    pub fn policy(&self) -> LstsqPolicy {
        match self {
            LsqSpec::Standard => LstsqPolicy::Standard,
            LsqSpec::FallbackOnNonFinite { tol } => LstsqPolicy::FallbackOnNonFinite { tol: *tol },
            LsqSpec::RankRevealing { tol } => LstsqPolicy::RankRevealing { tol: *tol },
        }
    }

    /// Serializes: `"standard"` or an object with a `tol`.
    pub fn to_json(&self) -> Json {
        match self {
            LsqSpec::Standard => Json::str("standard"),
            LsqSpec::FallbackOnNonFinite { tol } => Json::obj(vec![
                ("kind", Json::str("fallback_non_finite")),
                ("tol", Json::Num(*tol)),
            ]),
            LsqSpec::RankRevealing { tol } => {
                Json::obj(vec![("kind", Json::str("rank_revealing")), ("tol", Json::Num(*tol))])
            }
        }
    }

    /// Parses either form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "standard" => Ok(LsqSpec::Standard),
                other => Err(JsonError { offset: 0, msg: format!("unknown lsq policy '{other}'") }),
            };
        }
        match v.field("kind")?.as_str()? {
            "fallback_non_finite" => {
                Ok(LsqSpec::FallbackOnNonFinite { tol: v.field("tol")?.as_f64()? })
            }
            "rank_revealing" => Ok(LsqSpec::RankRevealing { tol: v.field("tol")?.as_f64()? }),
            other => Err(JsonError { offset: 0, msg: format!("unknown lsq policy '{other}'") }),
        }
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            LsqSpec::Standard => "standard".to_string(),
            LsqSpec::FallbackOnNonFinite { tol } => format!("fallback({tol:e})"),
            LsqSpec::RankRevealing { tol } => format!("rank_revealing({tol:e})"),
        }
    }

    /// Filename-safe tag (no parentheses), unique per policy + tolerance.
    pub fn file_tag(&self) -> String {
        match self {
            LsqSpec::Standard => "standard".to_string(),
            LsqSpec::FallbackOnNonFinite { tol } => format!("fallback{tol:e}"),
            LsqSpec::RankRevealing { tol } => format!("rankrev{tol:e}"),
        }
    }
}

// Equality/hashing go through the exact bit pattern of `tol`, so an
// `LsqSpec` can key scenario maps.
impl PartialEq for LsqSpec {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for LsqSpec {}
impl std::hash::Hash for LsqSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}
impl LsqSpec {
    fn key(&self) -> (u8, u64) {
        match self {
            LsqSpec::Standard => (0, 0),
            LsqSpec::FallbackOnNonFinite { tol } => (1, tol.to_bits()),
            LsqSpec::RankRevealing { tol } => (2, tol.to_bits()),
        }
    }
}

/// One block of the grid: the cross product of its four lists.
#[derive(Clone, Debug, PartialEq)]
pub struct GridBlock {
    /// Fault classes to sweep.
    pub classes: Vec<FaultClass>,
    /// MGS positions to sweep.
    pub positions: Vec<MgsPosition>,
    /// Detector policies to sweep.
    pub detectors: Vec<DetectorPolicy>,
    /// Least-squares policies to sweep.
    pub lsq: Vec<LsqSpec>,
}

impl GridBlock {
    /// The paper's default undetected block: all classes × both positions.
    pub fn undetected_full() -> Self {
        GridBlock {
            classes: FaultClass::all().to_vec(),
            positions: MgsPosition::both().to_vec(),
            detectors: vec![DetectorPolicy::Off],
            lsq: vec![LsqSpec::Standard],
        }
    }

    /// The §VII-E comparison block: class-1 with the detector responding.
    pub fn detector_class1() -> Self {
        GridBlock {
            classes: vec![FaultClass::Huge],
            positions: MgsPosition::both().to_vec(),
            detectors: vec![DetectorPolicy::RestartInner],
            lsq: vec![LsqSpec::Standard],
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("classes", Json::Arr(self.classes.iter().map(|c| Json::str(class_str(*c))).collect())),
            (
                "positions",
                Json::Arr(self.positions.iter().map(|p| Json::str(position_str(*p))).collect()),
            ),
            (
                "detectors",
                Json::Arr(self.detectors.iter().map(|d| Json::str(d.as_str())).collect()),
            ),
            ("lsq", Json::Arr(self.lsq.iter().map(|l| l.to_json()).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let classes = v
            .field("classes")?
            .as_arr()?
            .iter()
            .map(|c| class_parse(c.as_str()?))
            .collect::<Result<Vec<_>, _>>()?;
        let positions = v
            .field("positions")?
            .as_arr()?
            .iter()
            .map(|p| position_parse(p.as_str()?))
            .collect::<Result<Vec<_>, _>>()?;
        let detectors = v
            .field("detectors")?
            .as_arr()?
            .iter()
            .map(|d| DetectorPolicy::parse(d.as_str()?))
            .collect::<Result<Vec<_>, _>>()?;
        let lsq = v
            .field("lsq")?
            .as_arr()?
            .iter()
            .map(LsqSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GridBlock { classes, positions, detectors, lsq })
    }
}

/// Spec string for a fault class.
pub fn class_str(c: FaultClass) -> &'static str {
    match c {
        FaultClass::Huge => "huge",
        FaultClass::Slight => "slight",
        FaultClass::Tiny => "tiny",
    }
}

/// Parses a fault-class spec string.
pub fn class_parse(s: &str) -> Result<FaultClass, JsonError> {
    match s {
        "huge" => Ok(FaultClass::Huge),
        "slight" => Ok(FaultClass::Slight),
        "tiny" => Ok(FaultClass::Tiny),
        other => Err(JsonError { offset: 0, msg: format!("unknown fault class '{other}'") }),
    }
}

/// Spec string for an MGS position.
pub fn position_str(p: MgsPosition) -> &'static str {
    match p {
        MgsPosition::First => "first",
        MgsPosition::Last => "last",
    }
}

/// Parses an MGS-position spec string.
pub fn position_parse(s: &str) -> Result<MgsPosition, JsonError> {
    match s {
        "first" => Ok(MgsPosition::First),
        "last" => Ok(MgsPosition::Last),
        other => Err(JsonError { offset: 0, msg: format!("unknown position '{other}'") }),
    }
}

/// One fully-resolved series of the grid: everything but the aggregate
/// iteration coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Index into [`CampaignSpec::problems`].
    pub problem: usize,
    /// Fault class of this series.
    pub class: FaultClass,
    /// MGS position of this series.
    pub position: MgsPosition,
    /// Detector policy of this series.
    pub detector: DetectorPolicy,
    /// Least-squares policy of this series.
    pub lsq: LsqSpec,
}

impl Scenario {
    /// Serializes (embedded in every experiment record).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("problem", Json::Num(self.problem as f64)),
            ("class", Json::str(class_str(self.class))),
            ("position", Json::str(position_str(self.position))),
            ("detector", Json::str(self.detector.as_str())),
            ("lsq", self.lsq.to_json()),
        ])
    }

    /// Parses the embedded form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Scenario {
            problem: v.field("problem")?.as_usize()?,
            class: class_parse(v.field("class")?.as_str()?)?,
            position: position_parse(v.field("position")?.as_str()?)?,
            detector: DetectorPolicy::parse(v.field("detector")?.as_str()?)?,
            lsq: LsqSpec::from_json(v.field("lsq")?)?,
        })
    }

    /// One-line display label (problem name supplied by the caller).
    pub fn label(&self) -> String {
        format!(
            "p{} {} / {} / detector={} / lsq={}",
            self.problem,
            self.class.label(),
            self.position.label(),
            self.detector.as_str(),
            self.lsq.label()
        )
    }
}

/// The full declarative campaign description.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in reports and artifact headers).
    pub name: String,
    /// Problems to run every block on.
    pub problems: Vec<ProblemSpec>,
    /// Inner iterations per outer iteration (paper: 25).
    pub inner_iters: usize,
    /// Outer relative-residual tolerance.
    pub outer_tol: f64,
    /// Outer iteration cap.
    pub outer_max: usize,
    /// Sweep stride over aggregate inner iterations (1 = full figures).
    pub stride: usize,
    /// Base seed; every work unit derives a stable per-unit seed from it.
    pub seed: u64,
    /// Power-iteration count for the `‖A‖₂` estimate recorded per
    /// problem; 0 skips the estimate (keeps tiny CI artifacts free of
    /// libm-dependent values).
    pub norm2_iters: usize,
    /// Sparse storage engine for the operators (`csr`, `sell` or
    /// `auto`). SELL SpMV is bitwise identical to CSR, so the choice is
    /// a pure performance knob — artifact bytes cannot depend on it. The
    /// field is omitted from the JSON when it is the default (`auto`),
    /// keeping pre-existing specs and artifact headers byte-stable.
    pub format: sdc_sparse::SparseFormat,
    /// Right preconditioner for every solve of the campaign (`none`,
    /// `jacobi`, `ilu0` or `chebyshev`). Like `format`, the field is
    /// omitted from the JSON when it is the default (`none`), so
    /// pre-existing specs and artifact headers keep their exact bytes —
    /// and unlike `format`, a non-default value *does* change results,
    /// which is why it lives in the spec and therefore in the artifact
    /// header.
    pub precond: PrecondKind,
    /// Arithmetic contract for the SpMV kernels (`strict` or
    /// `fast_math`). `strict` — the default, omitted from the JSON so
    /// legacy specs and artifact headers keep their exact bytes — runs
    /// the bitwise-reproducible kernels. `fast_math` opts into the
    /// intra-row-fused CSR kernel: results differ from `strict` (within
    /// a forward-error bound) but are still deterministic run-to-run and
    /// host-independent, so fast-math campaigns get their *own* goldens.
    /// The tier is CSR-only; `fast_math` implies the CSR engine.
    pub kernel_tier: sdc_sparse::KernelTier,
    /// The scenario grid, as a union of cross-product blocks.
    pub blocks: Vec<GridBlock>,
}

impl CampaignSpec {
    /// A paper-shaped campaign (undetected full grid + detector class-1)
    /// over the given problems.
    pub fn paper_shape(name: impl Into<String>, problems: Vec<ProblemSpec>) -> Self {
        CampaignSpec {
            name: name.into(),
            problems,
            inner_iters: 25,
            outer_tol: 1e-7,
            outer_max: 150,
            stride: 1,
            seed: 0x5dc_2014,
            norm2_iters: 0,
            format: sdc_sparse::SparseFormat::Auto,
            precond: PrecondKind::None,
            kernel_tier: sdc_sparse::KernelTier::Strict,
            blocks: vec![GridBlock::undetected_full(), GridBlock::detector_class1()],
        }
    }

    /// The solver configuration realizing one scenario of this spec.
    pub fn campaign_config(&self, scenario: &Scenario) -> CampaignConfig {
        CampaignConfig {
            inner_iters: self.inner_iters,
            outer_tol: self.outer_tol,
            outer_max: self.outer_max,
            detector_response: scenario.detector.response(),
            stride: self.stride,
            inner_lsq: scenario.lsq.policy(),
            format: self.format,
            precond: self.precond,
            tier: self.kernel_tier,
        }
    }

    /// The baseline (fault-free, detector-off) configuration for one
    /// least-squares policy.
    pub fn baseline_config(&self, lsq: LsqSpec) -> CampaignConfig {
        CampaignConfig {
            inner_iters: self.inner_iters,
            outer_tol: self.outer_tol,
            outer_max: self.outer_max,
            detector_response: None,
            stride: self.stride,
            inner_lsq: lsq.policy(),
            format: self.format,
            precond: self.precond,
            tier: self.kernel_tier,
        }
    }

    /// The strided aggregate-iteration domain of one scenario whose
    /// baseline took `ff_outer` outer iterations. The executor's unit
    /// enumeration and the report's completeness accounting both use
    /// this — they must never disagree on what "complete" means.
    pub fn unit_domain(&self, ff_outer: usize) -> impl Iterator<Item = usize> {
        (1..=self.inner_iters * ff_outer).step_by(self.stride.max(1))
    }

    /// Every scenario of the grid, in canonical order: problems in spec
    /// order, then blocks in spec order, each block's cross product in
    /// (lsq, detector, position, class) order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for problem in 0..self.problems.len() {
            for block in &self.blocks {
                for &lsq in &block.lsq {
                    for &detector in &block.detectors {
                        for &position in &block.positions {
                            for &class in &block.classes {
                                out.push(Scenario { problem, class, position, detector, lsq });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Distinct (problem, lsq) baseline keys, in first-appearance order.
    pub fn baseline_keys(&self) -> Vec<(usize, LsqSpec)> {
        let mut out: Vec<(usize, LsqSpec)> = Vec::new();
        for s in self.scenarios() {
            let key = (s.problem, s.lsq);
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }

    /// Serializes the spec. The `format` field is written only when it
    /// differs from the default `auto`, so adding the axis changed no
    /// existing spec or artifact-header bytes.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", Json::Num(FORMAT_VERSION as f64)),
            ("name", Json::str(&self.name)),
            ("problems", Json::Arr(self.problems.iter().map(|p| p.to_json()).collect())),
            ("inner_iters", Json::Num(self.inner_iters as f64)),
            ("outer_tol", Json::Num(self.outer_tol)),
            ("outer_max", Json::Num(self.outer_max as f64)),
            ("stride", Json::Num(self.stride as f64)),
            ("seed", Json::u64(self.seed)),
            ("norm2_iters", Json::Num(self.norm2_iters as f64)),
            ("blocks", Json::Arr(self.blocks.iter().map(|b| b.to_json()).collect())),
        ];
        if self.format != sdc_sparse::SparseFormat::Auto {
            fields.push(("format", Json::str(self.format.as_str())));
        }
        if self.precond != PrecondKind::None {
            fields.push(("precond", Json::str(self.precond.as_str())));
        }
        if self.kernel_tier != sdc_sparse::KernelTier::Strict {
            fields.push(("kernel_tier", Json::str(self.kernel_tier.as_str())));
        }
        Json::obj(fields)
    }

    /// Parses and validates a spec.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.field("version")?.as_u64()?;
        if version != FORMAT_VERSION {
            return Err(JsonError {
                offset: 0,
                msg: format!("unsupported spec version {version} (expected {FORMAT_VERSION})"),
            });
        }
        let spec = CampaignSpec {
            name: v.field("name")?.as_str()?.to_string(),
            problems: v
                .field("problems")?
                .as_arr()?
                .iter()
                .map(ProblemSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            inner_iters: v.field("inner_iters")?.as_usize()?,
            outer_tol: v.field("outer_tol")?.as_f64()?,
            outer_max: v.field("outer_max")?.as_usize()?,
            stride: v.field("stride")?.as_usize()?,
            seed: v.field("seed")?.as_u64()?,
            norm2_iters: match v.get("norm2_iters") {
                Some(n) => n.as_usize()?,
                None => 0,
            },
            format: match v.get("format") {
                Some(f) => sdc_sparse::SparseFormat::parse(f.as_str()?)
                    .map_err(|msg| JsonError { offset: 0, msg })?,
                None => sdc_sparse::SparseFormat::Auto,
            },
            precond: match v.get("precond") {
                Some(p) => {
                    PrecondKind::parse(p.as_str()?).map_err(|msg| JsonError { offset: 0, msg })?
                }
                None => PrecondKind::None,
            },
            kernel_tier: match v.get("kernel_tier") {
                Some(t) => sdc_sparse::KernelTier::parse(t.as_str()?)
                    .map_err(|msg| JsonError { offset: 0, msg })?,
                None => sdc_sparse::KernelTier::Strict,
            },
            blocks: v
                .field("blocks")?
                .as_arr()?
                .iter()
                .map(GridBlock::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        spec.validate().map_err(|msg| JsonError { offset: 0, msg })?;
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Structural validation beyond JSON well-formedness.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec name must be non-empty".into());
        }
        if self.problems.is_empty() {
            return Err("spec needs at least one problem".into());
        }
        if self.blocks.is_empty() {
            return Err("spec needs at least one grid block".into());
        }
        if self.inner_iters == 0 {
            return Err("inner_iters must be >= 1".into());
        }
        if self.stride == 0 {
            return Err("stride must be >= 1".into());
        }
        if self.outer_max == 0 {
            return Err("outer_max must be >= 1".into());
        }
        // Negated so that a NaN tolerance also lands in the error branch.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.outer_tol > 0.0) {
            return Err("outer_tol must be positive".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.classes.is_empty()
                || b.positions.is_empty()
                || b.detectors.is_empty()
                || b.lsq.is_empty()
            {
                return Err(format!("block {i} has an empty axis"));
            }
        }
        // A scenario appearing twice would make the artifact ambiguous.
        let scenarios = self.scenarios();
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            if !seen.insert(*s) {
                return Err(format!("duplicate scenario in grid: {}", s.label()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            name: "test".into(),
            problems: vec![
                ProblemSpec::Poisson { m: 8 },
                ProblemSpec::Dcop { nodes: 300, seed: 7 },
            ],
            inner_iters: 8,
            outer_tol: 1e-7,
            outer_max: 60,
            stride: 5,
            seed: 42,
            norm2_iters: 0,
            format: sdc_sparse::SparseFormat::Auto,
            precond: PrecondKind::None,
            kernel_tier: sdc_sparse::KernelTier::Strict,
            blocks: vec![GridBlock::undetected_full(), GridBlock::detector_class1()],
        }
    }

    #[test]
    fn spec_json_round_trip() {
        let spec = sample_spec();
        let line = spec.to_json().to_line();
        let back = CampaignSpec::parse(&line).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json().to_line(), line, "serialization is canonical");
    }

    #[test]
    fn format_field_round_trips_and_defaults_to_auto() {
        use sdc_sparse::SparseFormat;
        // Default (auto) is omitted from the serialization: legacy specs
        // and artifact headers keep their exact bytes.
        let spec = sample_spec();
        assert!(!spec.to_json().to_line().contains("format"));
        assert_eq!(
            CampaignSpec::parse(&spec.to_json().to_line()).unwrap().format,
            SparseFormat::Auto
        );
        // Non-default values round-trip.
        for fmt in [SparseFormat::Csr, SparseFormat::Sell] {
            let spec = CampaignSpec { format: fmt, ..sample_spec() };
            let line = spec.to_json().to_line();
            assert!(line.contains(&format!("\"format\":\"{fmt}\"")), "{line}");
            let back = CampaignSpec::parse(&line).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.campaign_config(&back.scenarios()[0]).format, fmt);
        }
        // Unknown strings are a parse error.
        let bad = sample_spec().to_json().to_line().replacen("{", "{\"format\":\"coo\",", 1);
        assert!(CampaignSpec::parse(&bad).is_err());
    }

    #[test]
    fn precond_field_round_trips_and_defaults_to_none() {
        // Default (none) is omitted from the serialization: legacy specs
        // and artifact headers keep their exact bytes.
        let spec = sample_spec();
        assert!(!spec.to_json().to_line().contains("precond"));
        assert_eq!(
            CampaignSpec::parse(&spec.to_json().to_line()).unwrap().precond,
            PrecondKind::None
        );
        // Non-default values round-trip and reach the solver config.
        for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
            let spec = CampaignSpec { precond: kind, ..sample_spec() };
            let line = spec.to_json().to_line();
            assert!(line.contains(&format!("\"precond\":\"{kind}\"")), "{line}");
            let back = CampaignSpec::parse(&line).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.campaign_config(&back.scenarios()[0]).precond, kind);
            assert_eq!(back.baseline_config(LsqSpec::Standard).precond, kind);
        }
        // Unknown strings are a structured parse error, not a default.
        let bad = sample_spec().to_json().to_line().replacen("{", "{\"precond\":\"amg\",", 1);
        let err = CampaignSpec::parse(&bad).unwrap_err();
        assert!(err.msg.contains("unknown preconditioner 'amg'"), "{}", err.msg);
    }

    #[test]
    fn kernel_tier_field_round_trips_and_defaults_to_strict() {
        use sdc_sparse::KernelTier;
        // Default (strict) is omitted from the serialization: legacy
        // specs and artifact headers keep their exact bytes.
        let spec = sample_spec();
        assert!(!spec.to_json().to_line().contains("kernel_tier"));
        assert_eq!(
            CampaignSpec::parse(&spec.to_json().to_line()).unwrap().kernel_tier,
            KernelTier::Strict
        );
        // The non-default tier round-trips and reaches both configs.
        let spec = CampaignSpec { kernel_tier: KernelTier::FastMath, ..sample_spec() };
        let line = spec.to_json().to_line();
        assert!(line.contains("\"kernel_tier\":\"fast_math\""), "{line}");
        let back = CampaignSpec::parse(&line).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.campaign_config(&back.scenarios()[0]).tier, KernelTier::FastMath);
        assert_eq!(back.baseline_config(LsqSpec::Standard).tier, KernelTier::FastMath);
        // Unknown strings are a structured parse error, not a default.
        let bad = sample_spec().to_json().to_line().replacen("{", "{\"kernel_tier\":\"loose\",", 1);
        let err = CampaignSpec::parse(&bad).unwrap_err();
        assert!(err.msg.contains("unknown kernel tier 'loose'"), "{}", err.msg);
    }

    #[test]
    fn scenario_enumeration_is_grid_times_problems() {
        let spec = sample_spec();
        // Block 1: 3 classes × 2 positions; block 2: 1 × 2. Two problems.
        assert_eq!(spec.scenarios().len(), 2 * (6 + 2));
        // Canonical order is deterministic.
        assert_eq!(spec.scenarios(), spec.scenarios());
        // Problem-major.
        assert!(spec.scenarios()[..8].iter().all(|s| s.problem == 0));
    }

    #[test]
    fn baseline_keys_deduplicate() {
        let spec = sample_spec();
        // Both blocks use the standard lsq policy: one baseline per problem.
        assert_eq!(spec.baseline_keys().len(), 2);
    }

    #[test]
    fn scenario_round_trip() {
        for s in sample_spec().scenarios() {
            let back = Scenario::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = sample_spec();
        s.stride = 0;
        assert!(s.validate().is_err());

        let mut s = sample_spec();
        s.problems.clear();
        assert!(s.validate().is_err());

        let mut s = sample_spec();
        s.blocks[0].classes.clear();
        assert!(s.validate().is_err());

        // Duplicated block => duplicate scenarios.
        let mut s = sample_spec();
        let b = s.blocks[0].clone();
        s.blocks.push(b);
        assert!(s.validate().is_err());
    }

    #[test]
    fn lsq_spec_forms_parse() {
        let std_form = Json::parse("\"standard\"").unwrap();
        assert_eq!(LsqSpec::from_json(&std_form).unwrap(), LsqSpec::Standard);
        let rr = Json::parse("{\"kind\":\"rank_revealing\",\"tol\":1e-12}").unwrap();
        assert_eq!(LsqSpec::from_json(&rr).unwrap(), LsqSpec::RankRevealing { tol: 1e-12 });
        assert!(LsqSpec::from_json(&Json::parse("\"bogus\"").unwrap()).is_err());
    }

    #[test]
    fn paper_shape_matches_figure_series_count() {
        let spec = CampaignSpec::paper_shape("fig3", vec![ProblemSpec::Poisson { m: 100 }]);
        assert_eq!(spec.scenarios().len(), 8, "6 undetected + 2 detector series");
        spec.validate().unwrap();
    }
}

//! The paper's campaign vocabulary: fault classes and MGS positions.
//!
//! §VII-B-1 defines three classes of injected SDC, all *relative to the
//! correct value* of the Hessenberg entry, and two injection positions
//! within the Modified Gram-Schmidt loop. A campaign sweeps the single
//! fault over every aggregate inner iteration — this module builds those
//! plans deterministically.

use crate::injector::SingleFaultInjector;
use crate::model::FaultModel;
use crate::trigger::{LoopPosition, SitePredicate, Trigger};

/// The paper's three SDC magnitudes (§VII-B-1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Class 1: very large, `h̃ = h × 10^150`. Detectable by the bound.
    Huge,
    /// Class 2: slightly smaller, `h̃ = h × 10^-0.5`. Undetectable.
    Slight,
    /// Class 3: nearly zero, `h̃ = h × 10^-300`. Undetectable.
    Tiny,
}

impl FaultClass {
    /// The multiplicative factor of this class.
    pub fn factor(&self) -> f64 {
        match self {
            FaultClass::Huge => 1e150,
            FaultClass::Slight => 10f64.powf(-0.5),
            FaultClass::Tiny => 1e-300,
        }
    }

    /// The corresponding fault model.
    pub fn model(&self) -> FaultModel {
        FaultModel::ScaleRelative(self.factor())
    }

    /// All three classes, in the paper's order.
    pub fn all() -> [FaultClass; 3] {
        [FaultClass::Huge, FaultClass::Slight, FaultClass::Tiny]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Huge => "h x 10^+150",
            FaultClass::Slight => "h x 10^-0.5",
            FaultClass::Tiny => "h x 10^-300",
        }
    }
}

/// Where in the Modified Gram-Schmidt loop the fault lands (§VII-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MgsPosition {
    /// First loop iteration: corrupts `h_{1,j}`, tainting every
    /// subsequent orthogonalization step of the column — the paper's
    /// worst case by construction.
    First,
    /// Last loop iteration: corrupts `h_{j,j}`.
    Last,
}

impl MgsPosition {
    /// Both positions, in the paper's order (Fig. 3a/3b).
    pub fn both() -> [MgsPosition; 2] {
        [MgsPosition::First, MgsPosition::Last]
    }

    /// The trigger loop-position selector.
    pub fn loop_position(&self) -> LoopPosition {
        match self {
            MgsPosition::First => LoopPosition::First,
            MgsPosition::Last => LoopPosition::Last,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MgsPosition::First => "first MGS iteration",
            MgsPosition::Last => "last MGS iteration",
        }
    }
}

/// Which solver surface a single-fault experiment corrupts.
///
/// The paper's protocol strikes the Modified Gram-Schmidt loop
/// ([`FaultTarget::Mgs`]); the sequel's opaque-preconditioner model
/// strikes the preconditioner instead ([`FaultTarget::Precond`]) —
/// transiently in its output for stateless applications
/// (Jacobi/Chebyshev), persistently in its stored factors for ILU(0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The orthogonalization loop (the paper's Hessenberg-entry faults).
    #[default]
    Mgs,
    /// The preconditioner application (the sequel's opaque operator).
    Precond,
}

impl FaultTarget {
    /// The wire/CLI string for this target.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultTarget::Mgs => "mgs",
            FaultTarget::Precond => "precond",
        }
    }

    /// Parses a wire/CLI string.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "mgs" => Ok(FaultTarget::Mgs),
            "precond" => Ok(FaultTarget::Precond),
            other => Err(format!("unknown fault target '{other}' (expected mgs|precond)")),
        }
    }
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One experiment of the sweep: a single SDC event at a specific
/// aggregate inner iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CampaignPoint {
    /// 1-based aggregate inner iteration (the figures' x-axis).
    pub aggregate_iteration: usize,
    /// Inner iterations per outer iteration (25 in the paper).
    pub inner_per_outer: usize,
    /// Fault magnitude class.
    pub class: FaultClass,
    /// MGS loop position.
    pub position: MgsPosition,
}

impl CampaignPoint {
    /// The inner-solve ordinal this aggregate iteration falls in (1-based).
    pub fn inner_solve(&self) -> usize {
        (self.aggregate_iteration - 1) / self.inner_per_outer + 1
    }

    /// The iteration within that inner solve (1-based).
    pub fn inner_iteration(&self) -> usize {
        (self.aggregate_iteration - 1) % self.inner_per_outer + 1
    }

    /// Builds the single-shot injector realizing this point.
    pub fn injector(&self) -> SingleFaultInjector {
        let predicate = SitePredicate::mgs_site(
            self.inner_solve(),
            self.inner_iteration(),
            self.position.loop_position(),
        );
        SingleFaultInjector::new(self.class.model(), Trigger::once(predicate))
    }

    /// Builds the injector realizing this point against the
    /// *preconditioner application* of an order-`n_rows` operator
    /// (transient model, Jacobi/Chebyshev): the fault lands on the
    /// first or last output element of the `inner_iteration()`-th apply
    /// of the `inner_solve()`-th inner solve.
    pub fn injector_precond_apply(&self, n_rows: usize) -> SingleFaultInjector {
        let position = match self.position {
            MgsPosition::First => LoopPosition::First,
            // LoopPosition::Last means "loop index == inner iteration"
            // (MGS column semantics) — for an output vector the last
            // element is an explicit index.
            MgsPosition::Last => LoopPosition::Index(n_rows.max(1)),
        };
        let predicate =
            SitePredicate::precond_apply(self.inner_solve(), self.inner_iteration(), position);
        SingleFaultInjector::new(self.class.model(), Trigger::once(predicate))
    }

    /// Builds the injector realizing this point against *stored
    /// preconditioner factors* (persistent model, ILU(0)): the fault
    /// lands on factor slot `aggregate_iteration` (1-based, wrapped into
    /// `1..=nnz` by the caller if needed) and persists for the solve.
    pub fn injector_precond_factor(&self, factor_nnz: usize) -> SingleFaultInjector {
        let slot = if factor_nnz == 0 {
            self.aggregate_iteration
        } else {
            (self.aggregate_iteration - 1) % factor_nnz + 1
        };
        let predicate = SitePredicate::precond_factor(slot);
        SingleFaultInjector::new(self.class.model(), Trigger::once(predicate))
    }
}

/// Builds the full sweep for one (class, position) series: one point per
/// aggregate inner iteration `1..=inner_per_outer·failure_free_outers`.
pub fn sweep_points(
    inner_per_outer: usize,
    failure_free_outers: usize,
    class: FaultClass,
    position: MgsPosition,
) -> Vec<CampaignPoint> {
    (1..=inner_per_outer * failure_free_outers)
        .map(|aggregate_iteration| CampaignPoint {
            aggregate_iteration,
            inner_per_outer,
            class,
            position,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::FaultInjector;
    use crate::site::{Kernel, Site};

    #[test]
    fn class_factors_match_paper() {
        assert_eq!(FaultClass::Huge.factor(), 1e150);
        assert_eq!(FaultClass::Tiny.factor(), 1e-300);
        assert!((FaultClass::Slight.factor() - 0.31622776601683794).abs() < 1e-16);
    }

    #[test]
    fn point_decomposition() {
        let p = CampaignPoint {
            aggregate_iteration: 26,
            inner_per_outer: 25,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        assert_eq!(p.inner_solve(), 2);
        assert_eq!(p.inner_iteration(), 1);
        let p = CampaignPoint { aggregate_iteration: 225, ..p };
        assert_eq!(p.inner_solve(), 9);
        assert_eq!(p.inner_iteration(), 25);
    }

    #[test]
    fn sweep_covers_paper_domain() {
        // Poisson experiment: 25 inner × 9 outer = 225 points.
        let pts = sweep_points(25, 9, FaultClass::Slight, MgsPosition::Last);
        assert_eq!(pts.len(), 225);
        assert_eq!(pts[0].aggregate_iteration, 1);
        assert_eq!(pts[224].aggregate_iteration, 225);
    }

    #[test]
    fn injector_from_point_fires_at_intended_site_only() {
        let p = CampaignPoint {
            aggregate_iteration: 27,
            inner_per_outer: 25,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = p.injector();
        // solve 2, iteration 2, first position.
        let target = Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: 2,
            inner_solve: 2,
            inner_iteration: 2,
            loop_index: 1,
        };
        let miss = Site { loop_index: 2, ..target };
        assert_eq!(inj.corrupt(miss, 1.0), 1.0);
        assert_eq!(inj.corrupt(target, 1.0), 1e150);
        assert_eq!(inj.corrupt(target, 1.0), 1.0, "single shot");
    }

    #[test]
    fn fault_target_strings_round_trip() {
        assert_eq!(FaultTarget::parse("mgs").unwrap(), FaultTarget::Mgs);
        assert_eq!(FaultTarget::parse("precond").unwrap(), FaultTarget::Precond);
        assert_eq!(FaultTarget::default(), FaultTarget::Mgs);
        assert_eq!(format!("{}", FaultTarget::Precond), "precond");
        let err = FaultTarget::parse("spmv").unwrap_err();
        assert!(err.contains("unknown fault target 'spmv'"), "{err}");
    }

    #[test]
    fn precond_apply_injector_fires_on_the_selected_element() {
        let p = CampaignPoint {
            aggregate_iteration: 27,
            inner_per_outer: 25,
            class: FaultClass::Huge,
            position: MgsPosition::Last,
        };
        let inj = p.injector_precond_apply(100);
        let target = Site {
            kernel: Kernel::Precond,
            outer_iteration: 2,
            inner_solve: 2,
            inner_iteration: 2,
            loop_index: 100,
        };
        assert_eq!(inj.corrupt(Site { loop_index: 1, ..target }, 1.0), 1.0);
        assert_eq!(inj.corrupt(target, 1.0), 1e150);
        assert_eq!(inj.corrupt(target, 1.0), 1.0, "single shot");
    }

    #[test]
    fn precond_factor_injector_wraps_slot_into_nnz() {
        let p = CampaignPoint {
            aggregate_iteration: 12,
            inner_per_outer: 25,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = p.injector_precond_factor(5);
        // slot = (12-1) % 5 + 1 = 2, regardless of iteration coords.
        let target = Site {
            kernel: Kernel::Precond,
            outer_iteration: 0,
            inner_solve: 0,
            inner_iteration: 0,
            loop_index: 2,
        };
        assert_eq!(inj.corrupt(Site { loop_index: 1, ..target }, 1.0), 1.0);
        assert_eq!(inj.corrupt(target, 1.0), 1e150);
    }

    #[test]
    fn labels_are_paper_like() {
        assert!(FaultClass::Huge.label().contains("+150"));
        assert!(MgsPosition::First.label().contains("first"));
    }
}

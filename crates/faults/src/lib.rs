//! Silent-data-corruption modelling and injection for the SDC-GMRES
//! reproduction.
//!
//! The paper's experimental protocol (§VII-B) injects **exactly one**
//! numerical perturbation per solve, at a precisely chosen site inside the
//! inner solver's orthogonalization loop, with a value defined *relative*
//! to the correct result (`×10^150`, `×10^-0.5`, `×10^-300`). This crate
//! provides the machinery:
//!
//! * [`taxonomy`] — the fault/failure vocabulary of the paper's Fig. 1 as
//!   a type hierarchy.
//! * [`model`] — what a fault does to a value: the paper's relative
//!   scalings, absolute overwrites, offsets, bit flips, and the IEEE-754
//!   specials.
//! * [`site`] — where a fault strikes: which kernel, which outer/inner
//!   iteration, which position in the Gram-Schmidt loop.
//! * [`trigger`] — when a fault strikes: site predicates plus
//!   once/always/nth firing modes.
//! * [`injector`] — the [`injector::FaultInjector`] trait the solvers
//!   call at every instrumented operation, with a thread-safe
//!   single-event implementation that logs exactly what it corrupted.
//! * [`sandbox`] — the sandbox reliability model of §IV: run untrusted
//!   ("guest") code so that it returns *something* in *finite time*,
//!   converting panics (hard faults) into reportable soft errors and
//!   enforcing a wall-clock budget.
//! * [`bitflip`] — bit-level anatomy of `f64`, connecting the bit-flip
//!   fault model of prior work to the paper's generalized numerical-error
//!   model (§III-A-2).
//! * [`campaign`] — the paper's fault classes and Gram-Schmidt positions
//!   as enums, plus deterministic campaign-plan builders.
//! * [`storage`] — persistent faults in the operator's stored data,
//!   mapped onto both sparse engines (CSR and SELL-C-σ) so bitflip
//!   campaigns can target value/column storage in either layout.

pub mod bitflip;
pub mod campaign;
pub mod injector;
pub mod model;
pub mod sandbox;
pub mod site;
pub mod storage;
pub mod taxonomy;
pub mod trigger;

pub use campaign::{FaultClass, FaultTarget, MgsPosition};
pub use injector::{FaultInjector, InjectionRecord, NoFaults, SingleFaultInjector};
pub use model::FaultModel;
pub use sandbox::{run_sandboxed, SandboxConfig, SandboxError};
pub use site::{Kernel, Site};
pub use trigger::{FireMode, SitePredicate, Trigger};

//! Faults in the operator's *stored data* — matrix storage corruption
//! for both sparse engines.
//!
//! The paper's protocol strikes values in flight (orthogonalization
//! coefficients, SpMV outputs). Prior work (Shantharam et al., ref. 12)
//! instead corrupts the matrix itself: a bit flip in `A`'s value array
//! persists across every subsequent apply. This module maps that fault
//! class onto both storage engines so a campaign addressing "entry `k`
//! of row `r`" hits the same logical value whether the operator is CSR
//! or SELL-C-σ:
//!
//! * CSR stores it at flat slot `row_ptr[r] + k`;
//! * SELL stores it at a chunk-interleaved slot
//!   ([`sdc_sparse::SellMatrix::entry_slot`]), and additionally carries
//!   *padding* slots the kernel never reads — a fault landing there is
//!   architecturally masked, a real phenomenon this module lets
//!   campaigns measure.
//!
//! Injection goes through the ordinary [`FaultInjector`] protocol
//! ([`Kernel::MatrixValue`] sites, slot addressed via `loop_index`), so
//! triggers, firing modes and injection records all work unchanged.

use crate::injector::FaultInjector;
use crate::site::{Kernel, Site};
use sdc_sparse::{FormatMatrix, SellMatrix};

/// The site of value-storage slot `slot` (see [`Kernel::MatrixValue`]).
pub fn value_site(slot: usize) -> Site {
    Site {
        kernel: Kernel::MatrixValue,
        outer_iteration: 0,
        inner_solve: 0,
        inner_iteration: 0,
        loop_index: slot + 1,
    }
}

/// Flat value-storage slot of logical entry `k` of row `r`, in whichever
/// format `m` is committed to.
pub fn value_slot(m: &FormatMatrix, r: usize, k: usize) -> usize {
    m.entry_slot(r, k)
}

/// Passes every stored value of `m` (including SELL padding slots)
/// through `injector` at its [`value_site`], committing whatever the
/// trigger fires. Returns the number of slots whose bits changed.
///
/// With a `Trigger::once` predicate matching one slot this realizes the
/// single-persistent-storage-fault protocol; the injector's records say
/// exactly which slot was hit and what it became.
pub fn inject_values(m: &mut FormatMatrix, injector: &dyn FaultInjector) -> usize {
    let mut changed = 0;
    for (slot, v) in m.values_mut().iter_mut().enumerate() {
        let corrupted = injector.corrupt(value_site(slot), *v);
        if corrupted.to_bits() != v.to_bits() {
            *v = corrupted;
            changed += 1;
        }
    }
    changed
}

/// Flips bit `bit` (0–63 on this platform) of the column *index* at SELL
/// storage slot `slot`, modelling pointer-structure corruption. Returns
/// `Ok((old, new))` when the flipped index stays inside `0..ncols` (the
/// kernel will silently gather the wrong `x` element), or
/// `Err((old, new))` when it does not — committing such a flip would
/// make SpMV panic (a memory-safe crash: the taxonomy's hard-fault
/// outcome), so it is reported rather than written.
pub fn flip_sell_col_bit(
    m: &mut SellMatrix,
    slot: usize,
    bit: u32,
) -> Result<(usize, usize), (usize, usize)> {
    assert!((bit as usize) < usize::BITS as usize, "bit index out of range");
    let old = m.col_idx()[slot];
    let new = old ^ (1usize << bit);
    if new < m.ncols() {
        m.col_idx_mut()[slot] = new;
        Ok((old, new))
    } else {
        Err((old, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;
    use crate::trigger::{LoopPosition, SitePredicate, Trigger};
    use crate::{NoFaults, SingleFaultInjector};
    use sdc_sparse::{CooMatrix, SparseFormat};

    fn sample() -> sdc_sparse::CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 1, -2.0),
            (2, 3, 4.0),
            (3, 3, 5.0),
        ] {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    fn slot_predicate(slot: usize) -> SitePredicate {
        SitePredicate {
            kernel: Some(Kernel::MatrixValue),
            outer_iteration: None,
            inner_solve: None,
            inner_iteration: None,
            loop_position: LoopPosition::Index(slot + 1),
        }
    }

    #[test]
    fn same_logical_entry_both_formats() {
        let a = sample();
        for fmt in [SparseFormat::Csr, SparseFormat::Sell] {
            let mut m = FormatMatrix::convert(&a, fmt);
            // Target entry 2 of row 2 (value 4.0) by logical coordinates.
            let slot = value_slot(&m, 2, 2);
            let inj = SingleFaultInjector::new(
                FaultModel::SetValue(99.0),
                Trigger::once(slot_predicate(slot)),
            );
            assert_eq!(inject_values(&mut m, &inj), 1, "{fmt}");
            assert_eq!(inj.fired_count(), 1);
            assert_eq!(m.values()[slot], 99.0);
            // The corruption lands on the same logical entry.
            assert_eq!(m.to_csr().get(2, 3), 99.0, "{fmt}");
            let rec = inj.records()[0];
            assert_eq!(rec.site.kernel, Kernel::MatrixValue);
            assert_eq!(rec.original, 4.0);
        }
    }

    #[test]
    fn no_faults_changes_nothing() {
        let a = sample();
        let mut m = FormatMatrix::convert(&a, SparseFormat::Sell);
        assert_eq!(inject_values(&mut m, &NoFaults), 0);
        assert_eq!(m.to_csr(), a);
    }

    #[test]
    fn padding_slot_fault_is_masked() {
        let a = sample();
        let mut m = FormatMatrix::convert(&a, SparseFormat::Sell);
        let FormatMatrix::Sell(ref s) = m else { panic!("expected SELL") };
        let padding: Vec<usize> = (0..s.storage_len()).filter(|&i| s.is_padding_slot(i)).collect();
        assert!(!padding.is_empty(), "ragged sample must pad");
        let slot = padding[0];
        let inj = SingleFaultInjector::new(
            FaultModel::SetValue(1e300),
            Trigger::once(slot_predicate(slot)),
        );
        // The fault commits into storage...
        assert_eq!(inject_values(&mut m, &inj), 1);
        // ...but the kernel never reads it: SpMV and round-trip unchanged.
        let x = [1.0, -1.0, 0.5, 2.0];
        let mut y = [0.0; 4];
        m.par_spmv(&x, &mut y);
        let mut y_ref = [0.0; 4];
        a.par_spmv(&x, &mut y_ref);
        assert_eq!(y, y_ref);
        assert_eq!(m.to_csr(), a);
    }

    #[test]
    fn sell_col_bitflips_split_into_wild_reads_and_crashes() {
        let a = sample();
        let mut s = SellMatrix::from_csr(&a);
        // Slot of (row 2, entry 0): column index 0. Flipping bit 0 gives
        // column 1 — in range, a silent wrong gather.
        let slot = s.entry_slot(2, 0);
        assert_eq!(flip_sell_col_bit(&mut s, slot, 0), Ok((0, 1)));
        let x = [1.0, 10.0, 100.0, 1000.0];
        let mut y = [0.0; 4];
        s.spmv(&x, &mut y);
        // Row 2 was 1·x0 − 2·x1 + 4·x3; now reads x1 instead of x0.
        assert_eq!(y[2], 10.0 - 20.0 + 4000.0);
        // A high bit pushes the index out of range: reported, not committed.
        let before = s.col_idx()[slot];
        assert!(flip_sell_col_bit(&mut s, slot, 40).is_err());
        assert_eq!(s.col_idx()[slot], before);
    }

    #[test]
    fn storage_fault_then_solve_biases_every_apply() {
        // The persistent-storage fault model end to end: corrupt one CSR
        // value, the residual of the *original* system stays wrong.
        let a = sample();
        let mut m = FormatMatrix::convert(&a, SparseFormat::Csr);
        let slot = value_slot(&m, 1, 0);
        let inj = SingleFaultInjector::new(
            FaultModel::ScaleRelative(2.0),
            Trigger::once(slot_predicate(slot)),
        );
        inject_values(&mut m, &inj);
        let x = [1.0; 4];
        let mut y_fault = [0.0; 4];
        m.spmv(&x, &mut y_fault);
        let mut y_ref = [0.0; 4];
        a.spmv(&x, &mut y_ref);
        assert_ne!(y_fault[1], y_ref[1]);
        assert_eq!(y_fault[0], y_ref[0], "other rows untouched");
    }
}

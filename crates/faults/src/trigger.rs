//! Triggers: *when* a fault strikes.
//!
//! A [`SitePredicate`] selects the coordinates of interest (any field may
//! be wildcarded); a [`FireMode`] turns matches into firings — the paper's
//! protocol is "fire exactly once, at this exact site".

use crate::site::{Kernel, Site};

/// Selects the orthogonalization-loop position symbolically, so "last"
/// can be expressed without knowing the column index up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopPosition {
    /// `i == 1` — the paper's "first iteration of the MGS loop".
    First,
    /// `i == j` — the paper's "last iteration of the MGS loop".
    Last,
    /// An explicit loop index.
    Index(usize),
    /// Any position.
    Any,
}

/// A conjunctive match over site coordinates; `None` = wildcard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SitePredicate {
    /// Match a specific kernel.
    pub kernel: Option<Kernel>,
    /// Match a specific outer iteration.
    pub outer_iteration: Option<usize>,
    /// Match a specific inner-solve ordinal.
    pub inner_solve: Option<usize>,
    /// Match a specific inner iteration (Hessenberg column).
    pub inner_iteration: Option<usize>,
    /// Match a loop position.
    pub loop_position: LoopPosition,
}

impl SitePredicate {
    /// Wildcard predicate: matches every site.
    pub fn any() -> Self {
        Self {
            kernel: None,
            outer_iteration: None,
            inner_solve: None,
            inner_iteration: None,
            loop_position: LoopPosition::Any,
        }
    }

    /// Predicate for the paper's campaign: the orthogonalization dot
    /// product at inner solve `solve`, inner iteration `iter`, at the
    /// first or last MGS position.
    pub fn mgs_site(solve: usize, iter: usize, position: LoopPosition) -> Self {
        Self {
            kernel: Some(Kernel::OrthoDot),
            outer_iteration: None,
            inner_solve: Some(solve),
            inner_iteration: Some(iter),
            loop_position: position,
        }
    }

    /// Predicate for the opaque-preconditioner model's transient faults:
    /// a preconditioner *application* inside inner solve `solve`, at
    /// operator apply `apply` of that solve, striking the output element
    /// selected by `position` (`First` = element 1; use
    /// `LoopPosition::Index(n)` for the last element of an order-`n`
    /// operator — `Last` has MGS column semantics and never matches
    /// apply sites).
    pub fn precond_apply(solve: usize, apply: usize, position: LoopPosition) -> Self {
        Self {
            kernel: Some(Kernel::Precond),
            outer_iteration: None,
            inner_solve: Some(solve),
            inner_iteration: Some(apply),
            loop_position: position,
        }
    }

    /// Predicate for the opaque-preconditioner model's *persistent*
    /// faults: stored-factor slot `slot` (1-based, mirroring the
    /// `Kernel::MatrixValue` convention). Iteration coordinates are
    /// wildcarded — stored-factor sweeps carry zeros there.
    pub fn precond_factor(slot: usize) -> Self {
        Self {
            kernel: Some(Kernel::Precond),
            outer_iteration: None,
            inner_solve: None,
            inner_iteration: None,
            loop_position: LoopPosition::Index(slot),
        }
    }

    /// Tests the predicate against a site.
    pub fn matches(&self, site: &Site) -> bool {
        if let Some(k) = self.kernel {
            if site.kernel != k {
                return false;
            }
        }
        if let Some(o) = self.outer_iteration {
            if site.outer_iteration != o {
                return false;
            }
        }
        if let Some(s) = self.inner_solve {
            if site.inner_solve != s {
                return false;
            }
        }
        if let Some(j) = self.inner_iteration {
            if site.inner_iteration != j {
                return false;
            }
        }
        match self.loop_position {
            LoopPosition::Any => true,
            LoopPosition::First => site.loop_index == 1,
            LoopPosition::Last => site.loop_index != 0 && site.loop_index == site.inner_iteration,
            LoopPosition::Index(i) => site.loop_index == i,
        }
    }
}

/// How many matches become firings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FireMode {
    /// Fire on the first match only — single transient SDC (the paper's
    /// protocol).
    Once,
    /// Fire on every match — models *persistent* corruption (Fig. 1:
    /// permanently faulty hardware).
    Always,
    /// Fire on the n-th match only (1-based).
    NthMatch(u64),
    /// Fire on every match whose ordinal lies in `[from, to]` (1-based,
    /// inclusive) — models a *sticky* fault: hardware faulty for some
    /// duration, then healthy again (Fig. 1).
    Window {
        /// First firing match ordinal.
        from: u64,
        /// Last firing match ordinal.
        to: u64,
    },
}

/// A complete trigger: predicate + firing mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// Which sites are eligible.
    pub predicate: SitePredicate,
    /// Which matches actually fire.
    pub mode: FireMode,
}

impl Trigger {
    /// Single-shot trigger at the given predicate (the paper's protocol).
    pub fn once(predicate: SitePredicate) -> Self {
        Trigger { predicate, mode: FireMode::Once }
    }

    /// Fires on every matching site.
    pub fn always(predicate: SitePredicate) -> Self {
        Trigger { predicate, mode: FireMode::Always }
    }

    /// Decides whether a match with the given ordinal (1-based count of
    /// matches so far, including this one) and prior firing count fires.
    pub fn should_fire(&self, match_ordinal: u64, fired_before: u64) -> bool {
        match self.mode {
            FireMode::Once => fired_before == 0,
            FireMode::Always => true,
            FireMode::NthMatch(n) => match_ordinal == n,
            FireMode::Window { from, to } => (from..=to).contains(&match_ordinal),
        }
    }

    /// A sticky fault: fires on match ordinals `[from, to]`.
    pub fn sticky(predicate: SitePredicate, from: u64, to: u64) -> Self {
        Trigger { predicate, mode: FireMode::Window { from, to } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgs(solve: usize, iter: usize, i: usize) -> Site {
        Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: solve,
            inner_solve: solve,
            inner_iteration: iter,
            loop_index: i,
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        let p = SitePredicate::any();
        assert!(p.matches(&mgs(1, 1, 1)));
        assert!(p.matches(&Site::bare(Kernel::SpMv)));
    }

    #[test]
    fn mgs_site_first() {
        let p = SitePredicate::mgs_site(3, 7, LoopPosition::First);
        assert!(p.matches(&mgs(3, 7, 1)));
        assert!(!p.matches(&mgs(3, 7, 2)));
        assert!(!p.matches(&mgs(3, 6, 1)));
        assert!(!p.matches(&mgs(2, 7, 1)));
    }

    #[test]
    fn mgs_site_last_tracks_column() {
        let p = SitePredicate::mgs_site(1, 5, LoopPosition::Last);
        assert!(p.matches(&mgs(1, 5, 5)));
        assert!(!p.matches(&mgs(1, 5, 4)));
        // Column 1: loop index 1 is last.
        let p1 = SitePredicate::mgs_site(1, 1, LoopPosition::Last);
        assert!(p1.matches(&mgs(1, 1, 1)));
    }

    #[test]
    fn kernel_mismatch_rejected() {
        let p = SitePredicate::mgs_site(1, 1, LoopPosition::Any);
        let mut s = mgs(1, 1, 1);
        s.kernel = Kernel::OrthoNorm;
        assert!(!p.matches(&s));
    }

    #[test]
    fn fire_modes() {
        let t = Trigger::once(SitePredicate::any());
        assert!(t.should_fire(1, 0));
        assert!(!t.should_fire(2, 1));
        let t = Trigger::always(SitePredicate::any());
        assert!(t.should_fire(5, 4));
        let t = Trigger { predicate: SitePredicate::any(), mode: FireMode::NthMatch(3) };
        assert!(!t.should_fire(1, 0));
        assert!(!t.should_fire(2, 0));
        assert!(t.should_fire(3, 0));
        assert!(!t.should_fire(4, 1));
    }

    #[test]
    fn sticky_window_fires_inside_only() {
        let t = Trigger::sticky(SitePredicate::any(), 3, 5);
        assert!(!t.should_fire(1, 0));
        assert!(!t.should_fire(2, 0));
        assert!(t.should_fire(3, 0));
        assert!(t.should_fire(4, 1));
        assert!(t.should_fire(5, 2));
        assert!(!t.should_fire(6, 3));
    }

    #[test]
    fn precond_apply_matches_transient_sites_only() {
        let p = SitePredicate::precond_apply(2, 3, LoopPosition::First);
        let hit = Site {
            kernel: Kernel::Precond,
            outer_iteration: 2,
            inner_solve: 2,
            inner_iteration: 3,
            loop_index: 1,
        };
        assert!(p.matches(&hit));
        assert!(!p.matches(&Site { loop_index: 2, ..hit }));
        assert!(!p.matches(&Site { inner_solve: 1, ..hit }));
        assert!(!p.matches(&Site { kernel: Kernel::OrthoDot, ..hit }));
    }

    #[test]
    fn precond_factor_matches_stored_slots_regardless_of_iteration() {
        let p = SitePredicate::precond_factor(7);
        let hit = Site {
            kernel: Kernel::Precond,
            outer_iteration: 0,
            inner_solve: 0,
            inner_iteration: 0,
            loop_index: 7,
        };
        assert!(p.matches(&hit));
        assert!(p.matches(&Site { outer_iteration: 3, inner_solve: 3, ..hit }));
        assert!(!p.matches(&Site { loop_index: 8, ..hit }));
    }

    #[test]
    fn explicit_index_position() {
        let p = SitePredicate::mgs_site(1, 9, LoopPosition::Index(4));
        assert!(p.matches(&mgs(1, 9, 4)));
        assert!(!p.matches(&mgs(1, 9, 1)));
    }
}

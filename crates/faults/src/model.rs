//! Fault models: what corruption does to a value.
//!
//! The paper deliberately generalizes away from bit flips: "Injecting bit
//! flips will produce either type of error, making the act of injecting a
//! bit flip to study transient SDC unnecessary as the outcome could have
//! been achieved by merely setting the memory location equal to some
//! value" (§III-A-2). The models here therefore cover both views — the
//! relative scalings the paper's experiments use, absolute overwrites,
//! and the literal bit flips of prior work — all applied to IEEE-754
//! binary64 values.

use crate::bitflip::flip_bit;

/// A transformation applied to a single `f64` to simulate SDC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultModel {
    /// `x → x · factor`. The paper's three experiment classes are
    /// `1e150`, `10^-0.5` and `1e-300`.
    ScaleRelative(f64),
    /// `x → value` regardless of x ("set the memory location equal to
    /// some value").
    SetValue(f64),
    /// `x → x + delta`.
    Offset(f64),
    /// Flip one bit of the IEEE-754 representation (0 = LSB of the
    /// mantissa … 62..52 exponent … 63 = sign).
    BitFlip {
        /// Bit position, `0..=63`.
        bit: u8,
    },
    /// `x → NaN` (trivially detectable; included for completeness).
    SetNan,
    /// `x → +Inf`.
    SetPosInf,
    /// `x → −Inf`.
    SetNegInf,
}

impl FaultModel {
    /// Applies the corruption to `x`.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            FaultModel::ScaleRelative(f) => x * f,
            FaultModel::SetValue(v) => v,
            FaultModel::Offset(d) => x + d,
            FaultModel::BitFlip { bit } => flip_bit(x, bit),
            FaultModel::SetNan => f64::NAN,
            FaultModel::SetPosInf => f64::INFINITY,
            FaultModel::SetNegInf => f64::NEG_INFINITY,
        }
    }

    /// The paper's class-1 fault: very large, `h̃ = h × 10^150`.
    pub const CLASS1_HUGE: FaultModel = FaultModel::ScaleRelative(1e150);

    /// The paper's class-3 fault: nearly zero, `h̃ = h × 10^-300`.
    pub const CLASS3_TINY: FaultModel = FaultModel::ScaleRelative(1e-300);

    /// The paper's class-2 fault: slightly smaller, `h̃ = h × 10^-0.5`.
    /// (`10^-0.5` is not exactly representable; computed once here.)
    pub fn class2_slight() -> FaultModel {
        FaultModel::ScaleRelative(10f64.powf(-0.5))
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultModel::ScaleRelative(s) => write!(f, "x*{s:e}"),
            FaultModel::SetValue(v) => write!(f, "x:={v:e}"),
            FaultModel::Offset(d) => write!(f, "x+{d:e}"),
            FaultModel::BitFlip { bit } => write!(f, "flip bit {bit}"),
            FaultModel::SetNan => write!(f, "x:=NaN"),
            FaultModel::SetPosInf => write!(f, "x:=+Inf"),
            FaultModel::SetNegInf => write!(f, "x:=-Inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_classes_match_paper() {
        let h = 3.25;
        assert_eq!(FaultModel::CLASS1_HUGE.apply(h), h * 1e150);
        assert_eq!(FaultModel::CLASS3_TINY.apply(h), h * 1e-300);
        let c2 = FaultModel::class2_slight().apply(h);
        assert!((c2 - h * 0.31622776601683794).abs() < 1e-15);
    }

    #[test]
    fn set_value_ignores_input() {
        let m = FaultModel::SetValue(42.0);
        assert_eq!(m.apply(1.0), 42.0);
        assert_eq!(m.apply(f64::NAN), 42.0);
    }

    #[test]
    fn offset_adds() {
        assert_eq!(FaultModel::Offset(2.0).apply(1.5), 3.5);
    }

    #[test]
    fn specials() {
        assert!(FaultModel::SetNan.apply(1.0).is_nan());
        assert_eq!(FaultModel::SetPosInf.apply(1.0), f64::INFINITY);
        assert_eq!(FaultModel::SetNegInf.apply(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn bitflip_sign() {
        let m = FaultModel::BitFlip { bit: 63 };
        assert_eq!(m.apply(2.5), -2.5);
    }

    #[test]
    fn class1_on_typical_hessenberg_entry_overflows_nothing() {
        // h entries are bounded by ‖A‖_F (~446 for the Poisson problem);
        // ×1e150 stays finite in f64.
        let h = 446.0;
        let v = FaultModel::CLASS1_HUGE.apply(h);
        assert!(v.is_finite());
        assert!(v > 1e152);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", FaultModel::SetNan), "x:=NaN");
        assert!(format!("{}", FaultModel::CLASS1_HUGE).starts_with("x*"));
    }
}

//! Injection sites: *where* in the solver a fault strikes.
//!
//! The paper's campaign addresses faults with surgical precision: "on the
//! first iteration of the first inner solve, we perturb the upper
//! Hessenberg entry h_ij on the first iteration of the orthogonalization
//! loop" (§VII-B). A [`Site`] carries all the coordinates needed to
//! express that: the kernel, the outer iteration, the inner-solve ordinal,
//! the inner iteration (= Hessenberg column j), and the position inside
//! the orthogonalization loop (= row index i of `h_ij`).
//!
//! All indices are 1-based to match the paper's notation; `0` means
//! "not applicable" (e.g. `loop_index` for an SpMV site).

/// The instrumented kernel in which a value was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// A dot product in the orthogonalization loop — produces `h_ij`
    /// (Algorithm 1, line 6).
    OrthoDot,
    /// The norm computation after the loop — produces `h_{j+1,j}`
    /// (Algorithm 1, line 9).
    OrthoNorm,
    /// Sparse matrix–vector product (Algorithm 1, line 4).
    SpMv,
    /// Vector update kernels.
    Axpy,
    /// The projected least-squares solve.
    LsqSolve,
    /// Preconditioner application.
    Precond,
    /// A value in the operator's *stored data* (matrix storage), struck
    /// in memory rather than in flight. `loop_index` carries the flat
    /// storage slot + 1 — `row_ptr[r] + k` for CSR, the chunk-interleaved
    /// slot for SELL-C-σ (see `sdc_faults::storage` for the mapping);
    /// iteration coordinates are 0 (the corruption persists across
    /// iterations until repaired).
    MatrixValue,
}

/// Full coordinates of one instrumented scalar operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Site {
    /// Which kernel produced the value.
    pub kernel: Kernel,
    /// Outer (FGMRES) iteration, 1-based; 0 if not running nested.
    pub outer_iteration: usize,
    /// Ordinal of the inner-solve invocation, 1-based; 0 if not nested.
    /// For FT-GMRES with one inner solve per outer iteration this equals
    /// `outer_iteration`.
    pub inner_solve: usize,
    /// Iteration *within* the current solve, 1-based. For Arnoldi this is
    /// the Hessenberg column index `j`.
    pub inner_iteration: usize,
    /// Position within the orthogonalization loop, 1-based: the row index
    /// `i` of `h_ij`. For `OrthoNorm` sites this is `j+1`. 0 if N/A.
    pub loop_index: usize,
}

impl Site {
    /// A site with every coordinate zeroed except the kernel.
    pub fn bare(kernel: Kernel) -> Self {
        Site { kernel, outer_iteration: 0, inner_solve: 0, inner_iteration: 0, loop_index: 0 }
    }

    /// The paper's x-axis coordinate: the aggregate inner iteration,
    /// `(inner_solve − 1) · inner_per_outer + inner_iteration`, 1-based.
    /// Returns 0 if this site is not inside an inner solve.
    pub fn aggregate_inner_iteration(&self, inner_per_outer: usize) -> usize {
        if self.inner_solve == 0 || self.inner_iteration == 0 {
            0
        } else {
            (self.inner_solve - 1) * inner_per_outer + self.inner_iteration
        }
    }

    /// True for the first position of the orthogonalization loop
    /// (`h_{1,j}`) — the paper's "first MGS iteration" fault target.
    pub fn is_first_mgs(&self) -> bool {
        self.kernel == Kernel::OrthoDot && self.loop_index == 1
    }

    /// True for the last position of the orthogonalization loop
    /// (`h_{j,j}`, i.e. `i == j`) — the paper's "last MGS iteration"
    /// fault target.
    pub fn is_last_mgs(&self) -> bool {
        self.kernel == Kernel::OrthoDot
            && self.loop_index != 0
            && self.loop_index == self.inner_iteration
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}[outer={}, solve={}, iter={}, i={}]",
            self.kernel,
            self.outer_iteration,
            self.inner_solve,
            self.inner_iteration,
            self.loop_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(solve: usize, iter: usize, i: usize) -> Site {
        Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: solve,
            inner_solve: solve,
            inner_iteration: iter,
            loop_index: i,
        }
    }

    #[test]
    fn aggregate_indexing_matches_paper_axis() {
        // 25 inner iterations per outer solve, as in the experiments.
        assert_eq!(site(1, 1, 1).aggregate_inner_iteration(25), 1);
        assert_eq!(site(1, 25, 1).aggregate_inner_iteration(25), 25);
        assert_eq!(site(2, 1, 1).aggregate_inner_iteration(25), 26);
        assert_eq!(site(9, 25, 1).aggregate_inner_iteration(25), 225);
    }

    #[test]
    fn aggregate_zero_outside_inner_solve() {
        let s = Site::bare(Kernel::SpMv);
        assert_eq!(s.aggregate_inner_iteration(25), 0);
    }

    #[test]
    fn first_and_last_mgs_predicates() {
        assert!(site(1, 5, 1).is_first_mgs());
        assert!(!site(1, 5, 2).is_first_mgs());
        assert!(site(1, 5, 5).is_last_mgs());
        assert!(!site(1, 5, 4).is_last_mgs());
        // Column 1: first and last coincide.
        let s = site(3, 1, 1);
        assert!(s.is_first_mgs() && s.is_last_mgs());
        // Norm sites are neither.
        let mut n = site(1, 5, 6);
        n.kernel = Kernel::OrthoNorm;
        assert!(!n.is_first_mgs() && !n.is_last_mgs());
    }

    #[test]
    fn display_is_informative() {
        let s = site(2, 3, 1);
        let d = format!("{s}");
        assert!(d.contains("OrthoDot") && d.contains("solve=2") && d.contains("i=1"));
    }
}

//! The fault/failure taxonomy of the paper's Figure 1, as types.
//!
//! The paper distinguishes *faults* (events at the system level) from
//! *failures* (faults that "leak out" and affect the user), and splits
//! faults into *hard* (interrupt the program) and *soft* (do not), with
//! soft faults further classified by the duration of the underlying
//! hardware misbehaviour. Encoding the taxonomy as enums keeps the
//! experiment code honest about which scenario it simulates: this
//! reproduction — like the paper — studies **single transient soft
//! faults** in numerical data.

/// How long the underlying hardware stays faulty (Fig. 1, bottom left).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SoftFaultPersistence {
    /// Occurs once; the hardware is immediately healthy again. The
    /// *effect* of the fault may persist in data. This is the paper's
    /// scope.
    Transient,
    /// Faulty for some duration, then returns to normal.
    Sticky,
    /// Permanently faulty hardware (stuck bit, FDIV-style design flaw).
    Persistent,
}

/// A fault at the system level (Fig. 1, top).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Does not interrupt the program; detectable only by introspection.
    Soft(SoftFaultPersistence),
    /// Interrupts the program (crash, abnormal termination). The program
    /// suffering it cannot detect it directly.
    Hard,
}

/// What the user observes after an algorithm ran in the presence of a
/// fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UserOutcome {
    /// The algorithm used tainted data and still produced the correct
    /// answer: the fault did **not** become a failure ("run through").
    CorrectSolution,
    /// The program kept running but made no progress.
    Stagnation,
    /// The program terminated abnormally.
    Crash,
    /// The worst case: a wrong answer delivered with no indication —
    /// a *silent failure*, the outcome the paper's detectors exist to
    /// make "very rare or impossible".
    SilentlyWrongSolution,
    /// The algorithm detected the problem and reported it loudly.
    DetectedAndReported,
}

impl UserOutcome {
    /// A fault becomes a *failure* iff it impacts the user (Fig. 1).
    pub fn is_failure(&self) -> bool {
        !matches!(self, UserOutcome::CorrectSolution | UserOutcome::DetectedAndReported)
    }

    /// Silent failures are failures that carry no indication.
    pub fn is_silent_failure(&self) -> bool {
        matches!(self, UserOutcome::SilentlyWrongSolution)
    }
}

impl Fault {
    /// Whether user code can detect this fault via introspection while
    /// continuing to run (soft faults only — hard faults interrupt).
    pub fn detectable_by_introspection(&self) -> bool {
        matches!(self, Fault::Soft(_))
    }

    /// The paper's scope: a single transient soft fault.
    pub fn in_paper_scope(&self) -> bool {
        matches!(self, Fault::Soft(SoftFaultPersistence::Transient))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_is_single_transient_soft() {
        assert!(Fault::Soft(SoftFaultPersistence::Transient).in_paper_scope());
        assert!(!Fault::Soft(SoftFaultPersistence::Sticky).in_paper_scope());
        assert!(!Fault::Soft(SoftFaultPersistence::Persistent).in_paper_scope());
        assert!(!Fault::Hard.in_paper_scope());
    }

    #[test]
    fn hard_faults_not_introspectable() {
        assert!(!Fault::Hard.detectable_by_introspection());
        assert!(Fault::Soft(SoftFaultPersistence::Transient).detectable_by_introspection());
    }

    #[test]
    fn failure_classification() {
        assert!(!UserOutcome::CorrectSolution.is_failure());
        assert!(!UserOutcome::DetectedAndReported.is_failure());
        assert!(UserOutcome::Stagnation.is_failure());
        assert!(UserOutcome::Crash.is_failure());
        assert!(UserOutcome::SilentlyWrongSolution.is_failure());
        assert!(UserOutcome::SilentlyWrongSolution.is_silent_failure());
        assert!(!UserOutcome::Crash.is_silent_failure());
    }
}

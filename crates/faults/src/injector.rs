//! The fault-injection interface the solvers call.
//!
//! Instrumented kernels pass every produced scalar through
//! [`FaultInjector::corrupt`] together with its [`Site`]. In a fault-free
//! run the injector is [`NoFaults`] — an identity function the optimizer
//! reduces to nothing. A campaign run installs a [`SingleFaultInjector`]
//! that fires exactly once at its trigger and records what it did (the
//! record is how experiments verify that the intended fault, and only that
//! fault, was committed).

use crate::model::FaultModel;
use crate::site::Site;
use crate::trigger::Trigger;
use parking_lot::Mutex;

/// One committed corruption. Deterministic channel: the trigger decides
/// on logical site coordinates, so the event (including the exact bit
/// patterns) is a pure function of the experiment spec.
static EV_INJECT: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "fault.inject", channel: sdc_obs::Channel::Det };

fn trace_injection(site: &Site, ordinal: u64, original: f64, corrupted: f64) {
    if sdc_obs::enabled() {
        sdc_obs::Event::new(&EV_INJECT)
            .str("kernel", format!("{:?}", site.kernel))
            .u64("outer", site.outer_iteration as u64)
            .u64("inner_solve", site.inner_solve as u64)
            .u64("inner_iter", site.inner_iteration as u64)
            .u64("loop_index", site.loop_index as u64)
            .u64("ordinal", ordinal)
            .u64("original_bits", original.to_bits())
            .u64("corrupted_bits", corrupted.to_bits())
            .u64("flipped_bits", original.to_bits() ^ corrupted.to_bits())
            .emit();
    }
}

/// A record of one committed corruption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectionRecord {
    /// Where it happened.
    pub site: Site,
    /// The correct value the kernel produced.
    pub original: f64,
    /// The corrupted value handed back to the solver.
    pub corrupted: f64,
}

/// The injection interface. Implementations must be cheap in the
/// non-firing path and thread-safe (campaigns run many solves in
/// parallel; a single solve may also use parallel kernels).
pub trait FaultInjector: Send + Sync {
    /// Possibly corrupts `value` produced at `site`.
    fn corrupt(&self, site: Site, value: f64) -> f64;

    /// Records of every corruption committed so far.
    fn records(&self) -> Vec<InjectionRecord> {
        Vec::new()
    }
}

/// The fault-free injector: identity.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline]
    fn corrupt(&self, _site: Site, value: f64) -> f64 {
        value
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    matches: u64,
    fired: u64,
    records: Vec<InjectionRecord>,
}

/// Injects according to a [`Trigger`] and [`FaultModel`]; the default
/// single-shot trigger realizes the paper's single-transient-SDC protocol.
#[derive(Debug)]
pub struct SingleFaultInjector {
    model: FaultModel,
    trigger: Trigger,
    state: Mutex<InjectorState>,
}

impl SingleFaultInjector {
    /// Creates an injector firing `model` according to `trigger`.
    pub fn new(model: FaultModel, trigger: Trigger) -> Self {
        Self { model, trigger, state: Mutex::new(InjectorState::default()) }
    }

    /// Number of corruptions committed so far.
    pub fn fired_count(&self) -> u64 {
        self.state.lock().fired
    }

    /// Number of sites that matched the predicate so far.
    pub fn match_count(&self) -> u64 {
        self.state.lock().matches
    }

    /// Resets the counters and records (reuse across solves).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        *st = InjectorState::default();
    }

    /// The configured model.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The configured trigger.
    pub fn trigger(&self) -> Trigger {
        self.trigger
    }
}

impl FaultInjector for SingleFaultInjector {
    fn corrupt(&self, site: Site, value: f64) -> f64 {
        // Fast reject without locking: predicate evaluation is pure.
        if !self.trigger.predicate.matches(&site) {
            return value;
        }
        let mut st = self.state.lock();
        st.matches += 1;
        if self.trigger.should_fire(st.matches, st.fired) {
            st.fired += 1;
            let corrupted = self.model.apply(value);
            st.records.push(InjectionRecord { site, original: value, corrupted });
            trace_injection(&site, st.fired, value, corrupted);
            corrupted
        } else {
            value
        }
    }

    fn records(&self) -> Vec<InjectionRecord> {
        self.state.lock().records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Kernel;
    use crate::trigger::{LoopPosition, SitePredicate};

    fn mgs(solve: usize, iter: usize, i: usize) -> Site {
        Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: solve,
            inner_solve: solve,
            inner_iteration: iter,
            loop_index: i,
        }
    }

    #[test]
    fn no_faults_is_identity() {
        let inj = NoFaults;
        assert_eq!(inj.corrupt(Site::bare(Kernel::SpMv), 1.25), 1.25);
        assert!(inj.records().is_empty());
    }

    #[test]
    fn fires_exactly_once_at_target_site() {
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(2, 3, LoopPosition::First)),
        );
        // Non-matching sites untouched.
        assert_eq!(inj.corrupt(mgs(1, 1, 1), 0.5), 0.5);
        assert_eq!(inj.corrupt(mgs(2, 3, 2), 0.5), 0.5);
        // Target site corrupted.
        let v = inj.corrupt(mgs(2, 3, 1), 0.5);
        assert_eq!(v, 0.5 * 1e150);
        // Same site again (e.g. after an inner restart): single transient
        // SDC fires only once.
        assert_eq!(inj.corrupt(mgs(2, 3, 1), 0.5), 0.5);
        assert_eq!(inj.fired_count(), 1);
        let recs = inj.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].original, 0.5);
        assert_eq!(recs[0].corrupted, 0.5 * 1e150);
        assert_eq!(recs[0].site, mgs(2, 3, 1));
    }

    #[test]
    fn always_mode_fires_on_every_match() {
        let inj = SingleFaultInjector::new(
            FaultModel::ScaleRelative(2.0),
            Trigger::always(SitePredicate::mgs_site(1, 1, LoopPosition::Any)),
        );
        assert_eq!(inj.corrupt(mgs(1, 1, 1), 1.0), 2.0);
        assert_eq!(inj.corrupt(mgs(1, 1, 1), 1.0), 2.0);
        assert_eq!(inj.fired_count(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let inj = SingleFaultInjector::new(FaultModel::SetNan, Trigger::once(SitePredicate::any()));
        let v = inj.corrupt(mgs(1, 1, 1), 1.0);
        assert!(v.is_nan());
        inj.reset();
        assert_eq!(inj.fired_count(), 0);
        let v = inj.corrupt(mgs(5, 5, 5), 7.0);
        assert!(v.is_nan(), "after reset the single shot is re-armed");
    }

    #[test]
    fn thread_safety_single_fire_under_contention() {
        use std::sync::Arc;
        let inj = Arc::new(SingleFaultInjector::new(
            FaultModel::SetValue(-1.0),
            Trigger::once(SitePredicate::any()),
        ));
        let mut handles = Vec::new();
        for t in 0..8 {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                let mut corrupted = 0usize;
                for k in 0..1000 {
                    let v = inj.corrupt(mgs(t + 1, k + 1, 1), 1.0);
                    if v == -1.0 {
                        corrupted += 1;
                    }
                }
                corrupted
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1, "exactly one corruption across all threads");
        assert_eq!(inj.fired_count(), 1);
    }
}

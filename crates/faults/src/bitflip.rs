//! Bit-level anatomy of IEEE-754 binary64 corruption.
//!
//! Prior work injects bit flips; the paper argues (§III-A-2) that any flip
//! is equivalent to *some* numerical value, so analysis should be done on
//! value magnitudes instead. This module makes that argument quantitative:
//! it can flip any bit of an `f64` and classify the damage — which bits
//! produce detectable (out-of-bound) values, which produce NaN/Inf, and
//! which produce small relative perturbations the detector provably cannot
//! (and need not) catch.

/// Region of the IEEE-754 binary64 layout a bit belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BitRegion {
    /// Bits 0–51.
    Mantissa,
    /// Bits 52–62.
    Exponent,
    /// Bit 63.
    Sign,
}

/// Classifies a bit position.
pub fn bit_region(bit: u8) -> BitRegion {
    match bit {
        0..=51 => BitRegion::Mantissa,
        52..=62 => BitRegion::Exponent,
        63 => BitRegion::Sign,
        _ => panic!("bit position {bit} out of range for f64"),
    }
}

/// Flips bit `bit` (0 = LSB) of the binary64 representation of `x`.
///
/// # Panics
/// Panics if `bit > 63`.
#[inline]
pub fn flip_bit(x: f64, bit: u8) -> f64 {
    assert!(bit < 64, "bit position {bit} out of range for f64");
    f64::from_bits(x.to_bits() ^ (1u64 << bit))
}

/// The outcome of flipping one bit of a reference value.
#[derive(Clone, Copy, Debug)]
pub struct FlipOutcome {
    /// Which bit was flipped.
    pub bit: u8,
    /// Layout region of that bit.
    pub region: BitRegion,
    /// The corrupted value.
    pub value: f64,
    /// `|corrupted / original|`, `f64::INFINITY` if original was 0 and the
    /// flip produced nonzero, `NaN` if the flip produced NaN.
    pub magnification: f64,
}

impl FlipOutcome {
    /// Whether a threshold detector `|h| ≤ bound` flags this outcome
    /// (NaN compares false with everything, so it is treated as flagged
    /// by the `!(|v| ≤ bound)` formulation the solvers use).
    pub fn detectable_by_bound(&self, bound: f64) -> bool {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        // negation is how NaN lands in the flagged branch
        {
            !(self.value.abs() <= bound)
        }
    }
}

/// Flips every bit position of `x` in turn and reports the outcomes.
pub fn bitflip_anatomy(x: f64) -> Vec<FlipOutcome> {
    (0u8..64)
        .map(|bit| {
            let value = flip_bit(x, bit);
            let magnification = if x == 0.0 {
                if value == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                (value / x).abs()
            };
            FlipOutcome { bit, region: bit_region(bit), value, magnification }
        })
        .collect()
}

/// Summary counts over a bit-flip anatomy with respect to a detector
/// bound: how many of the 64 single-bit corruptions are (a) detectable by
/// the bound check, (b) non-finite, (c) silent small perturbations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnatomySummary {
    /// Outcomes with `!(|v| ≤ bound)` — caught by the Hessenberg check.
    pub detectable: usize,
    /// Outcomes that are NaN or ±Inf (subset of `detectable`).
    pub non_finite: usize,
    /// Outcomes within the bound — indistinguishable from valid data.
    pub undetectable: usize,
}

/// Summarizes [`bitflip_anatomy`] against a detector bound.
pub fn summarize_against_bound(outcomes: &[FlipOutcome], bound: f64) -> AnatomySummary {
    let mut s = AnatomySummary::default();
    for o in outcomes {
        if o.detectable_by_bound(bound) {
            s.detectable += 1;
            if !o.value.is_finite() {
                s.non_finite += 1;
            }
        } else {
            s.undetectable += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        let x = std::f64::consts::PI;
        for bit in 0..64 {
            assert_eq!(flip_bit(flip_bit(x, bit), bit).to_bits(), x.to_bits(), "bit {bit}");
        }
    }

    #[test]
    fn sign_bit_negates() {
        assert_eq!(flip_bit(2.5, 63), -2.5);
        assert_eq!(flip_bit(-1.0, 63), 1.0);
    }

    #[test]
    fn mantissa_lsb_is_one_ulp() {
        let x = 1.0;
        let y = flip_bit(x, 0);
        assert_eq!(y, 1.0 + f64::EPSILON);
    }

    #[test]
    fn top_exponent_bit_is_huge() {
        // Flipping bit 62 of a value with exponent < 2 multiplies by
        // 2^1024-ish (overflow to Inf or enormous value).
        let y = flip_bit(1.0, 62);
        assert!(!y.is_finite() || y.abs() > 1e300);
    }

    #[test]
    fn regions() {
        assert_eq!(bit_region(0), BitRegion::Mantissa);
        assert_eq!(bit_region(51), BitRegion::Mantissa);
        assert_eq!(bit_region(52), BitRegion::Exponent);
        assert_eq!(bit_region(62), BitRegion::Exponent);
        assert_eq!(bit_region(63), BitRegion::Sign);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_64_panics() {
        flip_bit(1.0, 64);
    }

    #[test]
    fn anatomy_covers_all_bits() {
        let a = bitflip_anatomy(1.5);
        assert_eq!(a.len(), 64);
        // Mantissa flips of 1.5 stay within a factor of 2.
        for o in a.iter().filter(|o| o.region == BitRegion::Mantissa) {
            assert!(o.magnification > 0.5 && o.magnification < 2.0, "bit {}", o.bit);
        }
    }

    #[test]
    fn summary_partitions_64_bits() {
        let a = bitflip_anatomy(0.37);
        let s = summarize_against_bound(&a, 446.0);
        assert_eq!(s.detectable + s.undetectable, 64);
        assert!(s.detectable > 0, "some exponent flips must blow past the bound");
        assert!(s.undetectable > 40, "most mantissa flips are small (silent)");
    }

    #[test]
    fn nan_flips_count_as_detectable() {
        // Flip an exponent bit of Inf → NaN-ish patterns; directly check
        // the NaN handling of detectable_by_bound.
        let o = FlipOutcome {
            bit: 0,
            region: BitRegion::Mantissa,
            value: f64::NAN,
            magnification: f64::NAN,
        };
        assert!(o.detectable_by_bound(446.0), "NaN must be flagged");
    }

    #[test]
    fn zero_reference_magnification() {
        let a = bitflip_anatomy(0.0);
        // Any flip of +0.0 yields nonzero (or -0.0 for the sign bit).
        let sign = &a[63];
        assert_eq!(sign.value, -0.0);
        assert_eq!(sign.magnification, 1.0); // -0.0 == 0.0
        let lsb = &a[0];
        assert!(lsb.value != 0.0);
        assert_eq!(lsb.magnification, f64::INFINITY);
    }
}

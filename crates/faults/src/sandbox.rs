//! The sandbox reliability model of §IV.
//!
//! The sandbox makes exactly two promises about the unreliable guest
//! computation: *it returns something* (which may be wrong), and *it
//! completes in fixed time*. This module realizes both for shared-memory
//! execution: the guest runs on its own thread, panics are caught and
//! converted into reportable (soft) errors, and the host may impose a
//! wall-clock budget after which it stops waiting — "the host may force
//! guest code to stop within a predefined finite time".
//!
//! A timed-out guest thread is detached, not killed (Rust offers no safe
//! thread cancellation); its eventual result is discarded. This matches
//! the sandbox semantics: what matters is that the *host* regains control
//! in bounded time.

use crossbeam::channel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Sandbox policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SandboxConfig {
    /// Maximum wall-clock time the host waits for the guest. `None`
    /// waits indefinitely (the guest still cannot take the host down —
    /// panics are converted).
    pub time_budget: Option<Duration>,
}

/// Why the guest produced no value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SandboxError {
    /// The guest panicked; the payload is the panic message. A hard
    /// fault inside the sandbox became a soft, reportable one.
    Panicked(String),
    /// The time budget elapsed before the guest finished.
    TimedOut,
}

impl std::fmt::Display for SandboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SandboxError::Panicked(msg) => write!(f, "guest panicked: {msg}"),
            SandboxError::TimedOut => write!(f, "guest exceeded its time budget"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// Runs `guest` under the sandbox model and returns its value, a captured
/// panic, or a timeout.
pub fn run_sandboxed<T, F>(cfg: SandboxConfig, guest: F) -> Result<T, SandboxError>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match cfg.time_budget {
        None => {
            // In-thread execution: still converts panics.
            catch_unwind(AssertUnwindSafe(guest)).map_err(|p| SandboxError::Panicked(panic_msg(p)))
        }
        Some(budget) => {
            let (tx, rx) = channel::bounded(1);
            let builder = std::thread::Builder::new().name("sdc-sandbox-guest".into());
            let handle = builder
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(guest)).map_err(panic_msg);
                    // The host may have stopped listening; ignore send
                    // failure.
                    let _ = tx.send(result);
                })
                .expect("failed to spawn sandbox guest thread");
            match rx.recv_timeout(budget) {
                Ok(Ok(v)) => {
                    let _ = handle.join();
                    Ok(v)
                }
                Ok(Err(msg)) => {
                    let _ = handle.join();
                    Err(SandboxError::Panicked(msg))
                }
                Err(_) => Err(SandboxError::TimedOut),
            }
        }
    }
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_value_returned() {
        let out = run_sandboxed(SandboxConfig::default(), || 21 * 2).unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn guest_panic_becomes_soft_error() {
        let err = run_sandboxed(SandboxConfig::default(), || -> i32 {
            panic!("simulated hard fault");
        })
        .unwrap_err();
        match err {
            SandboxError::Panicked(msg) => assert!(msg.contains("simulated hard fault")),
            other => panic!("expected panic capture, got {other:?}"),
        }
    }

    #[test]
    fn timed_guest_within_budget() {
        let cfg = SandboxConfig { time_budget: Some(Duration::from_secs(5)) };
        let out = run_sandboxed(cfg, || "done").unwrap();
        assert_eq!(out, "done");
    }

    #[test]
    fn hung_guest_times_out() {
        let cfg = SandboxConfig { time_budget: Some(Duration::from_millis(50)) };
        let err = run_sandboxed(cfg, || {
            std::thread::sleep(Duration::from_secs(3600));
            0
        })
        .unwrap_err();
        assert_eq!(err, SandboxError::TimedOut);
    }

    #[test]
    fn panic_on_worker_thread_with_budget() {
        let cfg = SandboxConfig { time_budget: Some(Duration::from_secs(5)) };
        let err = run_sandboxed(cfg, || -> u8 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, SandboxError::Panicked("boom 7".into()));
    }

    #[test]
    fn guest_result_flows_data_between_phases() {
        // §IV: sandboxes "allow data to flow between reliable and
        // unreliable phases" — the host uses the guest's (possibly wrong)
        // output.
        let tainted = run_sandboxed(SandboxConfig::default(), || vec![1.0, f64::NAN]).unwrap();
        assert_eq!(tainted.len(), 2);
        assert!(tainted[1].is_nan(), "host receives the corrupted data and must introspect it");
    }
}

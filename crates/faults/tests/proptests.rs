//! Property-based tests for the fault substrate.

use proptest::prelude::*;
use sdc_faults::bitflip::{bitflip_anatomy, flip_bit, summarize_against_bound};
use sdc_faults::injector::{FaultInjector, SingleFaultInjector};
use sdc_faults::model::FaultModel;
use sdc_faults::site::{Kernel, Site};
use sdc_faults::trigger::{LoopPosition, SitePredicate, Trigger};

fn any_finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e10f64..1e10,
        -1.0f64..1.0,
        Just(0.0),
        Just(1.0),
        Just(-1.0),
        Just(f64::MIN_POSITIVE),
    ]
}

proptest! {
    #[test]
    fn bitflip_is_involution_for_any_value(x in any_finite(), bit in 0u8..64) {
        let y = flip_bit(x, bit);
        prop_assert_eq!(flip_bit(y, bit).to_bits(), x.to_bits());
    }

    #[test]
    fn bitflip_changes_representation(x in any_finite(), bit in 0u8..64) {
        prop_assert_ne!(flip_bit(x, bit).to_bits(), x.to_bits());
    }

    #[test]
    fn anatomy_partition_sums_to_64(x in any_finite(), bound in 1.0f64..1e6) {
        let a = bitflip_anatomy(x);
        let s = summarize_against_bound(&a, bound);
        prop_assert_eq!(s.detectable + s.undetectable, 64);
        prop_assert!(s.non_finite <= s.detectable);
    }

    #[test]
    fn scale_fault_is_exactly_multiplicative(x in any_finite(), exp in -300i32..150) {
        let factor = 10f64.powi(exp);
        let m = FaultModel::ScaleRelative(factor);
        prop_assert_eq!(m.apply(x).to_bits(), (x * factor).to_bits());
    }

    #[test]
    fn single_shot_fires_exactly_once_over_any_stream(
        n_sites in 1usize..200,
        target in 0usize..200,
    ) {
        let target = target % n_sites;
        let inj = SingleFaultInjector::new(
            FaultModel::SetValue(f64::NAN),
            Trigger::once(SitePredicate::any()),
        );
        let mut corrupted = 0;
        for k in 0..n_sites {
            let v = inj.corrupt(
                Site {
                    kernel: Kernel::OrthoDot,
                    outer_iteration: 1,
                    inner_solve: 1,
                    inner_iteration: k + 1,
                    loop_index: 1,
                },
                k as f64,
            );
            if v.is_nan() {
                corrupted += 1;
            }
        }
        // `target` intentionally unused beyond shaping the stream: the
        // wildcard single-shot must corrupt the very first site only.
        let _ = target;
        prop_assert_eq!(corrupted, 1);
        prop_assert_eq!(inj.fired_count(), 1);
    }

    #[test]
    fn predicate_match_is_deterministic(
        solve in 1usize..20, iter in 1usize..26, i in 1usize..26,
    ) {
        let site = Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: solve,
            inner_solve: solve,
            inner_iteration: iter,
            loop_index: i,
        };
        let first = SitePredicate::mgs_site(solve, iter, LoopPosition::First);
        let last = SitePredicate::mgs_site(solve, iter, LoopPosition::Last);
        prop_assert_eq!(first.matches(&site), i == 1);
        prop_assert_eq!(last.matches(&site), i == iter);
    }

    #[test]
    fn aggregate_iteration_round_trips(agg in 1usize..1000, per in 1usize..50) {
        use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
        let p = CampaignPoint {
            aggregate_iteration: agg,
            inner_per_outer: per,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let reconstructed = (p.inner_solve() - 1) * per + p.inner_iteration();
        prop_assert_eq!(reconstructed, agg);
        prop_assert!(p.inner_iteration() >= 1 && p.inner_iteration() <= per);
    }
}

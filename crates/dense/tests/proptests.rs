//! Property-based tests for the dense substrate.
//!
//! These check the algebraic invariants the solvers rely on, over random
//! inputs: rotation orthonormality, QR reconstruction, SVD reconstruction
//! and ordering, least-squares optimality, and the determinism of parallel
//! reductions.

use proptest::prelude::*;
use sdc_dense::givens::GivensRotation;
use sdc_dense::householder::householder_qr;
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::matrix::DenseMatrix;
use sdc_dense::svd::jacobi_svd;
use sdc_dense::triangular::{solve_upper, TriangularOutcome};
use sdc_dense::vector;

fn finite_f64(mag: f64) -> impl Strategy<Value = f64> {
    (-mag..mag).prop_filter("nonzero-ish magnitude", move |x: &f64| x.abs() < mag)
}

fn vec_strategy(len: usize, mag: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(finite_f64(mag), len)
}

fn matrix_strategy(r: usize, c: usize, mag: f64) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(finite_f64(mag), r * c)
        .prop_map(move |data| DenseMatrix::from_col_major(r, c, data))
}

proptest! {
    #[test]
    fn givens_is_orthonormal_and_annihilates(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let g = GivensRotation::compute(a, b);
        prop_assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
        let (_r, zero) = g.apply(a, b);
        prop_assert!(zero.abs() <= 1e-9 * a.hypot(b).max(1e-12));
    }

    #[test]
    fn givens_preserves_two_norm(a in -1e3f64..1e3, b in -1e3f64..1e3,
                                 x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let g = GivensRotation::compute(a, b);
        let (nx, ny) = g.apply(x, y);
        prop_assert!((nx.hypot(ny) - x.hypot(y)).abs() < 1e-9 * x.hypot(y).max(1.0));
    }

    #[test]
    fn par_dot_is_bitwise_deterministic(x in vec_strategy(3000, 1e3)) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let serial = vector::dot(&x, &y);
        let parallel = vector::par_dot(&x, &y);
        prop_assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn nrm2_matches_dot_sqrt(x in vec_strategy(200, 1e6)) {
        let n = vector::nrm2(&x);
        let d = vector::dot(&x, &x).sqrt();
        prop_assert!((n - d).abs() <= 1e-9 * d.max(1e-12));
    }

    #[test]
    fn qr_reconstructs_random_matrices(a in matrix_strategy(6, 4, 1e3)) {
        let f = householder_qr(&a);
        let q = f.q_explicit();
        let r = f.r();
        let mut rfull = DenseMatrix::zeros(6, 4);
        for c in 0..4 {
            for row in 0..r.rows() {
                rfull[(row, c)] = r[(row, c)];
            }
        }
        let qa = q.matmul(&rfull);
        prop_assert!(qa.max_diff(&a) < 1e-9 * a.norm_fro().max(1.0));
        // Q orthogonal.
        let qtq = q.transpose().matmul(&q);
        prop_assert!(qtq.max_diff(&DenseMatrix::identity(6)) < 1e-10);
    }

    #[test]
    fn svd_reconstructs_and_orders(a in matrix_strategy(5, 3, 1e3)) {
        let s = jacobi_svd(&a).unwrap();
        let rec = s.reconstruct();
        prop_assert!(rec.max_diff(&a) < 1e-9 * a.norm_fro().max(1.0));
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // sigma_max <= ||A||_F always.
        prop_assert!(s.sigma_max() <= a.norm_fro() * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn truncated_svd_solution_norm_is_bounded(
        a in matrix_strategy(4, 4, 1e2),
        z in vec_strategy(4, 1e2),
    ) {
        let s = jacobi_svd(&a).unwrap();
        let tol = 1e-10;
        let y = s.solve_truncated(&z, tol);
        // ‖y‖ ≤ ‖z‖ / (smallest kept singular value).
        let cutoff = tol * s.sigma_max();
        let smin_kept = s.sigma.iter().copied().filter(|&v| v > cutoff).fold(f64::INFINITY, f64::min);
        if smin_kept.is_finite() && smin_kept > 0.0 {
            let bound = vector::nrm2(&z) / smin_kept;
            prop_assert!(vector::nrm2(&y) <= bound * (1.0 + 1e-9) + 1e-12);
        } else {
            // Entire spectrum truncated: minimum-norm solution is zero.
            prop_assert!(vector::nrm2(&y) == 0.0);
        }
    }

    #[test]
    fn back_substitution_solves_triangular_systems(
        diag in proptest::collection::vec(0.5f64..10.0, 5),
        upper in vec_strategy(10, 5.0),
        z in vec_strategy(5, 10.0),
    ) {
        let mut r = DenseMatrix::zeros(5, 5);
        let mut it = upper.into_iter();
        for i in 0..5 {
            r[(i, i)] = diag[i];
            for j in (i + 1)..5 {
                r[(i, j)] = it.next().unwrap_or(0.0);
            }
        }
        match solve_upper(&r, &z) {
            TriangularOutcome::Finite(y) => {
                let mut ry = vec![0.0; 5];
                r.matvec(&y, &mut ry);
                for i in 0..5 {
                    prop_assert!((ry[i] - z[i]).abs() < 1e-7 * vector::nrm2(&z).max(1.0));
                }
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn policies_agree_when_well_conditioned(
        diag in proptest::collection::vec(1.0f64..4.0, 4),
        z in vec_strategy(4, 10.0),
    ) {
        let mut r = DenseMatrix::identity(4);
        for i in 0..4 {
            r[(i, i)] = diag[i];
            if i + 1 < 4 {
                r[(i, i + 1)] = 0.25;
            }
        }
        let std = solve_projected(&r, &z, LstsqPolicy::Standard).unwrap();
        let rr = solve_projected(&r, &z, LstsqPolicy::RankRevealing { tol: 1e-13 }).unwrap();
        for i in 0..4 {
            prop_assert!((std.y[i] - rr.y[i]).abs() < 1e-8 * vector::nrm2(&z).max(1.0),
                         "std {:?} vs rr {:?}", std.y, rr.y);
        }
    }
}

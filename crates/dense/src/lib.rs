//! Dense linear-algebra substrate for the SDC-GMRES reproduction.
//!
//! This crate provides every dense kernel the solvers in `sdc-gmres` need,
//! implemented from scratch in safe Rust:
//!
//! * BLAS-1 style vector operations with **deterministic** reductions
//!   ([`vector`]): dot products and norms are computed with a fixed-shape
//!   pairwise tree so that results are bitwise reproducible regardless of
//!   thread count — a prerequisite for reproducible fault-injection
//!   campaigns.
//! * Column-major dense matrices ([`matrix`]).
//! * Givens rotations ([`givens`]) and Householder reflections
//!   ([`householder`]), the building blocks of the QR factorizations used by
//!   GMRES' projected least-squares problem.
//! * Triangular solves with non-finite detection ([`triangular`]) — the
//!   paper's "Approach 2" (fall back to a rank-revealing method when the
//!   standard solve produces `Inf`/`NaN`) needs to know *whether* the fast
//!   path failed.
//! * A one-sided Jacobi SVD ([`svd`]) used as the rank-revealing
//!   factorization, exactly as the paper substitutes an SVD for the
//!   incremental rank-revealing decomposition.
//! * The incremental Givens-QR of the upper Hessenberg matrix
//!   ([`hessenberg_qr`]) that lets GMRES update its least-squares solution
//!   in `O(k)` per iteration with an `O(1)` residual-norm recurrence.
//! * The three projected least-squares policies of §VI-D of the paper
//!   ([`lstsq`]).
//! * Cheap condition estimation for growing triangular factors
//!   ([`condest`]), implementing the `O(k²)` rank monitoring that gives
//!   FGMRES its "trichotomy" guarantee.
//!
//! The scalar type is `f64` throughout: the paper's SDC model is defined on
//! IEEE-754 binary64 data.

// Index-based loops intentionally mirror the paper's i/j/k matrix notation
// (e.g. Householder and back-substitution kernels); iterator rewrites would
// obscure the correspondence the reproduction is documenting.
#![allow(clippy::needless_range_loop)]

pub mod condest;
pub mod eigen;
pub mod givens;
pub mod hessenberg_qr;
pub mod householder;
pub mod lstsq;
pub mod matrix;
pub mod norms;
pub mod simd;
pub mod svd;
pub mod triangular;
pub mod vector;

pub use condest::{smallest_singular_estimate, ConditionReport};
pub use givens::GivensRotation;
pub use hessenberg_qr::HessenbergQr;
pub use householder::{householder_qr, HouseholderQr};
pub use lstsq::{LstsqOutcome, LstsqPolicy, LstsqReport};
pub use matrix::DenseMatrix;
pub use svd::{Svd, SvdError};

/// Machine epsilon for `f64`, re-exported for convenience.
pub const EPS: f64 = f64::EPSILON;

/// Returns true if every element of `xs` is finite (no `NaN`, no `±Inf`).
///
/// This is the cheap "reliable introspection" primitive used throughout the
/// solvers: IEEE-754 gives natural loud-error detection, and the paper's
/// Approach 2 is defined in terms of it.
#[inline]
pub fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_finite_accepts_normal_data() {
        assert!(all_finite(&[0.0, 1.0, -2.5, f64::MIN_POSITIVE, f64::MAX]));
    }

    #[test]
    fn all_finite_rejects_nan_and_inf() {
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(!all_finite(&[f64::NEG_INFINITY, 1.0]));
    }

    #[test]
    fn all_finite_on_empty_slice_is_true() {
        assert!(all_finite(&[]));
    }
}

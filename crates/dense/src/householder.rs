//! Householder reflections and dense QR factorization.
//!
//! The paper notes that Classical Gram-Schmidt or Householder
//! transformations may replace Modified Gram-Schmidt in the Arnoldi process
//! and that the Hessenberg bound is invariant to that choice. A dense
//! Householder QR is also the workhorse behind our reference least-squares
//! solutions in tests, where we validate the incremental Givens-QR path
//! against a from-scratch factorization.

use crate::matrix::DenseMatrix;
use crate::vector;

/// A dense QR factorization computed with Householder reflections.
///
/// The factors are stored LAPACK-style: the upper triangle of `qr` holds
/// `R`, the lower part holds the essential parts of the reflectors, and
/// `tau` holds the scalar coefficients.
#[derive(Clone, Debug)]
pub struct HouseholderQr {
    qr: DenseMatrix,
    tau: Vec<f64>,
}

/// Computes the QR factorization of `a` (`m × n`, any shape).
pub fn householder_qr(a: &DenseMatrix) -> HouseholderQr {
    let m = a.rows();
    let n = a.cols();
    let mut qr = a.clone();
    let k = m.min(n);
    let mut tau = vec![0.0; k];

    for j in 0..k {
        // Build the reflector from column j, rows j..m.
        let (t, beta) = {
            let col = &qr.col(j)[j..];
            let alpha = col[0];
            let xnorm = vector::nrm2(&col[1..]);
            if xnorm == 0.0 {
                (0.0, alpha)
            } else {
                let mut beta = -alpha.hypot(xnorm).copysign(alpha);
                if beta == 0.0 {
                    beta = -f64::MIN_POSITIVE;
                }
                let t = (beta - alpha) / beta;
                (t, beta)
            }
        };
        tau[j] = t;
        if t != 0.0 {
            // Normalize the reflector so v[0] = 1 (stored implicitly).
            let alpha = qr[(j, j)];
            let scale = 1.0 / (alpha - beta);
            for r in j + 1..m {
                qr[(r, j)] *= scale;
            }
            qr[(j, j)] = beta;
            // Apply (I - t v vᵀ) to the remaining columns.
            for c in j + 1..n {
                let mut dotv = qr[(j, c)];
                for r in j + 1..m {
                    dotv += qr[(r, j)] * qr[(r, c)];
                }
                let w = t * dotv;
                qr[(j, c)] -= w;
                for r in j + 1..m {
                    let vr = qr[(r, j)];
                    qr[(r, c)] -= w * vr;
                }
            }
        } else {
            qr[(j, j)] = beta;
        }
    }
    HouseholderQr { qr, tau }
}

impl HouseholderQr {
    /// The upper-triangular (or trapezoidal) factor `R` as a dense matrix.
    pub fn r(&self) -> DenseMatrix {
        let m = self.qr.rows();
        let n = self.qr.cols();
        let k = m.min(n);
        let mut r = DenseMatrix::zeros(k, n);
        for c in 0..n {
            for row in 0..=c.min(k - 1) {
                r[(row, c)] = self.qr[(row, c)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to a vector in place (length `m`).
    pub fn apply_qt(&self, x: &mut [f64]) {
        let m = self.qr.rows();
        assert_eq!(x.len(), m, "apply_qt: length mismatch");
        for j in 0..self.tau.len() {
            let t = self.tau[j];
            if t == 0.0 {
                continue;
            }
            let mut dotv = x[j];
            for r in j + 1..m {
                dotv += self.qr[(r, j)] * x[r];
            }
            let w = t * dotv;
            x[j] -= w;
            for r in j + 1..m {
                x[r] -= w * self.qr[(r, j)];
            }
        }
    }

    /// Applies `Q` to a vector in place (length `m`).
    pub fn apply_q(&self, x: &mut [f64]) {
        let m = self.qr.rows();
        assert_eq!(x.len(), m, "apply_q: length mismatch");
        for j in (0..self.tau.len()).rev() {
            let t = self.tau[j];
            if t == 0.0 {
                continue;
            }
            let mut dotv = x[j];
            for r in j + 1..m {
                dotv += self.qr[(r, j)] * x[r];
            }
            let w = t * dotv;
            x[j] -= w;
            for r in j + 1..m {
                x[r] -= w * self.qr[(r, j)];
            }
        }
    }

    /// Least-squares solve `min ‖A y − b‖₂` for full-column-rank `A`
    /// (`m ≥ n`). Returns `None` if a diagonal of `R` is exactly zero.
    pub fn solve_lstsq(&self, b: &[f64]) -> Option<Vec<f64>> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        assert!(m >= n, "solve_lstsq requires m >= n");
        assert_eq!(b.len(), m);
        let mut c = b.to_vec();
        self.apply_qt(&mut c);
        let mut y = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = c[i];
            for j in i + 1..n {
                s -= self.qr[(i, j)] * y[j];
            }
            let d = self.qr[(i, i)];
            if d == 0.0 {
                return None;
            }
            y[i] = s / d;
        }
        Some(y)
    }

    /// Reconstructs the explicit `m × m` orthogonal factor `Q` (test use).
    pub fn q_explicit(&self) -> DenseMatrix {
        let m = self.qr.rows();
        let mut q = DenseMatrix::identity(m);
        for c in 0..m {
            let mut col = q.col(c).to_vec();
            self.apply_q(&mut col);
            q.col_mut(c).copy_from_slice(&col);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(a: &DenseMatrix) -> DenseMatrix {
        let f = householder_qr(a);
        let q = f.q_explicit();
        let r = f.r();
        // Pad R to m x n for the product when m > n.
        let m = a.rows();
        let n = a.cols();
        let mut rfull = DenseMatrix::zeros(m, n);
        for c in 0..n {
            for row in 0..r.rows() {
                rfull[(row, c)] = r[(row, c)];
            }
        }
        q.matmul(&rfull)
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let qa = reconstruct(&a);
        assert!(qa.max_diff(&a) < 1e-13);
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let qa = reconstruct(&a);
        assert!(qa.max_diff(&a) < 1e-13);
    }

    #[test]
    fn q_is_orthogonal() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 3.0, 1.0], &[1.0, 1.0, 1.0]]);
        let f = householder_qr(&a);
        let q = f.q_explicit();
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.max_diff(&DenseMatrix::identity(3)) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 5.0, 9.0], &[2.0, 6.0, 10.0], &[3.0, 7.0, 11.0]]);
        let r = householder_qr(&a).r();
        for c in 0..3 {
            for row in c + 1..3 {
                assert!(r[(row, c)].abs() < 1e-13);
            }
        }
    }

    #[test]
    fn lstsq_exact_system() {
        // A y = b with known solution.
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
        let b = [4.0, 9.0, 0.0];
        let y = householder_qr(&a).solve_lstsq(&b).unwrap();
        assert!((y[0] - 2.0).abs() < 1e-14);
        assert!((y[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn lstsq_overdetermined_residual_is_orthogonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
        let b = [6.0, 5.0, 7.0, 10.0];
        let y = householder_qr(&a).solve_lstsq(&b).unwrap();
        // Residual r = b - A y must be orthogonal to the columns of A.
        let mut ay = vec![0.0; 4];
        a.matvec(&y, &mut ay);
        let r: Vec<f64> = b.iter().zip(ay.iter()).map(|(bi, ai)| bi - ai).collect();
        for c in 0..2 {
            let d = vector::dot(a.col(c), &r);
            assert!(d.abs() < 1e-12, "residual not orthogonal: {d}");
        }
    }

    #[test]
    fn lstsq_detects_exact_singularity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 1.0, 1.0];
        assert!(householder_qr(&a).solve_lstsq(&b).is_none());
    }

    #[test]
    fn zero_matrix_qr() {
        let a = DenseMatrix::zeros(3, 2);
        let f = householder_qr(&a);
        let r = f.r();
        assert!(r.norm_fro() == 0.0);
    }
}

//! Dense matrix operator norms.
//!
//! The detector bound (Eq. 3 of the paper) is stated in terms of `‖A‖₂` and
//! `‖A‖_F`. For the *small dense* matrices handled by this crate (the upper
//! Hessenberg matrix and its factors) we provide the exact 1-, ∞- and
//! Frobenius norms, plus a 2-norm computed from the Jacobi SVD and a cheap
//! power-iteration estimate for comparison.

use crate::matrix::DenseMatrix;
use crate::svd::jacobi_svd;
use crate::vector;

/// Maximum absolute column sum (`‖A‖₁`).
pub fn norm1(a: &DenseMatrix) -> f64 {
    (0..a.cols()).map(|c| vector::norm1(a.col(c))).fold(0.0, f64::max)
}

/// Maximum absolute row sum (`‖A‖_∞`).
pub fn norm_inf(a: &DenseMatrix) -> f64 {
    let mut best = 0.0_f64;
    for r in 0..a.rows() {
        let mut s = 0.0;
        for c in 0..a.cols() {
            s += a[(r, c)].abs();
        }
        best = best.max(s);
    }
    best
}

/// Frobenius norm.
pub fn norm_fro(a: &DenseMatrix) -> f64 {
    a.norm_fro()
}

/// Exact spectral norm via the Jacobi SVD (intended for small matrices).
pub fn norm2_exact(a: &DenseMatrix) -> f64 {
    if a.rows() == 0 || a.cols() == 0 {
        return 0.0;
    }
    jacobi_svd(a).map(|s| s.sigma_max()).unwrap_or(f64::NAN)
}

/// Power-iteration estimate of `‖A‖₂` (a lower bound converging to the
/// true value). `iters` steps of the iteration `x ← AᵀA x / ‖AᵀA x‖`.
pub fn norm2_power_estimate(a: &DenseMatrix, iters: usize) -> f64 {
    let n = a.cols();
    let m = a.rows();
    if n == 0 || m == 0 {
        return 0.0;
    }
    // Deterministic pseudo-random start vector.
    let mut x: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.0) * 0.7391).sin() + 0.5).collect();
    vector::normalize(&mut x);
    let mut ax = vec![0.0; m];
    let mut atax = vec![0.0; n];
    let mut est = 0.0;
    for _ in 0..iters {
        a.matvec(&x, &mut ax);
        est = vector::nrm2(&ax);
        if est == 0.0 {
            return 0.0;
        }
        a.matvec_t(&ax, &mut atax);
        x.copy_from_slice(&atax);
        if vector::normalize(&mut x) == 0.0 {
            return est;
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert_eq!(norm1(&a), 4.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert!((norm_fro(&a) - 5.0).abs() < 1e-14);
        assert!((norm2_exact(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn norm2_between_bounds() {
        // ‖A‖₂ ≤ ‖A‖_F and ‖A‖₂² ≤ ‖A‖₁·‖A‖_∞ for any matrix.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 0.0], &[-1.0, 3.0, 4.0], &[0.5, 0.0, 2.0]]);
        let n2 = norm2_exact(&a);
        assert!(n2 <= norm_fro(&a) + 1e-12);
        assert!(n2 * n2 <= norm1(&a) * norm_inf(&a) + 1e-10);
    }

    #[test]
    fn power_estimate_converges_from_below() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 1.0]]);
        let exact = norm2_exact(&a);
        let est = norm2_power_estimate(&a, 200);
        assert!(est <= exact + 1e-10);
        assert!((est - exact).abs() < 1e-6, "est={est} exact={exact}");
    }

    #[test]
    fn empty_matrix_norms_are_zero() {
        let a = DenseMatrix::zeros(0, 0);
        assert_eq!(norm2_exact(&a), 0.0);
        assert_eq!(norm2_power_estimate(&a, 10), 0.0);
    }
}

//! BLAS-1 style vector kernels with deterministic reductions.
//!
//! GMRES spends its orthogonalization phase in dot products and AXPYs
//! (Algorithm 1, lines 5–8 of the paper). Two requirements shape this
//! module:
//!
//! 1. **Determinism.** A fault-injection campaign replays the same solve
//!    thousands of times with a single value perturbed; any run-to-run
//!    nondeterminism in the *fault-free* arithmetic would pollute the
//!    comparison. Every reduction here goes through the workspace's one
//!    deterministic primitive, [`sdc_parallel::det_map_sum`]: a
//!    fixed-block pairwise tree whose shape depends only on the input
//!    length — never on thread count — so serial and parallel execution
//!    produce bitwise-identical results. This module contributes only
//!    the sequential *leaf kernels* (which the compiler vectorizes).
//! 2. **Accuracy.** Pairwise summation has an error bound of
//!    `O(log n · eps)` versus `O(n · eps)` for recursive summation, which
//!    keeps the orthogonality loss of Modified Gram-Schmidt close to the
//!    theoretical bound and the detector free of arithmetic-noise false
//!    positives.

use rayon::prelude::*;
use sdc_parallel::{det_map_sum, PAIRWISE_BASE, PAR_MIN};

/// Pairwise sum of a slice with a fixed-shape reduction tree.
#[inline]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    sdc_parallel::pairwise_sum(xs)
}

/// Dot product `xᵀy` with the canonical deterministic reduction:
/// [`sdc_parallel::BLOCK`]-sized blocks, each reduced with a pairwise
/// tree, the partials combined with another pairwise tree. Large inputs
/// evaluate their blocks over the thread pool; the shape — hence the
/// bits — is identical at every thread count.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    det_map_sum(x.len(), &|r| dot_rec(&x[r.clone()], &y[r]))
}

fn dot_rec(x: &[f64], y: &[f64]) -> f64 {
    if x.len() <= PAIRWISE_BASE {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        acc
    } else {
        // Lane-parallel body for one 4-leaf subtree: four base-64 chains
        // run in four AVX2 lanes with the identical per-leaf op sequence
        // and the identical `(s0+s1)+(s2+s3)` combine, so the reduction
        // stays bitwise-pinned to the scalar tree (see `crate::simd`).
        if x.len() == 4 * PAIRWISE_BASE {
            if let Some(v) = crate::simd::dot256(x, y) {
                return v;
            }
        }
        let mid = x.len() / 2;
        dot_rec(&x[..mid], &y[..mid]) + dot_rec(&x[mid..], &y[mid..])
    }
}

/// Parallel dot product — an alias for [`dot`], which already runs its
/// blocks concurrently when the input is large enough to pay for it.
/// Kept for call sites that want to document intent.
#[inline]
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    dot(x, y)
}

/// `y ← a·x + y`. Bitwise identical across the scalar and SIMD bodies:
/// both compute `y[i] + a * x[i]` with separate multiply and add.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if crate::simd::axpy4(a, x, y).is_some() {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// Parallel `y ← a·x + y`; element-wise, hence trivially deterministic.
pub fn par_axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "par_axpy: length mismatch");
    if x.len() < PAR_MIN {
        return axpy(a, x, y);
    }
    y.par_chunks_mut(sdc_parallel::BLOCK)
        .zip(x.par_chunks(sdc_parallel::BLOCK))
        .for_each(|(cy, cx)| axpy(a, cx, cy));
}

/// `x ← a·x`. Bitwise identical across the scalar and SIMD bodies.
#[inline]
pub fn scal(a: f64, x: &mut [f64]) {
    if crate::simd::scal4(a, x).is_some() {
        return;
    }
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `y ← x`.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// `z ← x - y`.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

/// Euclidean norm with overflow/underflow-safe two-pass scaling and a
/// deterministic pairwise accumulation.
pub fn nrm2(x: &[f64]) -> f64 {
    let maxabs = x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if maxabs == 0.0 {
        return 0.0;
    }
    if !maxabs.is_finite() {
        return f64::INFINITY;
    }
    // Scale so the largest element is 1; the sum of squares then cannot
    // overflow for any realistic length.
    let inv = 1.0 / maxabs;
    let ss = det_map_sum(x.len(), &|r| sum_sq_scaled(&x[r], inv));
    maxabs * ss.sqrt()
}

fn sum_sq_scaled(x: &[f64], inv: f64) -> f64 {
    if x.len() <= PAIRWISE_BASE {
        let mut acc = 0.0;
        for &v in x {
            let s = v * inv;
            acc += s * s;
        }
        acc
    } else {
        let mid = x.len() / 2;
        sum_sq_scaled(&x[..mid], inv) + sum_sq_scaled(&x[mid..], inv)
    }
}

/// Infinity norm `max |x_i|`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// One norm `Σ |x_i|`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v.abs();
    }
    acc
}

/// Normalizes `x` in place and returns its original 2-norm. If the norm is
/// zero (or not finite) the vector is left untouched and the norm returned
/// as-is, letting the caller decide how to handle breakdown.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = nrm2(x);
    if n > 0.0 && n.is_finite() {
        scal(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() + 0.01 * i as f64).collect()
    }

    #[test]
    fn dot_matches_naive_small() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn par_dot_bitwise_matches_serial() {
        for n in [0, 1, 63, 64, 65, 1000, 8192, 8193, 70_000] {
            let x = seq(n);
            let y: Vec<f64> = x.iter().map(|v| v * 1.3 - 0.2).collect();
            let s = dot(&x, &y);
            let p = par_dot(&x, &y);
            assert_eq!(s.to_bits(), p.to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot_bitwise_independent_of_thread_count() {
        let _guard = sdc_parallel::test_serial_guard();
        let n = 200_000; // well past PAR_MIN: the pool path runs
        let x = seq(n);
        let y: Vec<f64> = x.iter().map(|v| v * 0.9 + 0.1).collect();
        let mut bits = Vec::new();
        for t in [1, 2, 8] {
            sdc_parallel::set_threads(t);
            bits.push(dot(&x, &y).to_bits());
        }
        sdc_parallel::set_threads(0);
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:x?}");
    }

    #[test]
    fn nrm2_bitwise_independent_of_thread_count() {
        let _guard = sdc_parallel::test_serial_guard();
        let x = seq(150_000);
        let mut bits = Vec::new();
        for t in [1, 2, 8] {
            sdc_parallel::set_threads(t);
            bits.push(nrm2(&x).to_bits());
        }
        sdc_parallel::set_threads(0);
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:x?}");
    }

    #[test]
    fn par_axpy_matches_serial() {
        let n = 70_000;
        let x = seq(n);
        let mut y1 = seq(n);
        let mut y2 = y1.clone();
        axpy(0.75, &x, &mut y1);
        par_axpy(0.75, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn kernels_bitwise_invariant_across_simd_modes() {
        use crate::simd::{set_mode, SimdMode};
        let _guard = crate::simd::test_mode_guard();
        for n in [0, 1, 63, 255, 256, 257, 8192, 70_000] {
            let x = seq(n);
            let y0: Vec<f64> = x.iter().map(|v| v * 1.3 - 0.2).collect();
            set_mode(SimdMode::Scalar).unwrap();
            let d_scalar = dot(&x, &y0);
            let mut ax_scalar = y0.clone();
            axpy(0.3, &x, &mut ax_scalar);
            let mut sc_scalar = x.clone();
            scal(-1.7, &mut sc_scalar);
            if set_mode(SimdMode::Avx2).is_err() {
                return; // no AVX2 on this host; nothing to compare.
            }
            assert_eq!(d_scalar.to_bits(), dot(&x, &y0).to_bits(), "dot n={n}");
            let mut ax_simd = y0.clone();
            axpy(0.3, &x, &mut ax_simd);
            let mut sc_simd = x.clone();
            scal(-1.7, &mut sc_simd);
            for i in 0..n {
                assert_eq!(ax_scalar[i].to_bits(), ax_simd[i].to_bits(), "axpy n={n} i={i}");
                assert_eq!(sc_scalar[i].to_bits(), sc_simd[i].to_bits(), "scal n={n} i={i}");
            }
        }
    }

    #[test]
    fn nrm2_is_scale_safe() {
        // Would overflow with naive sum of squares.
        let x = [1e200, 1e200];
        let n = nrm2(&x);
        assert!((n - 2f64.sqrt() * 1e200).abs() / n < 1e-15);
        // Would underflow to zero with naive sum of squares.
        let y = [1e-200, 1e-200];
        let n = nrm2(&y);
        assert!((n - 2f64.sqrt() * 1e-200).abs() / n < 1e-15);
    }

    #[test]
    fn nrm2_zero_vector() {
        assert_eq!(nrm2(&[0.0; 10]), 0.0);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn nrm2_propagates_inf() {
        assert!(nrm2(&[1.0, f64::INFINITY]).is_infinite());
        // NaN input: maxabs treats NaN as skipped by max; nrm2 of [NaN] is
        // then driven by the scaled sum, which is NaN (not finite) — accept
        // any non-finite result.
        assert!(!nrm2(&[f64::NAN, 1.0]).is_finite() || nrm2(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn normalize_unit_length() {
        let mut x = seq(257);
        let n0 = nrm2(&x);
        let returned = normalize(&mut x);
        assert_eq!(returned, n0);
        assert!((nrm2(&x) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0; 5];
        let n = normalize(&mut x);
        assert_eq!(n, 0.0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pairwise_sum_accuracy_vs_naive() {
        // Classic pathological case: many small values after a large one.
        let mut xs = vec![1.0_f64];
        xs.extend(std::iter::repeat(1e-16).take(100_000));
        let pw = pairwise_sum(&xs);
        let expected = 1.0 + 1e-16 * 100_000.0;
        assert!((pw - expected).abs() < 1e-12, "pairwise sum lost too much");
    }

    #[test]
    fn sub_and_axpy_and_scal() {
        let x = [1.0, 2.0];
        let y = [0.5, 1.0];
        let mut z = [0.0; 2];
        sub(&x, &y, &mut z);
        assert_eq!(z, [0.5, 1.0]);
        let mut w = [1.0, 1.0];
        axpy(2.0, &x, &mut w);
        assert_eq!(w, [3.0, 5.0]);
        scal(0.5, &mut w);
        assert_eq!(w, [1.5, 2.5]);
    }

    #[test]
    fn norm1_and_norm_inf() {
        let x = [3.0, -4.0, 1.0];
        assert_eq!(norm1(&x), 8.0);
        assert_eq!(norm_inf(&x), 4.0);
    }
}

//! Incremental Givens-QR factorization of the GMRES upper Hessenberg matrix.
//!
//! At iteration `k` GMRES must solve the projected least-squares problem
//! (Eq. 4 of the paper):
//!
//! ```text
//! min_y ‖ H_k y − β e₁ ‖₂ ,     H_k ∈ ℝ^{(k+1)×k} upper Hessenberg.
//! ```
//!
//! Saad & Schultz's structured QR keeps one Givens rotation per column; each
//! new Hessenberg column is reduced by the stored rotations plus one new
//! rotation, the rotated right-hand side `g = Ω β e₁` is updated in `O(1)`,
//! and `|g[k]|` *is* the current residual norm — GMRES gets its famous free
//! residual recurrence. Total cost per iteration: `O(k)` instead of `O(k³)`.
//!
//! The triangular factor is retained explicitly so the §VI-D least-squares
//! policies (standard / fallback / rank-revealing) can operate on
//! `R y = g[0..k]` directly.

use crate::givens::GivensRotation;
use crate::matrix::DenseMatrix;

/// Incremental QR of a growing `(k+1) × k` upper Hessenberg matrix.
#[derive(Clone, Debug)]
pub struct HessenbergQr {
    /// Columns of the upper-triangular factor; `r_cols[j]` has `j+1` entries.
    r_cols: Vec<Vec<f64>>,
    /// One rotation per processed column.
    rotations: Vec<GivensRotation>,
    /// Rotated right-hand side; length `k+1`. `g[k]` is the signed residual.
    g: Vec<f64>,
    /// Initial residual norm β (the problem's right-hand side is `β e₁`).
    beta: f64,
}

impl HessenbergQr {
    /// Starts a factorization for the right-hand side `β e₁`.
    pub fn new(beta: f64) -> Self {
        Self { r_cols: Vec::new(), rotations: Vec::new(), g: vec![beta], beta }
    }

    /// Number of columns processed so far.
    #[inline]
    pub fn k(&self) -> usize {
        self.r_cols.len()
    }

    /// The initial residual norm β.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Appends Hessenberg column `j = k()` and returns the new least-squares
    /// residual norm `|g[k+1]|`.
    ///
    /// `h` must contain the `j+2` entries `h[0..=j+1]` of the new column
    /// (the final entry is the subdiagonal `h_{j+2,j+1}` in 1-based paper
    /// notation).
    pub fn push_column(&mut self, h: &[f64]) -> f64 {
        let j = self.k();
        assert_eq!(h.len(), j + 2, "push_column: column {j} must have {} entries", j + 2);
        let mut col = h.to_vec();
        // Apply the stored rotations to the new column.
        for (i, rot) in self.rotations.iter().enumerate() {
            rot.apply_to_column(&mut col, i);
        }
        // New rotation annihilates the subdiagonal entry.
        let rot = GivensRotation::compute(col[j], col[j + 1]);
        col[j] = rot.r;
        col.truncate(j + 1);
        self.rotations.push(rot);
        self.r_cols.push(col);
        // Update the rotated RHS: g grows by one (zero), rotated in rows (j, j+1).
        self.g.push(0.0);
        let (a, b) = rot.apply(self.g[j], self.g[j + 1]);
        self.g[j] = a;
        self.g[j + 1] = b;
        self.residual_norm()
    }

    /// The current least-squares residual norm `|g[k]|` — in exact
    /// arithmetic this equals `‖b − A x_k‖₂` for GMRES.
    #[inline]
    pub fn residual_norm(&self) -> f64 {
        self.g[self.k()].abs()
    }

    /// Diagonal entry `R[i,i]` of the triangular factor.
    #[inline]
    pub fn r_diag(&self, i: usize) -> f64 {
        self.r_cols[i][i]
    }

    /// The `k × k` upper-triangular factor as a dense matrix.
    pub fn r_matrix(&self) -> DenseMatrix {
        let k = self.k();
        let mut r = DenseMatrix::zeros(k, k);
        for (j, col) in self.r_cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                r[(i, j)] = v;
            }
        }
        r
    }

    /// The leading `k` entries of the rotated right-hand side (the `z` of
    /// `R y = z`).
    pub fn rhs(&self) -> &[f64] {
        &self.g[..self.k()]
    }

    /// Full rotated right-hand side including the residual entry.
    pub fn g_full(&self) -> &[f64] {
        &self.g
    }

    /// True if all stored factors are finite — corrupted Hessenberg entries
    /// (e.g. a class-1 SDC of magnitude 1e150 followed by overflow) surface
    /// here.
    pub fn all_finite(&self) -> bool {
        self.g.iter().all(|x| x.is_finite())
            && self.r_cols.iter().all(|c| c.iter().all(|x| x.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::householder_qr;
    use crate::triangular::solve_upper;

    /// Builds the dense (k+1) x k Hessenberg from explicit columns.
    fn dense_hessenberg(cols: &[Vec<f64>]) -> DenseMatrix {
        let k = cols.len();
        let mut h = DenseMatrix::zeros(k + 1, k);
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                h[(i, j)] = v;
            }
        }
        h
    }

    fn hess_columns() -> Vec<Vec<f64>> {
        vec![
            vec![2.0, 1.0],
            vec![0.5, 3.0, 0.7],
            vec![-1.0, 0.25, 2.0, 0.3],
            vec![0.1, -0.5, 1.0, 1.5, 0.9],
        ]
    }

    #[test]
    fn residual_matches_reference_lstsq() {
        let cols = hess_columns();
        let beta = 1.7;
        let mut qr = HessenbergQr::new(beta);
        for (j, col) in cols.iter().enumerate() {
            let res = qr.push_column(col);
            // Reference: dense Householder least squares on H(1:j+2, 1:j+1).
            let h = dense_hessenberg(&cols[..=j]);
            let mut b = vec![0.0; j + 2];
            b[0] = beta;
            let y = householder_qr(&h).solve_lstsq(&b).unwrap();
            let mut hy = vec![0.0; j + 2];
            h.matvec(&y, &mut hy);
            let ref_res = crate::vector::nrm2(
                &b.iter().zip(hy.iter()).map(|(a, c)| a - c).collect::<Vec<_>>(),
            );
            assert!(
                (res - ref_res).abs() < 1e-12 * ref_res.max(1.0),
                "iteration {j}: incremental {res} vs reference {ref_res}"
            );
        }
    }

    #[test]
    fn solution_matches_reference_lstsq() {
        let cols = hess_columns();
        let beta = 0.9;
        let mut qr = HessenbergQr::new(beta);
        for col in &cols {
            qr.push_column(col);
        }
        let y = solve_upper(&qr.r_matrix(), qr.rhs()).unwrap_finite();
        let h = dense_hessenberg(&cols);
        let mut b = vec![0.0; cols.len() + 1];
        b[0] = beta;
        let yref = householder_qr(&h).solve_lstsq(&b).unwrap();
        for i in 0..y.len() {
            assert!((y[i] - yref[i]).abs() < 1e-12, "{y:?} vs {yref:?}");
        }
    }

    #[test]
    fn residual_is_monotone_nonincreasing() {
        // GMRES' hallmark property, inherited by the QR recurrence.
        let cols = hess_columns();
        let mut qr = HessenbergQr::new(2.0);
        let mut prev = 2.0;
        for col in &cols {
            let res = qr.push_column(col);
            assert!(res <= prev + 1e-15, "residual increased: {res} > {prev}");
            prev = res;
        }
    }

    #[test]
    fn exact_solve_drives_residual_to_zero() {
        // If the subdiagonal entry is zero, the space is invariant and the
        // residual must vanish ("happy breakdown").
        let mut qr = HessenbergQr::new(1.0);
        qr.push_column(&[2.0, 1.0]);
        let res = qr.push_column(&[1.0, 1.0, 0.0]);
        assert!(res < 1e-15);
    }

    #[test]
    fn r_is_upper_triangular_by_construction() {
        let cols = hess_columns();
        let mut qr = HessenbergQr::new(1.0);
        for col in &cols {
            qr.push_column(col);
        }
        let r = qr.r_matrix();
        for j in 0..r.cols() {
            for i in j + 1..r.rows() {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        assert_eq!(qr.k(), 4);
        assert_eq!(qr.rhs().len(), 4);
    }

    #[test]
    fn huge_fault_entry_keeps_factorization_finite() {
        // Class-1 SDC: an h entry scaled by 1e150 flows through the
        // rotations without overflow (rotations are norm-preserving).
        let mut qr = HessenbergQr::new(1.0);
        qr.push_column(&[1e150, 1.0]);
        let res = qr.push_column(&[0.5, 2.0, 0.25]);
        assert!(qr.all_finite());
        assert!(res.is_finite());
    }

    #[test]
    fn nan_fault_is_visible_via_all_finite() {
        let mut qr = HessenbergQr::new(1.0);
        qr.push_column(&[f64::NAN, 1.0]);
        assert!(!qr.all_finite());
    }

    #[test]
    fn beta_zero_residual_zero() {
        let mut qr = HessenbergQr::new(0.0);
        let res = qr.push_column(&[1.0, 0.5]);
        assert_eq!(res, 0.0);
    }
}

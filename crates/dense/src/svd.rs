//! One-sided Jacobi singular value decomposition.
//!
//! The paper (§VI-D) uses "a singular-value decomposition as the
//! rank-revealing factorization, as an easier to implement and no more
//! accurate substitute" for an incrementally-updated rank-revealing
//! decomposition. We follow suit: the one-sided Jacobi method is compact,
//! numerically excellent (high relative accuracy for small singular
//! values — exactly what rank detection needs), and entirely adequate for
//! the small `(k+1) × k` Hessenberg factors GMRES produces.
//!
//! The algorithm orthogonalizes pairs of columns of `A` by plane rotations
//! until all pairs are numerically orthogonal; then `σᵢ = ‖aᵢ‖₂`,
//! `uᵢ = aᵢ/σᵢ`, and the accumulated rotations form `V`.

use crate::matrix::DenseMatrix;
use crate::vector;

/// Error conditions for the SVD routine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvdError {
    /// The input contained NaN or ±Inf; Jacobi rotations cannot converge.
    NonFiniteInput,
    /// The sweep limit was reached before convergence (should not happen
    /// for finite input; reported rather than looping forever).
    NoConvergence,
}

/// The thin SVD `A = U Σ Vᵀ` of an `m × n` matrix with `m ≥ n`
/// (for `m < n` the factorization is computed on `Aᵀ` and swapped).
#[derive(Clone, Debug)]
pub struct Svd {
    /// `m × n` matrix with orthonormal columns.
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// `n × n` orthogonal matrix.
    pub v: DenseMatrix,
}

impl Svd {
    /// Largest singular value (0 for an empty matrix).
    pub fn sigma_max(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Smallest singular value (0 for an empty matrix).
    pub fn sigma_min(&self) -> f64 {
        self.sigma.last().copied().unwrap_or(0.0)
    }

    /// Numerical rank with relative tolerance `tol`: the number of
    /// singular values `> tol · σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let cutoff = tol * self.sigma_max();
        self.sigma.iter().filter(|&&s| s > cutoff).count()
    }

    /// 2-norm condition number `σ_max / σ_min` (∞ if rank-deficient).
    pub fn cond2(&self) -> f64 {
        let smin = self.sigma_min();
        if smin == 0.0 {
            f64::INFINITY
        } else {
            self.sigma_max() / smin
        }
    }

    /// Minimum-norm least-squares solution of `min ‖A y − b‖₂` using the
    /// truncated pseudoinverse: singular values `≤ tol·σ_max` are dropped.
    ///
    /// This is the paper's regularization policy: the solution norm is
    /// bounded by `‖b‖ · σ_max / σ_trunc_min`, no matter how singular the
    /// (possibly corrupted) matrix became.
    pub fn solve_truncated(&self, b: &[f64], tol: f64) -> Vec<f64> {
        let m = self.u.rows();
        let n = self.v.rows();
        assert_eq!(b.len(), m, "solve_truncated: rhs length");
        let cutoff = tol * self.sigma_max();
        let mut y = vec![0.0; n];
        for (i, &s) in self.sigma.iter().enumerate() {
            if s > cutoff && s > 0.0 {
                let c = vector::dot(self.u.col(i), b) / s;
                vector::axpy(c, self.v.col(i), &mut y);
            }
        }
        y
    }

    /// Reconstructs `U Σ Vᵀ` (test utility).
    pub fn reconstruct(&self) -> DenseMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut us = DenseMatrix::zeros(m, self.sigma.len());
        for (i, &s) in self.sigma.iter().enumerate() {
            let src = self.u.col(i);
            let dst = us.col_mut(i);
            for r in 0..m {
                dst[r] = src[r] * s;
            }
        }
        let vt = self.v.transpose();
        let vt_lead = vt.leading(self.sigma.len(), n);
        us.matmul(&vt_lead)
    }
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` by one-sided Jacobi rotations.
pub fn jacobi_svd(a: &DenseMatrix) -> Result<Svd, SvdError> {
    if !a.all_finite() {
        return Err(SvdError::NonFiniteInput);
    }
    if a.rows() >= a.cols() {
        jacobi_svd_tall(a)
    } else {
        // Work on the transpose and swap factors: A = U Σ Vᵀ ⇔ Aᵀ = V Σ Uᵀ.
        let at = a.transpose();
        let s = jacobi_svd_tall(&at)?;
        Ok(Svd { u: s.v, sigma: s.sigma, v: s.u })
    }
}

fn jacobi_svd_tall(a: &DenseMatrix) -> Result<Svd, SvdError> {
    let m = a.rows();
    let n = a.cols();
    if n == 0 {
        return Ok(Svd { u: DenseMatrix::zeros(m, 0), sigma: vec![], v: DenseMatrix::zeros(0, 0) });
    }

    // Pre-scale to avoid overflow when columns hold fault-scaled (1e150+)
    // entries: Jacobi needs dot products of columns, whose squares would
    // overflow. The scale is a power of two, so it is exact.
    let maxabs = a.norm_max();
    let scale = if maxabs > 1e100 {
        let ex = maxabs.log2().ceil();
        (2.0_f64).powi(-(ex as i32))
    } else if maxabs > 0.0 && maxabs < 1e-100 {
        let ex = maxabs.log2().floor();
        (2.0_f64).powi(-(ex as i32))
    } else {
        1.0
    };

    let mut w = a.clone();
    if scale != 1.0 {
        for c in 0..n {
            vector::scal(scale, w.col_mut(c));
        }
    }
    let mut v = DenseMatrix::identity(n);

    let eps = f64::EPSILON;
    let tol = (m as f64).sqrt() * eps;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the column pair.
                let (app, aqq, apq) = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    (vector::dot(cp, cp), vector::dot(cq, cq), vector::dot(cp, cq))
                };
                if app == 0.0 && aqq == 0.0 {
                    continue;
                }
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                if apq.abs() <= tol * denom || denom == 0.0 {
                    continue;
                }
                // Two-sided rotation angle for the 2x2 Gram block.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of W and V.
                rotate_cols(&mut w, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        if off <= tol {
            converged = true;
            break;
        }
    }
    if !converged {
        // One last orthogonality audit: accept if every pair is orthogonal
        // to a slightly looser tolerance, otherwise report.
        let mut worst = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let cp = w.col(p);
                let cq = w.col(q);
                let denom = (vector::dot(cp, cp) * vector::dot(cq, cq)).sqrt();
                if denom > 0.0 {
                    worst = worst.max(vector::dot(cp, cq).abs() / denom);
                }
            }
        }
        if worst > 1e3 * tol {
            return Err(SvdError::NoConvergence);
        }
    }

    // Extract singular values and left vectors.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|c| vector::nrm2(w.col(c))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(m, n);
    let mut vv = DenseMatrix::zeros(n, n);
    let mut sigma = vec![0.0; n];
    let inv_scale = 1.0 / scale;
    for (k, &c) in order.iter().enumerate() {
        sigma[k] = norms[c] * inv_scale;
        let src = w.col(c);
        let dst = u.col_mut(k);
        if norms[c] > 0.0 {
            let inv = 1.0 / norms[c];
            for r in 0..m {
                dst[r] = src[r] * inv;
            }
        } else {
            // Zero column: leave U column zero (still a valid thin SVD for
            // rank-deficient input as long as sigma is 0).
        }
        vv.col_mut(k).copy_from_slice(v.col(c));
    }

    Ok(Svd { u, sigma, v: vv })
}

#[inline]
fn rotate_cols(m: &mut DenseMatrix, p: usize, q: usize, c: f64, s: f64) {
    let rows = m.rows();
    // Split borrow: p < q always.
    debug_assert!(p < q);
    for r in 0..rows {
        let vp = m[(r, p)];
        let vq = m[(r, q)];
        m[(r, p)] = c * vp - s * vq;
        m[(r, q)] = s * vp + c * vq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_svd_valid(a: &DenseMatrix, tol: f64) -> Svd {
        let s = jacobi_svd(a).expect("svd failed");
        // Reconstruction.
        let rec = s.reconstruct();
        let scale = a.norm_fro().max(1.0);
        assert!(
            rec.max_diff(a) < tol * scale,
            "reconstruction error {} vs tol {}",
            rec.max_diff(a),
            tol * scale
        );
        // Descending order.
        for wpair in s.sigma.windows(2) {
            assert!(wpair[0] >= wpair[1] - 1e-300, "sigma not sorted: {:?}", s.sigma);
        }
        // Nonnegative.
        assert!(s.sigma.iter().all(|&x| x >= 0.0));
        s
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        let s = assert_svd_valid(&a, 1e-13);
        assert!((s.sigma[0] - 7.0).abs() < 1e-12);
        assert!((s.sigma[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_rank_one() {
        // Outer product has rank 1 with sigma = ‖u‖‖v‖.
        let a = DenseMatrix::from_rows(&[&[2.0, 4.0], &[1.0, 2.0], &[3.0, 6.0]]);
        let s = assert_svd_valid(&a, 1e-12);
        assert!(s.sigma[1] < 1e-12 * s.sigma[0]);
        assert_eq!(s.rank(1e-10), 1);
        assert_eq!(s.cond2(), f64::INFINITY);
    }

    #[test]
    fn tall_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.5], &[-2.0, 1.0], &[0.0, 3.0], &[4.0, -1.0]]);
        let s = assert_svd_valid(&a, 1e-12);
        // U has orthonormal columns.
        let utu = s.u.transpose().matmul(&s.u);
        assert!(utu.max_diff(&DenseMatrix::identity(2)) < 1e-12);
        // V orthogonal.
        let vtv = s.v.transpose().matmul(&s.v);
        assert!(vtv.max_diff(&DenseMatrix::identity(2)) < 1e-12);
    }

    #[test]
    fn wide_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = assert_svd_valid(&a, 1e-12);
        assert_eq!(s.u.rows(), 2);
        assert_eq!(s.v.rows(), 3);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(3, 2);
        let s = jacobi_svd(&a).unwrap();
        assert_eq!(s.sigma, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = DenseMatrix::zeros(3, 0);
        let s = jacobi_svd(&a).unwrap();
        assert!(s.sigma.is_empty());
        assert_eq!(s.sigma_max(), 0.0);
    }

    #[test]
    fn nonfinite_input_is_rejected() {
        let mut a = DenseMatrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert_eq!(jacobi_svd(&a).unwrap_err(), SvdError::NonFiniteInput);
    }

    #[test]
    fn fault_scaled_entries_do_not_overflow() {
        // Hessenberg matrix with a 1e150 entry from a class-1 SDC event.
        let a = DenseMatrix::from_rows(&[
            &[1e150, 1.0, 0.2],
            &[0.5, 2.0, 0.1],
            &[0.0, 0.7, 1.5],
            &[0.0, 0.0, 0.3],
        ]);
        let s = jacobi_svd(&a).expect("svd must handle huge entries");
        assert!(s.sigma_max() > 1e149);
        assert!(s.sigma.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn truncated_solve_bounds_solution() {
        // Nearly singular system: the standard solve would produce a huge
        // y; the truncated solve keeps it bounded.
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-280]]);
        let s = jacobi_svd(&a).unwrap();
        let y = s.solve_truncated(&[1.0, 1.0], 1e-12);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert_eq!(y[1], 0.0, "tiny singular value must be truncated");
    }

    #[test]
    fn truncated_solve_full_rank_matches_exact() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[1.0, -1.0]]);
        let b = [1.0, 2.0, 0.5];
        let s = jacobi_svd(&a).unwrap();
        let y = s.solve_truncated(&b, 1e-14);
        // Compare to Householder least squares.
        let y2 = crate::householder::householder_qr(&a).solve_lstsq(&b).unwrap();
        for i in 0..2 {
            assert!((y[i] - y2[i]).abs() < 1e-10, "{y:?} vs {y2:?}");
        }
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = assert_svd_valid(&a, 1e-12);
        // det(A) = -2 => product of sigmas = 2; ‖A‖_F² = 30 = σ1²+σ2².
        let prod = s.sigma[0] * s.sigma[1];
        let ssq = s.sigma[0].powi(2) + s.sigma[1].powi(2);
        assert!((prod - 2.0).abs() < 1e-10);
        assert!((ssq - 30.0).abs() < 1e-10);
    }
}

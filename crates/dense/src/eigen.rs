//! Symmetric eigensolver (classical Jacobi rotations).
//!
//! Small dense symmetric eigenproblems back several verification paths:
//! the exact spectrum of test operators on small grids (validating the
//! closed-form Poisson eigenvalues used in Table I), positive
//! definiteness checks, and the eigenvalues of the tridiagonal `H`
//! produced by Arnoldi on SPD inputs (Ritz values, whose extremes
//! converge to the operator's spectrum edges).

use crate::matrix::DenseMatrix;

/// Error conditions for the eigensolver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EigenError {
    /// The matrix is not square.
    NotSquare,
    /// The matrix is not (numerically) symmetric.
    NotSymmetric,
    /// Input contains NaN/Inf.
    NonFiniteInput,
    /// Sweep limit reached without convergence.
    NoConvergence,
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigenError::NotSquare => write!(f, "eigen: matrix must be square"),
            EigenError::NotSymmetric => write!(f, "eigen: matrix must be symmetric"),
            EigenError::NonFiniteInput => write!(f, "eigen: non-finite input"),
            EigenError::NoConvergence => write!(f, "eigen: Jacobi sweeps did not converge"),
        }
    }
}

impl std::error::Error for EigenError {}

/// Eigendecomposition `A = V Λ Vᵀ` of a symmetric matrix.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (columns, matching `values`).
    pub vectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Smallest eigenvalue.
    pub fn lambda_min(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Largest eigenvalue.
    pub fn lambda_max(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    /// True if all eigenvalues exceed `tol` (positive definite).
    pub fn is_positive_definite(&self, tol: f64) -> bool {
        self.values.iter().all(|&l| l > tol)
    }

    /// Spectral condition number `|λ|_max / |λ|_min` (∞ if singular).
    pub fn cond_sym(&self) -> f64 {
        let amax = self.values.iter().fold(0.0f64, |m, &l| m.max(l.abs()));
        let amin = self.values.iter().fold(f64::INFINITY, |m, &l| m.min(l.abs()));
        if amin == 0.0 {
            f64::INFINITY
        } else {
            amax / amin
        }
    }
}

const MAX_SWEEPS: usize = 60;

/// Computes the eigendecomposition of a symmetric matrix by cyclic
/// Jacobi rotations.
pub fn symmetric_eigen(a: &DenseMatrix, sym_tol: f64) -> Result<SymmetricEigen, EigenError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(EigenError::NotSquare);
    }
    if !a.all_finite() {
        return Err(EigenError::NonFiniteInput);
    }
    let scale = a.norm_max().max(f64::MIN_POSITIVE);
    for i in 0..n {
        for j in 0..i {
            if (a[(i, j)] - a[(j, i)]).abs() > sym_tol * scale {
                return Err(EigenError::NotSymmetric);
            }
        }
    }
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let tol = f64::EPSILON * scale;

    let mut converged = n <= 1;
    for _ in 0..MAX_SWEEPS {
        if converged {
            break;
        }
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m[(p, q)].abs());
                if m[(p, q)].abs() <= tol {
                    continue;
                }
                // Jacobi rotation annihilating m[p][q].
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let apq = m[(p, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        if off <= tol {
            converged = true;
        }
    }
    if !converged {
        return Err(EigenError::NoConvergence);
    }

    // Extract and sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new, &old) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new)] = v[(r, old)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &DenseMatrix, e: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        // A V = V Λ.
        for k in 0..n {
            let vk = e.vectors.col(k);
            let mut av = vec![0.0; n];
            a.matvec(vk, &mut av);
            for r in 0..n {
                assert!(
                    (av[r] - e.values[k] * vk[r]).abs() < tol,
                    "eigenpair {k} violates A v = λ v at row {r}"
                );
            }
        }
        // V orthogonal.
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_diff(&DenseMatrix::identity(n)) < tol);
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        assert_eq!(e.values, vec![-1.0, 3.0]);
        assert!(!e.is_positive_definite(0.0));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &e, 1e-12);
        assert!((e.cond_sym() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn tridiagonal_poisson_eigenvalues_match_formula() {
        // tridiag(-1,2,-1) of order n: λ_k = 2 − 2cos(kπ/(n+1)).
        let n = 12;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        for (k, &l) in e.values.iter().enumerate() {
            let exact =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - exact).abs() < 1e-10, "λ_{k}: {l} vs {exact}");
        }
        assert!(e.is_positive_definite(0.0));
        check_decomposition(&a, &e, 1e-9);
    }

    #[test]
    fn arnoldi_ritz_values_lie_in_spectrum() {
        // The Ritz values (eigenvalues of the square tridiagonal H from
        // Arnoldi on an SPD operator) must lie inside [λ_min, λ_max].
        let tri =
            DenseMatrix::from_rows(&[&[2.0, -0.9, 0.0], &[-0.9, 2.1, -0.4], &[0.0, -0.4, 1.8]]);
        let e = symmetric_eigen(&tri, 1e-12).unwrap();
        assert!(e.lambda_min() > 0.0);
        assert!(e.lambda_max() < 4.0);
        check_decomposition(&tri, &e, 1e-11);
    }

    #[test]
    fn rejects_nonsymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(symmetric_eigen(&a, 1e-12).unwrap_err(), EigenError::NotSymmetric);
    }

    #[test]
    fn rejects_nonfinite() {
        let mut a = DenseMatrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert_eq!(symmetric_eigen(&a, 1e-12).unwrap_err(), EigenError::NonFiniteInput);
    }

    #[test]
    fn rejects_rectangular() {
        let a = DenseMatrix::zeros(2, 3);
        assert_eq!(symmetric_eigen(&a, 1e-12).unwrap_err(), EigenError::NotSquare);
    }

    #[test]
    fn eigen_consistent_with_svd_for_spd() {
        // For SPD matrices, eigenvalues == singular values.
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 5.0]]);
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        let s = crate::svd::jacobi_svd(&a).unwrap();
        let mut ev = e.values.clone();
        ev.reverse(); // descending like sigma
        for (l, sig) in ev.iter().zip(s.sigma.iter()) {
            assert!((l - sig).abs() < 1e-10, "{l} vs {sig}");
        }
    }

    #[test]
    fn empty_and_single() {
        let a = DenseMatrix::zeros(0, 0);
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        assert!(e.values.is_empty());
        let a = DenseMatrix::from_rows(&[&[7.0]]);
        let e = symmetric_eigen(&a, 1e-12).unwrap();
        assert_eq!(e.values, vec![7.0]);
    }
}

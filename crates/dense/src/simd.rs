//! Runtime SIMD dispatch and the AVX2 bodies of the dense kernels.
//!
//! The workspace's determinism contract says every floating-point result
//! is a pure function of the *logical* operation sequence — never of
//! thread count, storage format, or (now) instruction set. The kernels
//! here therefore vectorize **across independent scalar chains**, not
//! within one chain:
//!
//! * [`axpy4`]/[`scal4`] are element-wise maps — each lane computes one
//!   `a * x[i]` / `x[i] * a` with a separate multiply and add, exactly
//!   the scalar op per element, so the result is trivially bitwise
//!   identical (no FMA: fusing would change the rounding of `y + a*x`).
//! * [`dot256`] evaluates the four base-64 chains of one 256-element
//!   pairwise-tree subtree in the four lanes of a `f64x4` accumulator.
//!   Lane `l` performs precisely the additions the scalar tree performs
//!   in its `l`-th leaf, in the same order, and the final horizontal
//!   combine reproduces the tree's `(s0+s1)+(s2+s3)` shape — so the
//!   reduction is bitwise-pinned to the scalar [`det_map_sum`] result.
//!
//! Mode selection happens once per process: the first kernel that asks
//! reads `SDC_SIMD` (`auto` | `avx2` | `scalar`), resolves `auto` via
//! `is_x86_feature_detected!`, and caches the answer in an atomic. The
//! shared CLI's `--simd` flag overrides the cache before any kernel runs.
//!
//! [`det_map_sum`]: sdc_parallel::det_map_sum

use std::sync::atomic::{AtomicU8, Ordering};

/// The user-facing SIMD mode (`SDC_SIMD` env var / `--simd` flag).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimdMode {
    /// Use the widest ISA the CPU supports (the default).
    #[default]
    Auto,
    /// Require the AVX2+FMA kernels; an error if the CPU lacks them.
    Avx2,
    /// Force the scalar fallback kernels.
    Scalar,
}

impl SimdMode {
    /// The env/CLI string for this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Avx2 => "avx2",
            SimdMode::Scalar => "scalar",
        }
    }

    /// Parses an env/CLI string (`auto`, `avx2` or `scalar`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(SimdMode::Auto),
            "avx2" => Ok(SimdMode::Avx2),
            "scalar" => Ok(SimdMode::Scalar),
            other => Err(format!("unknown SIMD mode '{other}' (expected auto|avx2|scalar)")),
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The instruction set the kernels actually run on after dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// AVX2 + FMA `f64x4` kernels (FMA used only by the fast-math tier).
    Avx2,
    /// Portable scalar kernels.
    Scalar,
}

impl Isa {
    /// Stable name for traces, metrics and bench dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Scalar => "scalar",
        }
    }

    /// Independent `f64` lanes per vector register (4 for AVX2).
    pub fn lanes(&self) -> usize {
        match self {
            Isa::Avx2 => 4,
            Isa::Scalar => 1,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The widest ISA this CPU supports. AVX2 kernels additionally require
/// FMA (the fast-math tier fuses; strict kernels do not, but the two
/// features ship together on every AVX2-era core, so one gate keeps the
/// dispatch binary).
pub fn detected() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2;
        }
    }
    Isa::Scalar
}

// 0 = undecided, 1 = Avx2, 2 = Scalar. Relaxed is enough: the value is
// write-once-ish config, not a synchronization edge.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(isa: Isa) -> u8 {
    match isa {
        Isa::Avx2 => 1,
        Isa::Scalar => 2,
    }
}

/// The ISA the kernels dispatch to. First call resolves `SDC_SIMD`
/// (unset or unparseable ⇒ `auto`) against [`detected`] and caches the
/// answer; an env request for `avx2` on a CPU without it quietly falls
/// back to scalar (the CLI flag, by contrast, errors — see
/// [`set_mode`]).
pub fn active() -> Isa {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Isa::Avx2,
        2 => Isa::Scalar,
        _ => {
            let mode = std::env::var("SDC_SIMD")
                .ok()
                .and_then(|s| SimdMode::parse(&s).ok())
                .unwrap_or_default();
            let isa = match (mode, detected()) {
                (SimdMode::Scalar, _) | (SimdMode::Avx2, Isa::Scalar) => Isa::Scalar,
                (_, det) => det,
            };
            ACTIVE.store(encode(isa), Ordering::Relaxed);
            isa
        }
    }
}

/// Resolves and installs `mode`, returning the resulting ISA. `Avx2` on
/// a CPU without AVX2+FMA is an error (an explicit CLI request must not
/// silently degrade). Called by the shared CLI's `--simd` flag and by
/// tests pinning a specific kernel path.
pub fn set_mode(mode: SimdMode) -> Result<Isa, String> {
    let isa = match mode {
        SimdMode::Scalar => Isa::Scalar,
        SimdMode::Auto => detected(),
        SimdMode::Avx2 => match detected() {
            Isa::Avx2 => Isa::Avx2,
            Isa::Scalar => {
                return Err("--simd avx2 requested but this CPU lacks avx2+fma".to_string())
            }
        },
    };
    ACTIVE.store(encode(isa), Ordering::Relaxed);
    Ok(isa)
}

/// Serializes tests that flip the global mode, restoring `auto`
/// resolution on drop. Kernel *results* are mode-invariant by
/// construction, but tests asserting which path ran must not race.
pub fn test_mode_guard() -> ModeGuard {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    ModeGuard { _inner: LOCK.lock().unwrap_or_else(|e| e.into_inner()) }
}

/// Guard returned by [`test_mode_guard`].
pub struct ModeGuard {
    _inner: std::sync::MutexGuard<'static, ()>,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        let _ = set_mode(SimdMode::Auto);
    }
}

/// `y ← a·x + y` over four lanes; `None` when the scalar path should
/// run. Each element still computes `y[i] + a * x[i]` with separate
/// multiply and add, so the result is bitwise-identical to scalar.
#[inline]
pub fn axpy4(a: f64, x: &[f64], y: &mut [f64]) -> Option<()> {
    #[cfg(target_arch = "x86_64")]
    {
        if active() == Isa::Avx2 && x.len() >= 8 {
            // SAFETY: AVX2 availability was verified by `active()`.
            unsafe { avx2::axpy(a, x, y) };
            return Some(());
        }
    }
    let _ = (a, x, y);
    None
}

/// `x ← a·x` over four lanes; `None` when the scalar path should run.
#[inline]
pub fn scal4(a: f64, x: &mut [f64]) -> Option<()> {
    #[cfg(target_arch = "x86_64")]
    {
        if active() == Isa::Avx2 && x.len() >= 8 {
            // SAFETY: AVX2 availability was verified by `active()`.
            unsafe { avx2::scal(a, x) };
            return Some(());
        }
    }
    let _ = (a, x);
    None
}

/// Lane-parallel body for one 256-element dot-product subtree (4 ×
/// base-64 chains); `None` when the scalar tree should run. The caller
/// guarantees `x.len() == y.len() == 4 * PAIRWISE_BASE`.
#[inline]
pub fn dot256(x: &[f64], y: &[f64]) -> Option<f64> {
    #[cfg(target_arch = "x86_64")]
    {
        if active() == Isa::Avx2 {
            debug_assert_eq!(x.len(), 4 * sdc_parallel::PAIRWISE_BASE);
            debug_assert_eq!(x.len(), y.len());
            // SAFETY: AVX2 availability was verified by `active()`.
            return Some(unsafe { avx2::dot256(x, y) });
        }
    }
    let _ = (x, y);
    None
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_mut_ptr().add(i));
            // mul then add, not FMA: bitwise-matches the scalar kernel.
            let r = _mm256_add_pd(yv, _mm256_mul_pd(av, xv));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            y[i] += a * x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scal(a: f64, x: &mut [f64]) {
        let n = x.len();
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            _mm256_storeu_pd(x.as_mut_ptr().add(i), _mm256_mul_pd(xv, av));
            i += 4;
        }
        while i < n {
            x[i] *= a;
            i += 1;
        }
    }

    /// Four base-64 chains in four lanes; combine `(s0+s1)+(s2+s3)`.
    /// Scalar `x[i] *= a` is `x * a`; the vector body above keeps that
    /// operand order. Here lane `l` accumulates `x[64l + i] * y[64l + i]`
    /// with separate mul/add — the exact scalar chain of leaf `l`.
    ///
    /// # Safety
    /// Requires AVX2; `x.len() == y.len() == 256`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot256(x: &[f64], y: &[f64]) -> f64 {
        const B: usize = 64;
        let mut acc = _mm256_setzero_pd();
        for i in 0..B {
            let xv = _mm256_set_pd(x[3 * B + i], x[2 * B + i], x[B + i], x[i]);
            let yv = _mm256_set_pd(y[3 * B + i], y[2 * B + i], y[B + i], y[i]);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
        }
        let lanes: [f64; 4] = std::mem::transmute(acc);
        // The pairwise tree over 256 elements is ((c0+c1)+(c2+c3)).
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_strings_round_trip() {
        for m in [SimdMode::Auto, SimdMode::Avx2, SimdMode::Scalar] {
            assert_eq!(SimdMode::parse(m.as_str()).unwrap(), m);
            assert_eq!(format!("{m}"), m.as_str());
        }
        assert!(SimdMode::parse("sse9").is_err());
        assert_eq!(SimdMode::default(), SimdMode::Auto);
    }

    #[test]
    fn isa_lanes_and_names() {
        assert_eq!(Isa::Avx2.lanes(), 4);
        assert_eq!(Isa::Scalar.lanes(), 1);
        assert_eq!(Isa::Avx2.as_str(), "avx2");
        assert_eq!(format!("{}", Isa::Scalar), "scalar");
    }

    #[test]
    fn set_mode_respects_detection() {
        let _guard = test_mode_guard();
        assert_eq!(set_mode(SimdMode::Scalar).unwrap(), Isa::Scalar);
        assert_eq!(active(), Isa::Scalar);
        assert_eq!(set_mode(SimdMode::Auto).unwrap(), detected());
        match detected() {
            Isa::Avx2 => assert_eq!(set_mode(SimdMode::Avx2).unwrap(), Isa::Avx2),
            Isa::Scalar => assert!(set_mode(SimdMode::Avx2).is_err()),
        }
    }

    #[test]
    fn avx2_kernels_bitwise_match_scalar() {
        let _guard = test_mode_guard();
        if set_mode(SimdMode::Avx2).is_err() {
            return; // no AVX2 on this host; the proptests cover scalar.
        }
        let x: Vec<f64> = (0..301).map(|i| (i as f64 * 0.31).sin() * 1e3).collect();
        let y0: Vec<f64> = (0..301).map(|i| (i as f64 * 0.17).cos() - 0.4).collect();
        let a = 0.734_f64;

        let mut y_simd = y0.clone();
        assert!(axpy4(a, &x, &mut y_simd).is_some());
        set_mode(SimdMode::Scalar).unwrap();
        assert!(axpy4(a, &x, &mut y0.clone()).is_none());
        let mut y_scalar = y0.clone();
        for (yi, xi) in y_scalar.iter_mut().zip(x.iter()) {
            *yi += a * xi;
        }
        for (s, v) in y_scalar.iter().zip(y_simd.iter()) {
            assert_eq!(s.to_bits(), v.to_bits());
        }

        set_mode(SimdMode::Avx2).unwrap();
        let mut xs = x.clone();
        assert!(scal4(a, &mut xs).is_some());
        let mut xr = x.clone();
        for v in xr.iter_mut() {
            *v *= a;
        }
        for (s, v) in xr.iter().zip(xs.iter()) {
            assert_eq!(s.to_bits(), v.to_bits());
        }
    }
}

//! Cheap condition estimation for growing triangular factors.
//!
//! §VI-C of the paper requires FGMRES to *detect* when `H(1:j,1:j)` is
//! (near-)singular — Saad's Proposition 2.2 shows a flexible iteration can
//! produce a singular projected matrix even in exact arithmetic. The paper
//! notes that rank-revealing decompositions can be updated in `O(m²)` per
//! iteration (Stewart's ULV); here we implement the classical
//! LINPACK-style estimator, which also costs `O(k²)` per invocation and
//! needs only the triangular factor GMRES already maintains:
//!
//! 1. Solve `Rᵀ z = d`, choosing `dᵢ = ±1` greedily to maximize the growth
//!    of `z` — steering `z` toward the small singular directions.
//! 2. Refine with one inverse-iteration step: solve `R w = z`; then
//!    `σ_min ≈ ‖z‖/‖w‖` (and `‖d‖/‖z‖` is a second upper bound).
//!
//! The estimate is an upper bound on `σ_min` that is tight in practice; the
//! FGMRES rank monitor treats `σ_min_est ≤ tol·σ_max_est` as "deficient"
//! and (optionally) confirms with an exact Jacobi SVD before declaring the
//! loud failure of the paper's trichotomy.

use crate::matrix::DenseMatrix;
use crate::norms;
use crate::triangular::{solve_upper, TriangularOutcome};
use crate::vector;

/// Summary of the conditioning of a triangular factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConditionReport {
    /// Estimated largest singular value (power iteration, lower bound).
    pub sigma_max_est: f64,
    /// Estimated smallest singular value (LINPACK-style, upper bound).
    pub sigma_min_est: f64,
}

impl ConditionReport {
    /// Estimated 2-norm condition number.
    pub fn cond(&self) -> f64 {
        if self.sigma_min_est == 0.0 {
            f64::INFINITY
        } else {
            self.sigma_max_est / self.sigma_min_est
        }
    }

    /// True if the factor should be treated as numerically rank-deficient
    /// at relative tolerance `tol`.
    pub fn is_deficient(&self, tol: f64) -> bool {
        self.sigma_min_est <= tol * self.sigma_max_est
    }
}

/// LINPACK-style estimate of the smallest singular value of upper
/// triangular `R`. Returns `0.0` when `R` is exactly singular or the
/// estimate overflows (numerically singular), `f64::INFINITY` for an empty
/// matrix (vacuously full rank).
pub fn smallest_singular_estimate(r: &DenseMatrix) -> f64 {
    let n = r.cols();
    if n == 0 {
        return f64::INFINITY;
    }
    assert!(r.rows() >= n, "smallest_singular_estimate: need square R");

    // Greedy solve of Rᵀ z = d with d_i = ±1 chosen to maximize |z_i|.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..i {
            s += r[(j, i)] * z[j];
        }
        let d = if s >= 0.0 { -1.0 } else { 1.0 };
        let diag = r[(i, i)];
        if diag == 0.0 {
            return 0.0;
        }
        z[i] = (d - s) / diag;
        if !z[i].is_finite() {
            return 0.0;
        }
    }
    let znorm = vector::nrm2(&z);
    if znorm == 0.0 || !znorm.is_finite() {
        return 0.0;
    }
    let dnorm = (n as f64).sqrt();
    let bound1 = dnorm / znorm;

    // One step of inverse iteration sharpens the estimate.
    match solve_upper(r, &z) {
        TriangularOutcome::Finite(w) => {
            let wnorm = vector::nrm2(&w);
            if wnorm > 0.0 && wnorm.is_finite() {
                bound1.min(znorm / wnorm)
            } else {
                bound1
            }
        }
        _ => bound1,
    }
}

/// Estimates both extreme singular values of `R`.
pub fn estimate_condition(r: &DenseMatrix) -> ConditionReport {
    let sigma_max_est = if r.cols() == 0 {
        0.0
    } else {
        // Power iteration on R (cheap: R is small); 30 iterations is ample
        // for a monitoring bound.
        norms::norm2_power_estimate(r, 30).max(diag_max(r))
    };
    ConditionReport { sigma_max_est, sigma_min_est: smallest_singular_estimate(r) }
}

fn diag_max(r: &DenseMatrix) -> f64 {
    (0..r.cols().min(r.rows())).map(|i| r[(i, i)].abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::jacobi_svd;

    fn exact_sigma_min(r: &DenseMatrix) -> f64 {
        jacobi_svd(r).unwrap().sigma_min()
    }

    #[test]
    fn well_conditioned_estimate_is_close() {
        let r = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.3], &[0.0, 3.0, -0.2], &[0.0, 0.0, 2.5]]);
        let est = smallest_singular_estimate(&r);
        let exact = exact_sigma_min(&r);
        assert!(est >= exact * 0.99, "estimator must upper-bound σ_min: {est} < {exact}");
        assert!(est <= exact * 10.0, "estimate too loose: {est} vs {exact}");
    }

    #[test]
    fn graded_matrix_estimate_tracks_tiny_sigma() {
        // Severely graded triangular matrix: σ_min is far below the
        // smallest diagonal seen naively.
        let r = DenseMatrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[0.0, 1e-2, 1.0, 1.0],
            &[0.0, 0.0, 1e-5, 1.0],
            &[0.0, 0.0, 0.0, 1e-9],
        ]);
        let est = smallest_singular_estimate(&r);
        let exact = exact_sigma_min(&r);
        assert!(est >= exact * 0.99);
        assert!(est <= exact * 100.0, "estimate {est} too far from exact {exact}");
    }

    #[test]
    fn exact_singularity_returns_zero() {
        let r = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]);
        assert_eq!(smallest_singular_estimate(&r), 0.0);
    }

    #[test]
    fn overflowing_solve_counts_as_singular() {
        let r = DenseMatrix::from_rows(&[&[1e-308, 1e308], &[0.0, 1.0]]);
        assert_eq!(smallest_singular_estimate(&r), 0.0);
    }

    #[test]
    fn empty_matrix_is_vacuously_full_rank() {
        let r = DenseMatrix::zeros(0, 0);
        assert_eq!(smallest_singular_estimate(&r), f64::INFINITY);
        let rep = estimate_condition(&r);
        assert!(!rep.is_deficient(1e-10));
    }

    #[test]
    fn condition_report_flags_deficiency() {
        let r = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-250]]);
        let rep = estimate_condition(&r);
        assert!(rep.is_deficient(1e-12));
        assert!(rep.cond() > 1e100);
        let good = DenseMatrix::from_rows(&[&[2.0, 0.1], &[0.0, 1.5]]);
        let rep = estimate_condition(&good);
        assert!(!rep.is_deficient(1e-12));
        assert!(rep.cond() < 10.0);
    }

    #[test]
    fn identity_condition_is_one() {
        let r = DenseMatrix::identity(6);
        let rep = estimate_condition(&r);
        assert!((rep.cond() - 1.0).abs() < 0.2, "cond(I) ≈ 1, got {}", rep.cond());
    }
}

//! The three projected least-squares policies of §VI-D.
//!
//! After the Givens rotations have reduced the Hessenberg least-squares
//! problem to the triangular system `R y = z`, the paper implements three
//! ways to produce the solution-update coefficients `y`:
//!
//! 1. **Standard** — plain back-substitution (Saad & Schultz). Fast, but a
//!    (near-)singular `R` yields unboundedly inaccurate coefficients.
//! 2. **FallbackOnNonFinite** — attempt the standard solve and only switch
//!    to a rank-revealing method if the solution contains `Inf`/`NaN`. The
//!    paper points out this "conceals the natural error detection that
//!    comes with IEEE-754 data, without detecting inaccuracy or bounding
//!    the error" — it is implemented faithfully so the ablation experiment
//!    can demonstrate that weakness.
//! 3. **RankRevealing** — always solve through a truncated SVD: singular
//!    values `≤ tol·σ_max` are dropped and the *minimum-norm* solution is
//!    returned, bounding `‖y‖` by `‖z‖·σ_max/σ_min-kept` regardless of how
//!    corrupted `R` became.
//!
//! The paper recommends approaches 1 or 3.

use crate::matrix::DenseMatrix;
use crate::svd::{jacobi_svd, SvdError};
use crate::triangular::{solve_upper, TriangularOutcome};

/// Which §VI-D approach to use for `R y = z`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LstsqPolicy {
    /// Approach 1: standard back-substitution.
    #[default]
    Standard,
    /// Approach 2: standard solve, rank-revealing only on `Inf`/`NaN`.
    FallbackOnNonFinite {
        /// Relative singular-value truncation tolerance for the fallback.
        tol: f64,
    },
    /// Approach 3: always rank-revealing (truncated SVD, minimum norm).
    RankRevealing {
        /// Relative singular-value truncation tolerance.
        tol: f64,
    },
}

/// Diagnostics describing how the solve went.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LstsqReport {
    /// True if the rank-revealing (SVD) path produced the returned `y`.
    pub used_rank_revealing: bool,
    /// True if the standard solve produced a non-finite solution (only
    /// meaningful for policies that attempt the standard solve).
    pub standard_was_nonfinite: bool,
    /// True if the standard solve hit an exactly zero diagonal.
    pub standard_hit_zero_diagonal: bool,
    /// Numerical rank kept by the truncated SVD (if it ran).
    pub rank: Option<usize>,
    /// Largest singular value of `R` (if the SVD ran).
    pub sigma_max: Option<f64>,
    /// Smallest singular value of `R` (if the SVD ran).
    pub sigma_min: Option<f64>,
}

/// A failed solve: no usable coefficients could be produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LstsqError {
    /// `R` itself contains non-finite entries; neither back-substitution
    /// nor an SVD can proceed. The caller must handle this loudly.
    NonFiniteFactor,
    /// The standard policy met an exactly-zero diagonal (singular `R`)
    /// and no fallback was allowed.
    SingularFactor {
        /// Index of the zero diagonal.
        index: usize,
    },
    /// The Jacobi SVD failed to converge (pathological input).
    SvdFailure,
}

impl std::fmt::Display for LstsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LstsqError::NonFiniteFactor => write!(f, "triangular factor contains NaN/Inf"),
            LstsqError::SingularFactor { index } => {
                write!(f, "exactly singular triangular factor at diagonal {index}")
            }
            LstsqError::SvdFailure => write!(f, "rank-revealing SVD did not converge"),
        }
    }
}

impl std::error::Error for LstsqError {}

/// Result of a projected least-squares solve.
#[derive(Clone, Debug)]
pub struct LstsqOutcome {
    /// The solution-update coefficients.
    pub y: Vec<f64>,
    /// Diagnostics.
    pub report: LstsqReport,
}

/// Solves `R y = z` under the given policy. `R` is `k × k` upper
/// triangular, `z` has length `k`.
pub fn solve_projected(
    r: &DenseMatrix,
    z: &[f64],
    policy: LstsqPolicy,
) -> Result<LstsqOutcome, LstsqError> {
    let k = r.cols();
    assert_eq!(z.len(), k, "solve_projected: rhs length");
    if k == 0 {
        return Ok(LstsqOutcome { y: vec![], report: LstsqReport::default() });
    }
    match policy {
        LstsqPolicy::Standard => {
            let mut report = LstsqReport::default();
            match solve_upper(r, z) {
                TriangularOutcome::Finite(y) => Ok(LstsqOutcome { y, report }),
                TriangularOutcome::NonFinite(y) => {
                    // Approach 1 returns whatever back-substitution
                    // produced — IEEE-754 "loud" values included. The
                    // caller sees them through the report.
                    report.standard_was_nonfinite = true;
                    Ok(LstsqOutcome { y, report })
                }
                TriangularOutcome::ZeroDiagonal { index } => {
                    Err(LstsqError::SingularFactor { index })
                }
            }
        }
        LstsqPolicy::FallbackOnNonFinite { tol } => {
            let mut report = LstsqReport::default();
            match solve_upper(r, z) {
                TriangularOutcome::Finite(y) => Ok(LstsqOutcome { y, report }),
                TriangularOutcome::NonFinite(_) => {
                    report.standard_was_nonfinite = true;
                    rank_revealing(r, z, tol, report)
                }
                TriangularOutcome::ZeroDiagonal { .. } => {
                    report.standard_hit_zero_diagonal = true;
                    rank_revealing(r, z, tol, report)
                }
            }
        }
        LstsqPolicy::RankRevealing { tol } => rank_revealing(r, z, tol, LstsqReport::default()),
    }
}

fn rank_revealing(
    r: &DenseMatrix,
    z: &[f64],
    tol: f64,
    mut report: LstsqReport,
) -> Result<LstsqOutcome, LstsqError> {
    let svd = match jacobi_svd(r) {
        Ok(s) => s,
        Err(SvdError::NonFiniteInput) => return Err(LstsqError::NonFiniteFactor),
        Err(SvdError::NoConvergence) => return Err(LstsqError::SvdFailure),
    };
    report.used_rank_revealing = true;
    report.rank = Some(svd.rank(tol));
    report.sigma_max = Some(svd.sigma_max());
    report.sigma_min = Some(svd.sigma_min());
    let y = svd.solve_truncated(z, tol);
    Ok(LstsqOutcome { y, report })
}

/// Default truncation tolerance used by the solvers (relative to σ_max).
pub const DEFAULT_RR_TOL: f64 = 1e-12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::nrm2;

    fn well_conditioned_r() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, -0.5], &[0.0, 3.0, 0.7], &[0.0, 0.0, 2.0]])
    }

    #[test]
    fn all_policies_agree_on_well_conditioned_systems() {
        let r = well_conditioned_r();
        let z = [1.0, -2.0, 0.5];
        let y1 = solve_projected(&r, &z, LstsqPolicy::Standard).unwrap();
        let y2 = solve_projected(&r, &z, LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 }).unwrap();
        let y3 = solve_projected(&r, &z, LstsqPolicy::RankRevealing { tol: 1e-12 }).unwrap();
        for i in 0..3 {
            assert!((y1.y[i] - y2.y[i]).abs() < 1e-13);
            assert!((y1.y[i] - y3.y[i]).abs() < 1e-10, "{:?} vs {:?}", y1.y, y3.y);
        }
        assert!(!y1.report.used_rank_revealing);
        assert!(!y2.report.used_rank_revealing);
        assert!(y3.report.used_rank_revealing);
        assert_eq!(y3.report.rank, Some(3));
    }

    #[test]
    fn standard_returns_nonfinite_loudly() {
        let r = DenseMatrix::from_rows(&[&[1e-300, 1e300], &[0.0, 1.0]]);
        let out = solve_projected(&r, &[1.0, 1.0], LstsqPolicy::Standard).unwrap();
        assert!(out.report.standard_was_nonfinite);
        assert!(out.y.iter().any(|v| !v.is_finite()));
    }

    #[test]
    fn standard_errors_on_exact_singularity() {
        let r = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        match solve_projected(&r, &[1.0, 1.0], LstsqPolicy::Standard) {
            Err(LstsqError::SingularFactor { index }) => assert_eq!(index, 1),
            other => panic!("expected SingularFactor, got {other:?}"),
        }
    }

    #[test]
    fn fallback_rescues_nonfinite_solve() {
        let r = DenseMatrix::from_rows(&[&[1e-300, 1e300], &[0.0, 1.0]]);
        let out = solve_projected(&r, &[1.0, 1.0], LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 })
            .unwrap();
        assert!(out.report.standard_was_nonfinite);
        assert!(out.report.used_rank_revealing);
        assert!(out.y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fallback_rescues_zero_diagonal() {
        let r = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let out = solve_projected(&r, &[1.0, 0.0], LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 })
            .unwrap();
        assert!(out.report.standard_hit_zero_diagonal);
        assert!(out.report.used_rank_revealing);
        // Minimum-norm solution of the rank-1 system.
        assert!(out.y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fallback_does_not_bound_merely_inaccurate_solves() {
        // §VI-D's criticism of Approach 2: a *finite but huge* solution
        // sails straight through the fallback untouched.
        let r = DenseMatrix::from_rows(&[&[1e-14, 1.0], &[0.0, 1.0]]);
        let z = [1.0, 0.0];
        let out = solve_projected(&r, &z, LstsqPolicy::FallbackOnNonFinite { tol: 1e-10 }).unwrap();
        assert!(!out.report.used_rank_revealing, "fallback must not trigger on finite data");
        assert!(nrm2(&out.y) > 1e12, "solution is huge and unbounded");
        // Approach 3 on the same system stays bounded.
        let out3 = solve_projected(&r, &z, LstsqPolicy::RankRevealing { tol: 1e-10 }).unwrap();
        assert!(nrm2(&out3.y) < 10.0, "rank-revealing must bound the coefficients");
    }

    #[test]
    fn rank_revealing_bounds_norm_by_sigma_ratio() {
        let r = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-250]]);
        let z = [3.0, 1.0];
        let out = solve_projected(&r, &z, LstsqPolicy::RankRevealing { tol: 1e-12 }).unwrap();
        assert_eq!(out.report.rank, Some(1));
        // The truncated direction contributes nothing.
        assert!((out.y[0] - 3.0).abs() < 1e-12);
        assert_eq!(out.y[1], 0.0);
    }

    #[test]
    fn nonfinite_factor_is_a_loud_error() {
        let mut r = well_conditioned_r();
        r[(0, 1)] = f64::NAN;
        for policy in [
            LstsqPolicy::RankRevealing { tol: 1e-12 },
            LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 },
        ] {
            // The standard attempt inside Fallback will produce NaN (NaN
            // participates in back-substitution), so both policies reach
            // the SVD, which must reject the factor.
            match solve_projected(&r, &[1.0, 1.0, 1.0], policy) {
                Err(LstsqError::NonFiniteFactor) => {}
                other => panic!("expected NonFiniteFactor, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_system() {
        let r = DenseMatrix::zeros(0, 0);
        let out = solve_projected(&r, &[], LstsqPolicy::Standard).unwrap();
        assert!(out.y.is_empty());
    }

    #[test]
    fn huge_fault_diagonal_all_policies_finite() {
        // Class-1 SDC on the diagonal: 1e150. Standard divides by it and is
        // fine; rank-revealing truncates the *other* direction(s) relative
        // to the huge sigma_max — which is precisely the "bounded error"
        // behaviour the paper exploits.
        let r = DenseMatrix::from_rows(&[&[1e150, 2.0], &[0.0, 1.0]]);
        let z = [1.0, 1.0];
        let s = solve_projected(&r, &z, LstsqPolicy::Standard).unwrap();
        assert!(s.y.iter().all(|v| v.is_finite()));
        let rr = solve_projected(&r, &z, LstsqPolicy::RankRevealing { tol: 1e-12 }).unwrap();
        assert!(rr.y.iter().all(|v| v.is_finite()));
        assert!(nrm2(&rr.y) <= nrm2(&z) / 1e130, "minimum-norm solve must stay tiny");
    }
}

//! Column-major dense matrices.
//!
//! The solvers only need dense matrices for *small* objects — the upper
//! Hessenberg matrix `H` (at most `(m+1)×m` for restart length `m`), the
//! factors of its QR decomposition, and the factors of the rank-revealing
//! SVD. Column-major storage matches the access pattern of Gram-Schmidt
//! (whole columns are appended and rotated).

use crate::vector;
use std::fmt;

/// A dense column-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    /// `data[c * rows + r]` is entry `(r, c)`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major nested array (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_col_major: size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of column `c` as a slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "col index out of range");
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutable borrow of column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.cols, "col index out of range");
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Underlying column-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Copies row `r` into a new vector.
    pub fn row_copy(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row index out of range");
        (0..self.cols).map(|c| self[(r, c)]).collect()
    }

    /// Appends a column; the matrix must have `col.len() == rows` (or be
    /// empty, in which case the row count is set by the first column).
    pub fn push_col(&mut self, col: &[f64]) {
        if self.cols == 0 && self.rows == 0 {
            self.rows = col.len();
        }
        assert_eq!(col.len(), self.rows, "push_col: wrong length");
        self.data.extend_from_slice(col);
        self.cols += 1;
    }

    /// Matrix-vector product `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        y.fill(0.0);
        for c in 0..self.cols {
            vector::axpy(x[c], self.col(c), y);
        }
    }

    /// Transposed matrix-vector product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(y.len(), self.cols, "matvec_t: y length");
        for c in 0..self.cols {
            y[c] = vector::dot(self.col(c), x);
        }
    }

    /// Dense matrix product `A · B`.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for j in 0..b.cols {
            let bj = b.col(j);
            let outj = &mut out.data[j * self.rows..(j + 1) * self.rows];
            for k in 0..self.cols {
                let scale = bj[k];
                if scale != 0.0 {
                    let ak = &self.data[k * self.rows..(k + 1) * self.rows];
                    for r in 0..self.rows {
                        outj[r] += scale * ak[r];
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        vector::nrm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// Returns the leading `r × c` sub-matrix as a copy.
    pub fn leading(&self, r: usize, c: usize) -> DenseMatrix {
        assert!(r <= self.rows && c <= self.cols, "leading: out of range");
        let mut m = DenseMatrix::zeros(r, c);
        for j in 0..c {
            m.col_mut(j).copy_from_slice(&self.col(j)[..r]);
        }
        m
    }

    /// `‖A - B‖_max`, convenient for tests.
    pub fn max_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(other.data.iter()).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        crate::all_finite(&self.data)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[c * self.rows + r]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let rshow = self.rows.min(8);
        let cshow = self.cols.min(8);
        for r in 0..rshow {
            write!(f, "  ")?;
            for c in 0..cshow {
                write!(f, "{:>12.4e} ", self[(r, c)])?;
            }
            if cshow < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rshow < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let a = DenseMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        a.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn from_rows_and_index() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 0)], 3.0);
        assert_eq!(a[(1, 1)], 4.0);
        assert_eq!(a.col(0), &[1.0, 3.0]);
        assert_eq!(a.row_copy(0), vec![1.0, 2.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        let expect = DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert!(c.max_diff(&expect) == 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().max_diff(&a) == 0.0);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0, 0.5], &[4.0, 0.0, 6.0]]);
        let x = [2.0, -1.0];
        let mut y1 = [0.0; 3];
        a.matvec_t(&x, &mut y1);
        let t = a.transpose();
        let mut y2 = [0.0; 3];
        t.matvec(&x, &mut y2);
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn push_col_grows() {
        let mut a = DenseMatrix::zeros(0, 0);
        a.push_col(&[1.0, 2.0]);
        a.push_col(&[3.0, 4.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn leading_submatrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let l = a.leading(2, 2);
        let expect = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]);
        assert_eq!(l.max_diff(&expect), 0.0);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn all_finite_detects_corruption() {
        let mut a = DenseMatrix::identity(3);
        assert!(a.all_finite());
        a[(1, 2)] = f64::NAN;
        assert!(!a.all_finite());
    }
}

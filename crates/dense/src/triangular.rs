//! Triangular solves with explicit non-finite reporting.
//!
//! §VI-D of the paper distinguishes three ways to solve the final upper
//! triangular system `R y = z` of GMRES' projected least-squares problem.
//! The *standard* solve (Saad & Schultz) is a plain back-substitution; what
//! makes it interesting under SDC is that a (near-)singular or corrupted `R`
//! can produce `Inf`/`NaN` coefficients. These solvers therefore report
//! exactly what happened instead of silently returning garbage.

use crate::matrix::DenseMatrix;

/// Outcome of a triangular solve.
#[derive(Clone, Debug, PartialEq)]
pub enum TriangularOutcome {
    /// All solution components are finite.
    Finite(Vec<f64>),
    /// The solve completed arithmetically but produced at least one
    /// non-finite component (the natural IEEE-754 "loud" error the paper's
    /// Approach 2 listens for). The offending solution is returned so the
    /// caller can inspect it.
    NonFinite(Vec<f64>),
    /// A diagonal entry was exactly zero; back-substitution is undefined
    /// without regularization.
    ZeroDiagonal { index: usize },
}

impl TriangularOutcome {
    /// Unwraps the finite solution, panicking otherwise (test convenience).
    pub fn unwrap_finite(self) -> Vec<f64> {
        match self {
            TriangularOutcome::Finite(v) => v,
            other => panic!("expected finite solution, got {other:?}"),
        }
    }

    /// The solution vector if one was produced (finite or not).
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            TriangularOutcome::Finite(v) | TriangularOutcome::NonFinite(v) => Some(v),
            TriangularOutcome::ZeroDiagonal { .. } => None,
        }
    }
}

/// Solves `R y = z` by back-substitution for upper-triangular `R`
/// (`n × n`, entries below the diagonal ignored).
pub fn solve_upper(r: &DenseMatrix, z: &[f64]) -> TriangularOutcome {
    let n = r.cols();
    assert!(r.rows() >= n, "solve_upper: R must have at least n rows");
    assert_eq!(z.len(), n, "solve_upper: rhs length");
    let mut y = vec![0.0; n];
    for i in (0..n).rev() {
        let d = r[(i, i)];
        if d == 0.0 {
            return TriangularOutcome::ZeroDiagonal { index: i };
        }
        let mut s = z[i];
        for j in i + 1..n {
            s -= r[(i, j)] * y[j];
        }
        y[i] = s / d;
    }
    if crate::all_finite(&y) {
        TriangularOutcome::Finite(y)
    } else {
        TriangularOutcome::NonFinite(y)
    }
}

/// Solves `L y = z` by forward substitution for lower-triangular `L`.
pub fn solve_lower(l: &DenseMatrix, z: &[f64]) -> TriangularOutcome {
    let n = l.cols();
    assert!(l.rows() >= n, "solve_lower: L must have at least n rows");
    assert_eq!(z.len(), n, "solve_lower: rhs length");
    let mut y = vec![0.0; n];
    for i in 0..n {
        let d = l[(i, i)];
        if d == 0.0 {
            return TriangularOutcome::ZeroDiagonal { index: i };
        }
        let mut s = z[i];
        for j in 0..i {
            s -= l[(i, j)] * y[j];
        }
        y[i] = s / d;
    }
    if crate::all_finite(&y) {
        TriangularOutcome::Finite(y)
    } else {
        TriangularOutcome::NonFinite(y)
    }
}

/// Solves `Rᵀ y = z` (forward substitution on the transpose of an
/// upper-triangular matrix) — used by the LINPACK-style condition
/// estimator.
pub fn solve_upper_transposed(r: &DenseMatrix, z: &[f64]) -> TriangularOutcome {
    let n = r.cols();
    assert_eq!(z.len(), n);
    let mut y = vec![0.0; n];
    for i in 0..n {
        let d = r[(i, i)];
        if d == 0.0 {
            return TriangularOutcome::ZeroDiagonal { index: i };
        }
        let mut s = z[i];
        for j in 0..i {
            s -= r[(j, i)] * y[j];
        }
        y[i] = s / d;
    }
    if crate::all_finite(&y) {
        TriangularOutcome::Finite(y)
    } else {
        TriangularOutcome::NonFinite(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_solve_known() {
        let r = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let y = solve_upper(&r, &[5.0, 8.0]).unwrap_finite();
        assert!((y[1] - 2.0).abs() < 1e-15);
        assert!((y[0] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn lower_solve_known() {
        let l = DenseMatrix::from_rows(&[&[2.0, 0.0], &[1.0, 4.0]]);
        let y = solve_lower(&l, &[4.0, 10.0]).unwrap_finite();
        assert!((y[0] - 2.0).abs() < 1e-15);
        assert!((y[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let r = DenseMatrix::from_rows(&[&[3.0, 1.0, -1.0], &[0.0, 2.0, 0.5], &[0.0, 0.0, 5.0]]);
        let z = [1.0, -2.0, 3.0];
        let y1 = solve_upper_transposed(&r, &z).unwrap_finite();
        let y2 = solve_lower(&r.transpose(), &z).unwrap_finite();
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn zero_diagonal_reported() {
        let r = DenseMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        match solve_upper(&r, &[1.0, 1.0]) {
            TriangularOutcome::ZeroDiagonal { index } => assert_eq!(index, 1),
            other => panic!("expected ZeroDiagonal, got {other:?}"),
        }
    }

    #[test]
    fn overflow_produces_nonfinite_outcome() {
        // A huge off-diagonal with a tiny diagonal drives the solution to
        // overflow: exactly the ill-conditioning scenario of §VI-D.
        let r = DenseMatrix::from_rows(&[&[1e-300, 1e300], &[0.0, 1.0]]);
        match solve_upper(&r, &[1.0, 1.0]) {
            TriangularOutcome::NonFinite(y) => {
                assert!(!y[0].is_finite());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn huge_diagonal_from_class1_fault_stays_finite() {
        // A 1e150-scaled Hessenberg entry lands on the diagonal of R: the
        // standard solve divides by it and stays finite (tiny coefficient),
        // matching the paper's observation that huge orthogonalization
        // faults do not necessarily explode the update coefficients.
        let r = DenseMatrix::from_rows(&[&[1e150, 2.0], &[0.0, 1.0]]);
        let y = solve_upper(&r, &[1.0, 1.0]).unwrap_finite();
        assert!(y[0].abs() < 1e-140);
        assert!((y[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn residual_check_on_random_system() {
        let r = DenseMatrix::from_rows(&[
            &[4.0, -2.0, 1.0, 0.5],
            &[0.0, 3.0, -1.0, 2.0],
            &[0.0, 0.0, 2.5, 1.0],
            &[0.0, 0.0, 0.0, 1.5],
        ]);
        let z = [1.0, 2.0, 3.0, 4.0];
        let y = solve_upper(&r, &z).unwrap_finite();
        let mut ry = vec![0.0; 4];
        r.matvec(&y, &mut ry);
        for i in 0..4 {
            assert!((ry[i] - z[i]).abs() < 1e-13);
        }
    }
}

//! Givens plane rotations.
//!
//! GMRES solves its projected least-squares problem by a *structured* QR
//! factorization (Saad & Schultz): each new Hessenberg column is reduced by
//! one new Givens rotation, and the rotations are retained so the
//! factorization is updated in `O(k)` per iteration instead of recomputed in
//! `O(k³)`. This module provides the robust construction (in the style of
//! LAPACK `dlartg`) and application of those rotations.

/// A plane rotation `G = [c s; -s c]` with `c² + s² = 1`, chosen so that
/// `G · [a; b] = [r; 0]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GivensRotation {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
    /// The resulting `r = c·a + s·b`.
    pub r: f64,
}

impl GivensRotation {
    /// Computes the rotation annihilating `b` against `a`, robust against
    /// overflow/underflow of `sqrt(a² + b²)`.
    pub fn compute(a: f64, b: f64) -> Self {
        if b == 0.0 {
            // Includes the (0, 0) case: identity rotation.
            GivensRotation { c: 1.0, s: 0.0, r: a }
        } else if a == 0.0 {
            GivensRotation { c: 0.0, s: b.signum(), r: b.abs() }
        } else if a.abs() > b.abs() {
            let t = b / a;
            let u = (1.0 + t * t).sqrt().copysign(a);
            let c = 1.0 / u;
            GivensRotation { c, s: t * c, r: a * u }
        } else {
            let t = a / b;
            let u = (1.0 + t * t).sqrt().copysign(b);
            let s = 1.0 / u;
            GivensRotation { c: t * s, s, r: b * u }
        }
    }

    /// Applies the rotation to the pair `(x, y)`, returning
    /// `(c·x + s·y, -s·x + c·y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }

    /// Applies the rotation in place to two scalars.
    #[inline]
    pub fn apply_inplace(&self, x: &mut f64, y: &mut f64) {
        let (nx, ny) = self.apply(*x, *y);
        *x = nx;
        *y = ny;
    }

    /// Applies the rotation to rows `i` and `i+1` of a column vector stored
    /// as a slice — the access pattern of Hessenberg QR updates.
    #[inline]
    pub fn apply_to_column(&self, col: &mut [f64], i: usize) {
        let (nx, ny) = self.apply(col[i], col[i + 1]);
        col[i] = nx;
        col[i + 1] = ny;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: f64, b: f64) {
        let g = GivensRotation::compute(a, b);
        // Orthonormality.
        assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-14, "c²+s²≠1 for ({a},{b})");
        // Annihilation.
        let (r, zero) = g.apply(a, b);
        assert!(
            zero.abs() <= 1e-13 * r.abs().max(1e-300),
            "second component not annihilated for ({a},{b}): {zero}"
        );
        assert!((r - g.r).abs() <= 1e-13 * g.r.abs().max(1e-300));
        // r carries the magnitude.
        let hyp = a.hypot(b);
        assert!((r.abs() - hyp).abs() <= 1e-12 * hyp.max(1e-300), "|r|≠hypot for ({a},{b})");
    }

    #[test]
    fn annihilates_standard_cases() {
        check(3.0, 4.0);
        check(4.0, 3.0);
        check(-3.0, 4.0);
        check(3.0, -4.0);
        check(-3.0, -4.0);
        check(1.0, 0.0);
        check(0.0, 1.0);
        check(0.0, -1.0);
        check(1e-8, 1.0);
        check(1.0, 1e-8);
    }

    #[test]
    fn zero_zero_is_identity() {
        let g = GivensRotation::compute(0.0, 0.0);
        assert_eq!(g.c, 1.0);
        assert_eq!(g.s, 0.0);
        assert_eq!(g.r, 0.0);
    }

    #[test]
    fn extreme_magnitudes_do_not_overflow() {
        check(1e200, 1e200);
        check(1e-200, 1e-200);
        check(1e200, 1e-200);
        check(1e-200, 1e200);
        check(1e300, 5e299);
    }

    #[test]
    fn apply_preserves_norm() {
        let g = GivensRotation::compute(2.0, -7.0);
        let (x, y) = (0.3, -0.9);
        let (nx, ny) = g.apply(x, y);
        let before = x.hypot(y);
        let after = nx.hypot(ny);
        assert!((before - after).abs() < 1e-14);
    }

    #[test]
    fn apply_to_column_rotates_adjacent_rows() {
        let g = GivensRotation::compute(1.0, 1.0);
        let mut col = vec![5.0, 1.0, 1.0, 9.0];
        g.apply_to_column(&mut col, 1);
        assert_eq!(col[0], 5.0);
        assert_eq!(col[3], 9.0);
        assert!((col[1] - 2.0_f64.sqrt()).abs() < 1e-14);
        assert!(col[2].abs() < 1e-14);
    }

    #[test]
    fn huge_fault_values_stay_finite() {
        // The detector experiments scale Hessenberg entries by 1e150; the
        // rotation construction must not overflow when it meets them.
        let g = GivensRotation::compute(1e150, 0.5);
        assert!(g.c.is_finite() && g.s.is_finite() && g.r.is_finite());
        let g = GivensRotation::compute(0.5, 1e150);
        assert!(g.c.is_finite() && g.s.is_finite() && g.r.is_finite());
    }
}

//! CI performance-regression gate over the committed `BENCH_*.json`
//! baselines.
//!
//! Check mode (the CI `bench-regression` job):
//!
//! ```sh
//! BENCH_QUICK=1 BENCH_JSON=fresh.jsonl cargo bench -p sdc_bench --bench spmv_formats
//! bench_gate --baseline BENCH_spmv.json --fresh fresh.jsonl --tol 2.5
//! ```
//!
//! exits 1 if any committed median regressed by more than `--tol` (or a
//! baselined bench vanished from the dump). The tolerance is generous on
//! purpose: CI hardware varies run to run; the gate exists to catch
//! order-of-magnitude rot, not percent-level drift. A median blowing the
//! tolerance while the minimum sample stays within it is reported as
//! noise, not a regression — one loaded CI neighbour inflates medians,
//! a real kernel regression slows every sample.
//!
//! The gate prints the detected kernel ISA up front, and *warns* (never
//! fails) when the baseline's recorded `host_isa` differs — timings
//! from a scalar container and an AVX2 host are not comparable at the
//! percent level, but the generous tolerance still catches rot.
//!
//! Emit mode regenerates a committed baseline from a *full* (non-quick)
//! run on a quiet machine:
//!
//! ```sh
//! BENCH_JSON=fresh.jsonl cargo bench -p sdc_bench --bench spmv_formats
//! bench_gate --fresh fresh.jsonl --emit BENCH_spmv.json \
//!     --comment "..." --command "BENCH_JSON=... cargo bench --bench spmv_formats -p sdc_bench"
//! ```

use sdc_bench::baseline;
use sdc_campaigns::cli::{program_name, Cli};

fn main() {
    let cli = Cli::new(program_name(), "compare or regenerate committed BENCH_*.json baselines")
        .opt("baseline", "PATH", "committed baseline JSON to check against")
        .opt("fresh", "PATH", "fresh BENCH_JSON dump (JSONL) from a bench run")
        .opt("tol", "X", "fail when fresh median > X * baseline median (default 2.5)")
        .opt("emit", "PATH", "write PATH as a new baseline from --fresh instead of checking")
        .opt("comment", "TEXT", "comment field for --emit")
        .opt("command", "TEXT", "regeneration command recorded by --emit");
    let p = cli.parse_env(1);

    let run = || -> Result<bool, String> {
        let isa = sdc_sparse::simd::active();
        println!("{}: kernel ISA {}", program_name(), isa.as_str());
        let fresh_path = p.path("fresh").ok_or("--fresh is required")?;
        let fresh_text = std::fs::read_to_string(&fresh_path)
            .map_err(|e| format!("cannot read {}: {e}", fresh_path.display()))?;
        let fresh = baseline::parse_dump(&fresh_text)
            .map_err(|e| format!("{}: {e}", fresh_path.display()))?;
        if fresh.is_empty() {
            return Err(format!("{}: empty dump — did the bench run?", fresh_path.display()));
        }

        if let Some(out) = p.path("emit") {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            // Re-baselining in place: keep the existing file's comment
            // and regeneration command unless explicitly overridden, so
            // the recorded provenance survives `--emit` round trips.
            let existing = std::fs::read_to_string(&out)
                .ok()
                .and_then(|t| sdc_campaigns::json::Json::parse(&t).ok());
            let inherited = |key: &str| {
                existing
                    .as_ref()
                    .and_then(|v| v.get(key))
                    .and_then(|v| v.as_str().ok().map(str::to_string))
            };
            let comment = p
                .value("comment")
                .map(str::to_string)
                .or_else(|| inherited("comment"))
                .unwrap_or_else(|| {
                    "Committed perf baseline; CI's bench-regression job fails on gross slowdowns \
                     against these medians. Regenerate with the recorded command on a quiet host."
                        .to_string()
                });
            let command = p
                .value("command")
                .map(str::to_string)
                .or_else(|| inherited("command"))
                .unwrap_or_default();
            let text = baseline::emit_baseline(&fresh, &comment, &command, cores, isa.as_str());
            std::fs::write(&out, text)
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!("wrote {} ({} benches)", out.display(), fresh.len());
            return Ok(true);
        }

        let base_path = p.path("baseline").ok_or("--baseline is required (or use --emit)")?;
        let base_text = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("cannot read {}: {e}", base_path.display()))?;
        let base = baseline::parse_baseline(&base_text)
            .map_err(|e| format!("{}: {e}", base_path.display()))?;
        // An ISA mismatch shifts timings but is not a code regression:
        // warn so the log explains any drift, and let the generous
        // tolerance do its job.
        match base.host_isa.as_deref() {
            Some(recorded) if recorded != isa.as_str() => eprintln!(
                "{}: warning: baseline {} was recorded on a '{recorded}' host, this is '{}' — \
                 timings may shift; regenerate with --emit on this machine class",
                program_name(),
                base_path.display(),
                isa.as_str()
            ),
            Some(_) => {}
            None => eprintln!(
                "{}: warning: baseline {} records no host_isa (pre-SIMD format) — \
                 regenerate with --emit to pin it",
                program_name(),
                base_path.display()
            ),
        }
        let tol = p.get::<f64>("tol")?.unwrap_or(2.5);
        if tol.is_nan() || tol <= 0.0 {
            return Err("--tol: must be positive".into());
        }
        let report = baseline::compare(&base, &fresh, tol);
        print!("{}", report.render(tol));
        if report.pass() {
            println!(
                "gate PASS ({} benches within {tol}x of {})",
                report.rows.len(),
                base_path.display()
            );
        } else {
            println!(
                "gate FAIL: {} regression(s), {} missing bench(es)",
                report.regressions.len(),
                report.missing.len()
            );
        }
        Ok(report.pass())
    };

    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("{}: {e}", program_name());
            std::process::exit(2);
        }
    }
}

//! Calibration helper: failure-free outer iteration counts for both
//! evaluation problems at several tolerances. Used to pick the outer
//! tolerance whose failure-free count best matches the paper's
//! (9 outer for Poisson, 28 for mult_dcop_03) and recorded in
//! EXPERIMENTS.md. Not itself a paper artifact.

use sdc_bench::campaign::{failure_free, CampaignConfig};
use sdc_bench::problems;
use sdc_bench::render::CliArgs;
use sdc_gmres::prelude::SolveSummary;

fn main() {
    let args = CliArgs::parse();
    let (pm, dn) = if args.quick { (30, 2000) } else { (100, 25_187) };

    println!("== failure-free outer iterations (25 inner each) ==");
    let poisson = problems::poisson(pm);
    for tol in [3e-7, 1e-7, 3e-8] {
        let cfg = CampaignConfig { outer_tol: tol, format: args.format, ..Default::default() };
        let rep = failure_free(&poisson, &cfg);
        println!("{}: tol={tol:.0e} {}", poisson.name, SolveSummary::from_report(&rep).render());
    }
    let dcop = problems::dcop(None, dn, 1311);
    for tol in [5e-9, 3e-9, 2e-9, 1e-9] {
        let cfg = CampaignConfig {
            outer_tol: tol,
            outer_max: 200,
            format: args.format,
            ..Default::default()
        };
        let rep = failure_free(&dcop, &cfg);
        println!("{}: tol={tol:.0e} {}", dcop.name, SolveSummary::from_report(&rep).render());
    }
}

//! Regenerates **Figure 3** of the paper: outer iterations to convergence
//! for the Poisson problem under a single SDC event, swept over every
//! aggregate inner iteration, for the three fault classes, at the first
//! (3a) and last (3b) Modified Gram-Schmidt positions — plus the §VII-E
//! detector comparison.
//!
//! Paper setup: `gallery('poisson',100)`, 25 inner iterations per outer
//! iteration, failure-free = 9 outer (ours matches at outer tolerance
//! 1e-7 with b = A·1).
//!
//! A thin front-end over the campaign engine: builds the paper-shaped
//! spec and runs it. With `--out PATH` the JSONL artifact persists and
//! an interrupted run resumes; `campaign report --out PATH` re-renders
//! it without re-solving.
//!
//! Usage: `fig3_poisson [--quick] [--stride N] [--csv DIR] [--out PATH]`

use sdc_bench::figure::run_figure;
use sdc_bench::render::CliArgs;
use sdc_campaigns::{CampaignSpec, ProblemSpec};

fn main() {
    let args = CliArgs::parse();
    let (m, inner, tol, stride) = if args.quick {
        (24, 10, 1e-7, args.stride.unwrap_or(3))
    } else {
        (100, 25, 1e-7, args.stride.unwrap_or(1))
    };
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create csv dir");
    }
    let spec = CampaignSpec {
        inner_iters: inner,
        outer_tol: tol,
        outer_max: 150,
        stride,
        format: args.format,
        precond: args.precond,
        ..CampaignSpec::paper_shape("fig3", vec![ProblemSpec::Poisson { m }])
    };
    run_figure(
        "fig3",
        &spec,
        args.csv_dir.as_deref(),
        args.out.as_deref(),
        args.trace_out.as_deref(),
        75,
    );
}

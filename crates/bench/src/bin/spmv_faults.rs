//! Extension experiment: SDC in the sparse matrix–vector product, and
//! the complementary blind spots of two detectors.
//!
//! Prior work (ref. 12, Shantharam et al., ref. 14, Sloan et al.) studies faults
//! in SpMV; the paper instead bounds the orthogonalization coefficients.
//! This binary injects single faults into SpMV *output elements* during
//! FT-GMRES inner solves and compares three defenses:
//!
//! * the paper's Hessenberg bound (catches only corruption large enough
//!   to push a projection coefficient past `‖A‖_F`),
//! * the Huang–Abraham column checksum on every inner product
//!   (catches any corruption above its rounding floor, costs `O(n)` per
//!   apply),
//! * the flexible outer iteration itself (runs through whatever neither
//!   detector catches).
//!
//! Usage: `spmv_faults [--quick]`

use sdc_bench::problems;
use sdc_bench::render::CliArgs;
use sdc_faults::trigger::LoopPosition;
use sdc_faults::{FaultModel, Kernel, SingleFaultInjector, SitePredicate, Trigger};
use sdc_gmres::instrumented::InstrumentedSpmv;
use sdc_gmres::prelude::*;

fn spmv_site(apply: usize, row: usize) -> SitePredicate {
    SitePredicate {
        kernel: Some(Kernel::SpMv),
        outer_iteration: None,
        inner_solve: None,
        inner_iteration: Some(apply),
        loop_position: LoopPosition::Index(row + 1),
    }
}

fn main() {
    let args = CliArgs::parse();
    let m = if args.quick { 20 } else { 60 };
    let problem = problems::poisson(m);
    let a = &problem.a;
    let b = &problem.b;
    let n = a.nrows();

    // Inner-solve-style fixed-iteration GMRES so every run does the same
    // work; faults strike the SpMV of iteration 6 at a middle row.
    let row = n / 2;
    let apply = 7; // initial residual + iterations 1..6 => 7th apply
    let faults: &[(&str, FaultModel)] = &[
        ("y += 1e-12 (sub-floor)", FaultModel::Offset(1e-12)),
        ("y += 1e-3", FaultModel::Offset(1e-3)),
        ("y += 1.0", FaultModel::Offset(1.0)),
        ("y *= 10", FaultModel::ScaleRelative(10.0)),
        ("y := 1e3", FaultModel::SetValue(1e3)),
        ("y := 1e120", FaultModel::SetValue(1e120)),
        ("bit flip 62 (exponent)", FaultModel::BitFlip { bit: 62 }),
        ("y := NaN", FaultModel::SetNan),
    ];

    let cfg = GmresConfig {
        tol: 0.0,
        max_iters: 25,
        detector: Some(SdcDetector::with_frobenius_bound(a, DetectorResponse::Record)),
        ..Default::default()
    };
    // Fault-free reference. The --format choice picks the SpMV engine
    // (converted once, shared by every wrapper below); sites, checksums
    // and results are bitwise format-independent.
    let sell = match problem.resolved_format(args.format) {
        sdc_sparse::SparseFormat::Sell => Some(sdc_sparse::SellMatrix::from_csr(a)),
        _ => None,
    };
    fn engine<'a>(
        op: InstrumentedSpmv<'a>,
        sell: &'a Option<sdc_sparse::SellMatrix>,
    ) -> InstrumentedSpmv<'a> {
        match sell {
            Some(s) => op.with_sell(s),
            None => op,
        }
    }
    let op = engine(InstrumentedSpmv::new(a, &sdc_faults::NoFaults), &sell).with_checksum(1e-12);
    let (x_ref, _) = gmres_solve(&op, b, None, &cfg);

    println!("single SDC in one SpMV output element (row {row}, apply {apply}) during GMRES(25)");
    println!("matrix: {} | ‖A‖_F = {:.1} | engine: {}\n", problem.name, a.norm_fro(), op.format());
    println!(
        "{:<24} {:>10} {:>10} {:>14} {:>12}",
        "fault", "bound-det", "checksum", "iterate-drift", "finite"
    );
    for (label, model) in faults {
        let inj = SingleFaultInjector::new(*model, Trigger::once(spmv_site(apply, row)));
        let op = engine(InstrumentedSpmv::new(a, &inj), &sell).with_checksum(1e-12);
        let (x, rep) = gmres_solve_instrumented(
            &op,
            b,
            None,
            &cfg,
            &sdc_faults::NoFaults,
            SiteContext::default(),
        );
        let drift: f64 = x.iter().zip(x_ref.iter()).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        println!(
            "{label:<24} {:>10} {:>10} {:>14.3e} {:>12}",
            !rep.detector_events.is_empty(),
            !op.checksum_events().is_empty(),
            drift,
            x.iter().all(|v| v.is_finite()),
        );
        assert_eq!(inj.fired_count(), 1, "fault must commit");
    }

    println!("\nreading: the checksum audits the *product* (catches everything above its");
    println!("rounding floor, including faults the bound can never see); the Hessenberg");
    println!("bound audits the *theory* (catches exactly the coefficient values that are");
    println!("impossible, at no per-apply cost). Their blind spots are complementary, and");
    println!("the flexible outer iteration runs through whatever both miss.");
}

//! Ablation of §VI-D: the three projected least-squares policies under
//! Hessenberg corruption.
//!
//! The paper implements three approaches to solving `R y = z` and
//! recommends 1 or 3, arguing approach 2 "conceals the natural error
//! detection that comes with IEEE-754 floating-point data, without
//! detecting inaccuracy or bounding the error". This binary measures all
//! three, both inside FT-GMRES inner solves under the standard fault
//! campaign and on directly corrupted triangular systems.
//!
//! Usage: `ablation_lsq [--quick]`

use sdc_bench::campaign::{failure_free, run_sweep, CampaignConfig};
use sdc_bench::problems;
use sdc_bench::render::CliArgs;
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::matrix::DenseMatrix;
use sdc_dense::vector;
use sdc_faults::campaign::{FaultClass, MgsPosition};

fn policy_name(p: LstsqPolicy) -> &'static str {
    match p {
        LstsqPolicy::Standard => "1: standard triangular solve",
        LstsqPolicy::FallbackOnNonFinite { .. } => "2: fallback on Inf/NaN",
        LstsqPolicy::RankRevealing { .. } => "3: always rank-revealing (SVD)",
    }
}

fn main() {
    let args = CliArgs::parse();
    let (m, inner, stride) = if args.quick { (16, 8, 5) } else { (40, 25, 5) };

    println!("== §VI-D ablation: projected least-squares policies ==\n");

    // Part 1: micro-level behaviour on a corrupted triangular factor.
    println!("-- corrupted R y = z micro-benchmark --");
    let policies = [
        LstsqPolicy::Standard,
        LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 },
        LstsqPolicy::RankRevealing { tol: 1e-12 },
    ];
    // A well-conditioned factor whose (2,2) entry is hit by each class.
    let base = DenseMatrix::from_rows(&[
        &[4.0, 1.0, -0.5, 0.2],
        &[0.0, 3.0, 0.7, -0.1],
        &[0.0, 0.0, 2.0, 0.4],
        &[0.0, 0.0, 0.0, 1.5],
    ]);
    let z = [1.0, -2.0, 0.5, 0.25];
    let reference = solve_projected(&base, &z, LstsqPolicy::Standard).unwrap().y;
    for class in FaultClass::all() {
        println!("  fault on R[2,2]: {}", class.label());
        let mut r = base.clone();
        r[(2, 2)] *= class.factor();
        for policy in policies {
            match solve_projected(&r, &z, policy) {
                Ok(out) => {
                    let dev: f64 = out
                        .y
                        .iter()
                        .zip(reference.iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    println!(
                        "    {:<36} ‖y‖={:9.3e}  max|y-y_ref|={:9.3e}  rank-revealing used: {}",
                        policy_name(policy),
                        vector::nrm2(&out.y),
                        dev,
                        out.report.used_rank_revealing,
                    );
                }
                Err(e) => println!("    {:<36} LOUD ERROR: {e}", policy_name(policy)),
            }
        }
    }

    // Part 2: end-to-end — the full fault campaign, inner solves using
    // each policy.
    println!("\n-- end-to-end: FT-GMRES campaign per policy (class-1 faults, first MGS) --");
    let problem = problems::poisson(m);
    for policy in policies {
        let cfg = CampaignConfig {
            inner_iters: inner,
            outer_tol: 1e-7,
            stride,
            inner_lsq: policy,
            format: args.format,
            ..Default::default()
        };
        let ff = failure_free(&problem, &cfg);
        let res = run_sweep(&problem, &cfg, FaultClass::Huge, MgsPosition::First, ff.iterations);
        println!(
            "  {:<36} failure-free={} worst={} (+{}) non-converged={} points={}",
            policy_name(policy),
            ff.iterations,
            res.max_outer(),
            res.max_increase(),
            res.count_failures(),
            res.points.len(),
        );
    }
    println!("\n(The paper recommends approaches 1 or 3; approach 2's weakness is that a");
    println!(" finite-but-huge y passes through it unchecked — see the micro-benchmark.)");
}

//! The unified campaign driver: run, resume, report and diff SDC
//! campaigns described by declarative JSON specs.
//!
//! ```text
//! campaign run    --spec spec.json --out artifact.jsonl [--max-units N] [--shard N] [--threads N] [--quiet]
//! campaign resume --spec spec.json --out artifact.jsonl [--max-units N] [--shard N] [--threads N] [--quiet]
//! campaign report --out artifact.jsonl [--plots] [--csv DIR]
//! campaign diff   --out artifact.jsonl --baseline other.jsonl
//! campaign example-spec
//! ```
//!
//! `run` refuses to overwrite an existing artifact; `resume` continues
//! one (skipping completed units, truncating a partial tail) and
//! produces a file byte-identical to an uninterrupted run. `report` and
//! `diff` never solve anything — they work from stored artifacts alone.
//! `example-spec` prints a commented starting spec to stdout.

use sdc_bench::render::{ascii_plot, scenario_csv_path, write_sweep_csv};
use sdc_campaigns::cli::Cli;
use sdc_campaigns::{CampaignData, CampaignSpec, ProblemSpec, RunOptions};
use std::path::Path;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(1);
}

fn load_spec(path: &Path) -> CampaignSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read spec {}: {e}", path.display())));
    CampaignSpec::parse(&text)
        .unwrap_or_else(|e| fail(format_args!("bad spec {}: {e}", path.display())))
}

fn run_or_resume(resume: bool) {
    let cli = Cli::new(
        if resume { "campaign resume" } else { "campaign run" },
        "execute a campaign spec, streaming a resumable JSONL artifact",
    )
    .opt("spec", "FILE", "campaign spec (JSON)")
    .opt("out", "PATH", "artifact output path (JSONL)")
    .opt("max-units", "N", "stop after N new experiments (checkpoint early)")
    .opt("shard", "N", "units per parallel shard/flush (default 64)")
    .opt("trace-out", "PATH", "write per-unit deterministic solve traces (JSONL)")
    .switch("quiet", "suppress progress output")
    .with_threads()
    .with_simd();
    let p = cli.parse_env(2);
    p.apply_threads().unwrap_or_else(|e| fail(e));
    p.apply_simd().unwrap_or_else(|e| fail(e));
    let spec_path = p.path("spec").unwrap_or_else(|| fail("--spec is required"));
    let out = p.path("out").unwrap_or_else(|| fail("--out is required"));
    let spec = load_spec(&spec_path);
    let mut opts = RunOptions {
        quiet: p.has("quiet"),
        max_units: p.get::<usize>("max-units").unwrap_or_else(|e| fail(e)),
        trace_out: p.path("trace-out"),
        ..Default::default()
    };
    if let Some(shard) = p.get::<usize>("shard").unwrap_or_else(|e| fail(e)) {
        opts.shard_size = shard;
    }
    match sdc_campaigns::run(&spec, &out, resume, &opts) {
        Ok(s) => {
            println!(
                "campaign '{}': {} units total, {} already done, {} ran, {} remaining -> {}",
                spec.name,
                s.total_units,
                s.skipped_units,
                s.ran_units,
                s.remaining_units,
                out.display()
            );
            if !s.is_complete() {
                println!(
                    "(incomplete; continue with: campaign resume --spec {} --out {})",
                    spec_path.display(),
                    out.display()
                );
            }
        }
        Err(e) => fail(e),
    }
}

fn report() {
    let cli = Cli::new("campaign report", "render a stored artifact; no re-solving")
        .opt("out", "PATH", "artifact to report on")
        .opt("csv", "DIR", "also write per-series CSV files into DIR")
        .switch("plots", "include ASCII sweep plots");
    let p = cli.parse_env(2);
    let out = p.path("out").unwrap_or_else(|| fail("--out is required"));
    let data = CampaignData::load(&out).unwrap_or_else(|e| fail(e));
    print!("{}", sdc_campaigns::render_report(&data));
    if p.has("plots") {
        for (scenario, series) in &data.series {
            if !series.points.is_empty() {
                println!("\n{}", ascii_plot(series, data.spec.inner_iters, 75));
            }
            let _ = scenario;
        }
    }
    if let Some(dir) = p.path("csv") {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(format_args!("cannot create {}: {e}", dir.display())));
        for (scenario, series) in &data.series {
            if series.points.is_empty() {
                continue;
            }
            let file = scenario_csv_path(&dir, &data.spec.name, scenario);
            write_sweep_csv(&file, series)
                .unwrap_or_else(|e| fail(format_args!("csv write failed: {e}")));
        }
    }
}

fn diff() {
    let cli = Cli::new("campaign diff", "compare two artifacts series by series")
        .opt("out", "PATH", "artifact to compare")
        .opt("baseline", "PATH", "reference artifact");
    let p = cli.parse_env(2);
    let out = p.path("out").unwrap_or_else(|| fail("--out is required"));
    let baseline = p.path("baseline").unwrap_or_else(|| fail("--baseline is required"));
    let a = CampaignData::load(&baseline).unwrap_or_else(|e| fail(e));
    let b = CampaignData::load(&out).unwrap_or_else(|e| fail(e));
    print!("{}", sdc_campaigns::render_diff(&a, &b));
}

fn example_spec() {
    let spec = CampaignSpec {
        stride: 5,
        ..CampaignSpec::paper_shape("example", vec![ProblemSpec::Poisson { m: 24 }])
    };
    println!("{}", spec.to_json().to_line());
}

fn main() {
    let sub = std::env::args().nth(1).unwrap_or_default();
    match sub.as_str() {
        "run" => run_or_resume(false),
        "resume" => run_or_resume(true),
        "report" => report(),
        "diff" => diff(),
        "example-spec" => example_spec(),
        other => {
            eprintln!(
                "usage: campaign <run|resume|report|diff|example-spec> [flags]\n\
                 (got '{other}'; each subcommand supports --help)"
            );
            std::process::exit(2);
        }
    }
}

//! Regenerates **Table I** of the paper: sample-matrix characteristics
//! and the "potential fault detectors" (`‖A‖₂`, `‖A‖_F`).
//!
//! Prints our measured values side by side with the values the paper
//! reports for `gallery('poisson',100)` and `mult_dcop_03`. The Poisson
//! values must match closely (same matrix); the synthetic circuit column
//! documents how faithful the stand-in is (see DESIGN.md §3).
//!
//! Usage: `table1 [--quick] [--matrix path.mtx]`

use sdc_bench::render::{two_column_table, CliArgs};
use sdc_gmres::prelude::*;
use sdc_sparse::{norm_est, structure, CsrMatrix, FormatMatrix, SparseFormat};

struct Characteristics {
    rows: usize,
    cols: usize,
    nnz: usize,
    struct_full_rank: bool,
    pattern_symmetric: bool,
    numerically_symmetric: bool,
    positive_definite: Option<bool>,
    cond_estimate: f64,
    norm2: f64,
    norm_fro: f64,
}

fn characterize(
    a: &CsrMatrix,
    spd_known: Option<bool>,
    estimate_cond: bool,
    format: SparseFormat,
) -> Characteristics {
    let norm2 = norm_est::norm2_est(a, 3000, 1e-12).value;
    let cond_estimate = if estimate_cond {
        let smin = sigma_min_estimate(a, format);
        if smin > 0.0 {
            norm2 / smin
        } else {
            f64::INFINITY
        }
    } else {
        f64::NAN
    };
    Characteristics {
        rows: a.nrows(),
        cols: a.ncols(),
        nnz: a.nnz(),
        struct_full_rank: structure::is_structurally_full_rank(a),
        pattern_symmetric: a.is_pattern_symmetric(),
        numerically_symmetric: a.is_numerically_symmetric(1e-12),
        positive_definite: spd_known,
        cond_estimate,
        norm2,
        norm_fro: a.norm_fro(),
    }
}

/// Estimate of σ_min(A) by inverse power iteration on `AᵀA`, with the
/// inverse applied through FT-GMRES solves. If the solves stall (severely
/// ill-conditioned operators), the returned value is an *upper* bound on
/// σ_min, i.e. the condition estimate is a lower bound.
fn sigma_min_estimate(a: &CsrMatrix, format: SparseFormat) -> f64 {
    let n = a.nrows();
    let ft = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-10, max_outer: 80, ..Default::default() },
        inner_iters: 25,
        ..Default::default()
    };
    // The inner FT-GMRES solves run on the chosen engine (results are
    // bitwise format-independent; this only affects speed).
    let a = FormatMatrix::convert(a, format);
    let at = FormatMatrix::from_csr(a.to_csr().transpose(), format);
    let a = &a;
    let at = &at;
    let mut x: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.0) * 0.61).sin() + 0.3).collect();
    sdc_dense::vector::normalize(&mut x);
    let mut est = 0.0;
    for _ in 0..3 {
        // y = A⁻¹ x, then w = A⁻ᵀ y  ⇒  w = (AᵀA)⁻¹ x.
        let (y, _) = sdc_gmres::ftgmres::ftgmres_solve(a, &x, None, &ft);
        let (w, _) = sdc_gmres::ftgmres::ftgmres_solve(&at, &y, None, &ft);
        let wnorm = sdc_dense::vector::nrm2(&w);
        if wnorm == 0.0 || !wnorm.is_finite() {
            return 0.0;
        }
        est = (1.0 / wnorm).sqrt();
        x = w;
        sdc_dense::vector::normalize(&mut x);
    }
    est
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

fn main() {
    let args = CliArgs::parse();
    let (pm, dn) = if args.quick { (30, 2000) } else { (100, 25_187) };
    let estimate_cond = !args.quick;

    eprintln!("building problems...");
    let poisson = sdc_sparse::gallery::poisson2d(pm);
    let dcop_raw = match &args.matrix {
        Some(p) => sdc_sparse::io::read_matrix_market(p).expect("failed to read --matrix"),
        None => sdc_sparse::gallery::circuit_mna(&sdc_sparse::gallery::CircuitMnaConfig {
            nodes: dn,
            seed: 1311,
            ..Default::default()
        }),
    };

    eprintln!("characterizing Poisson...");
    let cp = characterize(&poisson, Some(true), estimate_cond, args.format);
    eprintln!("characterizing circuit matrix (condition estimate may take minutes)...");
    let cd = characterize(&dcop_raw, Some(false), estimate_cond, args.format);

    // Not a paper row, but the same structural data drives the SpMV
    // engine choice; report what --format resolves to for each matrix.
    let engine = |a: &CsrMatrix| match args.format {
        SparseFormat::Auto => format!("{} (auto)", sdc_sparse::auto_format(a)),
        f => f.to_string(),
    };
    let (ep, ed) = (engine(&poisson), engine(&dcop_raw));

    let fmt = |v: f64| format!("{v:.4}");
    let rows = vec![
        (
            "Properties".to_string(),
            format!("Poisson {pm}x{pm} (paper: 100x100)"),
            "circuit (paper: mult_dcop_03)".to_string(),
        ),
        (
            "number of rows".to_string(),
            format!("{} (paper 10,000)", cp.rows),
            format!("{} (paper 25,187)", cd.rows),
        ),
        (
            "number of columns".to_string(),
            format!("{} (paper 10,000)", cp.cols),
            format!("{} (paper 25,187)", cd.cols),
        ),
        (
            "nonzeros".to_string(),
            format!("{} (paper 49,600)", cp.nnz),
            format!("{} (paper 193,216)", cd.nnz),
        ),
        (
            "structural full rank?".to_string(),
            format!("{} (paper yes)", yesno(cp.struct_full_rank)),
            format!("{} (paper yes)", yesno(cd.struct_full_rank)),
        ),
        (
            "nonzero pattern symmetry".to_string(),
            format!(
                "{} (paper symmetric)",
                if cp.pattern_symmetric && cp.numerically_symmetric {
                    "symmetric"
                } else {
                    "nonsymmetric"
                }
            ),
            format!(
                "{} (paper nonsymmetric)",
                if cd.numerically_symmetric { "symmetric" } else { "nonsymmetric" }
            ),
        ),
        ("type".to_string(), "real".to_string(), "real".to_string()),
        (
            "positive definite?".to_string(),
            format!("{} (paper yes)", yesno(cp.positive_definite.unwrap_or(false))),
            format!("{} (paper no)", yesno(cd.positive_definite.unwrap_or(false))),
        ),
        (
            // The σ_min estimator (inverse power iteration through
            // iterative solves) upper-bounds σ_min when the solves stall
            // on severely ill-conditioned operators, so the printed
            // condition number is a *lower bound* there.
            "condition number (est., ≥)".to_string(),
            format!("{:.4e} (paper 6.0107e3)", cp.cond_estimate),
            format!("{:.4e} (paper 7.27261e13)", cd.cond_estimate),
        ),
        (
            "‖A‖₂  (fault detector)".to_string(),
            format!("{} (paper 8)", fmt(cp.norm2)),
            format!("{} (paper 17.1762)", fmt(cd.norm2)),
        ),
        (
            "‖A‖_F (fault detector)".to_string(),
            format!("{} (paper 446)", fmt(cp.norm_fro)),
            format!("{} (paper 42.4179)", fmt(cd.norm_fro)),
        ),
        ("SpMV engine (--format)".to_string(), ep, ed),
    ];
    println!("{}", two_column_table("TABLE I: Sample Matrices", &rows));

    if pm == 100 {
        let (lmin, lmax, cond) = sdc_sparse::gallery::poisson2d_spectrum(100);
        println!("Poisson exact spectrum: λ_min = {lmin:.6e}, λ_max = {lmax:.6e}, κ₂ = {cond:.4e}");
        println!(
            "(The paper's 6.0107e3 is Matlab condest's 1-norm estimate; the exact 2-norm κ is {cond:.1e}.)"
        );
    }
}

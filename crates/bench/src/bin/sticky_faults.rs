//! Extension experiment: beyond the single-transient model — *sticky*
//! and *persistent* faults (the other leaves of the paper's Fig.-1
//! taxonomy).
//!
//! The paper's analysis is explicitly a baseline for conjecturing about
//! multiple SDC events (§II-A, item 2). This binary measures that
//! conjecture: the same FT-GMRES stack under (a) sticky faults — the
//! corruptor fires on every matching site within a window of inner
//! iterations, then the "hardware" heals — and (b) persistent faults.
//! Three defense configurations are compared: no detector, the Eq.-3
//! detector with inner restarts, and detector + Halt (loud stop).
//!
//! Usage: `sticky_faults [--quick]`

use sdc_bench::render::CliArgs;
use sdc_faults::trigger::{LoopPosition, SitePredicate, Trigger};
use sdc_faults::{FaultModel, SingleFaultInjector};
use sdc_gmres::prelude::*;
use sdc_sparse::gallery;

fn main() {
    let args = CliArgs::parse();
    let quick = args.quick;
    let m = if quick { 16 } else { 50 };
    let inner = if quick { 8 } else { 25 };

    let a = gallery::poisson2d(m);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    // Solve through the chosen storage engine (bitwise-invisible; CSR
    // stays the source for detector bounds and residual checks).
    let op = sdc_sparse::FormatMatrix::convert(&a, args.format);

    let base = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-8, max_outer: 80, ..Default::default() },
        inner_iters: inner,
        ..Default::default()
    };
    let (_, ff) = sdc_gmres::ftgmres::ftgmres_solve(&op, &b, None, &base);
    println!(
        "Poisson {m}x{m}, {inner} inner iterations/outer; failure-free = {} outer\n",
        ff.iterations
    );
    println!(
        "{:<34} {:<14} {:>6} {:>9} {:>9} {:>10} {:>12}",
        "fault duration", "defense", "outer", "detected", "restarts", "rejected", "outcome"
    );

    // Sticky windows of growing duration (number of corrupted matches of
    // h_{1,j} sites), plus fully persistent corruption.
    let durations: &[(&str, Option<(u64, u64)>)] = &[
        ("transient (1 event)", Some((1, 1))),
        ("sticky (5 events)", Some((1, 5))),
        ("sticky (25 events)", Some((1, 25))),
        ("sticky (125 events)", Some((1, 125))),
        ("persistent (all events)", None),
    ];

    for &(label, window) in durations {
        for (defense, detector) in [
            ("none", None),
            ("detector+restart", Some(DetectorResponse::RestartInner)),
            ("detector+halt", Some(DetectorResponse::Halt)),
        ] {
            let pred = SitePredicate {
                kernel: Some(sdc_faults::Kernel::OrthoDot),
                outer_iteration: None,
                inner_solve: None,
                inner_iteration: None,
                loop_position: LoopPosition::First,
            };
            let trigger = match window {
                Some((from, to)) => Trigger::sticky(pred, from, to),
                None => Trigger::always(pred),
            };
            let inj = SingleFaultInjector::new(FaultModel::CLASS1_HUGE, trigger);
            let mut cfg = base;
            cfg.inner_detector = detector.map(|resp| SdcDetector::with_frobenius_bound(&a, resp));
            let (x, rep) =
                sdc_gmres::ftgmres::ftgmres_solve_instrumented(&op, &b, None, &cfg, &inj);
            let mut r = vec![0.0; b.len()];
            sdc_gmres::operator::residual(&a, &b, &x, &mut r);
            let rel = sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(&b).max(1e-300);
            let outcome = match &rep.outcome {
                SolveOutcome::Converged | SolveOutcome::InvariantSubspace => {
                    if rel <= 1e-6 {
                        "correct".to_string()
                    } else {
                        format!("WRONG ({rel:.1e})")
                    }
                }
                SolveOutcome::Halted(_) => "halted-loud".to_string(),
                other => other.label().chars().take(12).collect(),
            };
            println!(
                "{label:<34} {defense:<14} {:>6} {:>9} {:>9} {:>10} {:>12}",
                rep.iterations,
                rep.detector_events.len(),
                rep.detector_restarts,
                rep.inner_rejections,
                outcome
            );
        }
        println!();
    }

    println!("reading: FT-GMRES runs through short sticky bursts with modest cost; under");
    println!("persistent corruption the restart response saturates (restart cap) and the");
    println!("honest outcomes are either slow convergence on rejected inner solves or a");
    println!("loud halt — never a silently wrong answer.");
}

//! Regenerates **Figure 4** of the paper: outer iterations to convergence
//! for the circuit-simulation problem under a single SDC event, swept
//! over every aggregate inner iteration, for the three fault classes, at
//! the first (4a) and last (4b) Modified Gram-Schmidt positions — plus
//! the §VII-E detector comparison.
//!
//! Paper setup: `mult_dcop_03` (25,187 rows), 25 inner iterations per
//! outer iteration, failure-free = 28 outer. Our synthetic circuit
//! stand-in (DESIGN.md §3) reaches 27 failure-free outer iterations at
//! outer tolerance 5e-9 with b = A·1. Pass `--matrix mult_dcop_03.mtx`
//! to run on the real matrix when available.
//!
//! The default stride is 5 (the sweep is ~4,000 solves at stride 1);
//! pass `--stride 1` for the paper-resolution figure. With `--out PATH`
//! the JSONL artifact persists and an interrupted run resumes — worth it
//! here: the full-resolution fig4 is the longest campaign in the repo.
//!
//! Usage: `fig4_dcop [--quick] [--stride N] [--csv DIR] [--matrix PATH] [--out PATH]`

use sdc_bench::figure::run_figure;
use sdc_bench::render::CliArgs;
use sdc_campaigns::{CampaignSpec, ProblemSpec};

fn main() {
    let args = CliArgs::parse();
    let (nodes, inner, tol, stride) = if args.quick {
        (2000, 10, 1e-7, args.stride.unwrap_or(5))
    } else {
        (25_187, 25, 5e-9, args.stride.unwrap_or(5))
    };
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create csv dir");
    }
    let problem = match &args.matrix {
        Some(path) => ProblemSpec::MatrixMarket { path: path.clone(), equilibrate: true },
        None => ProblemSpec::Dcop { nodes, seed: 1311 },
    };
    let spec = CampaignSpec {
        inner_iters: inner,
        outer_tol: tol,
        outer_max: 200,
        stride,
        format: args.format,
        precond: args.precond,
        ..CampaignSpec::paper_shape("fig4", vec![problem])
    };
    run_figure(
        "fig4",
        &spec,
        args.csv_dir.as_deref(),
        args.out.as_deref(),
        args.trace_out.as_deref(),
        75,
    );
}

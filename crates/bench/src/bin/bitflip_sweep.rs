//! Extension experiment (§III-A-2): bit flips are a subset of the
//! numerical SDC model.
//!
//! The paper argues that injecting bit flips is unnecessary because any
//! flip "could have been achieved by merely setting the memory location
//! equal to some value". This binary makes the containment quantitative:
//!
//! 1. For a representative Hessenberg entry it maps all 64 single-bit
//!    flips to the relative error they induce and to whether the `‖A‖_F`
//!    bound detects them.
//! 2. It then runs an FT-GMRES campaign injecting *actual bit flips*
//!    (one per solve, swept over bit positions) and shows the same
//!    run-through/detect dichotomy as the magnitude-class campaign.
//!
//! Usage: `bitflip_sweep [--quick]`

use rayon::prelude::*;
use sdc_bench::problems;
use sdc_bench::render::CliArgs;
use sdc_faults::bitflip::{bitflip_anatomy, summarize_against_bound, BitRegion};
use sdc_faults::trigger::LoopPosition;
use sdc_faults::{FaultModel, SingleFaultInjector, SitePredicate, Trigger};
use sdc_gmres::prelude::*;

fn main() {
    let args = CliArgs::parse();
    let (m, inner) = if args.quick { (16, 8) } else { (100, 25) };

    let problem = problems::poisson(m);
    // The storage engine is a pure performance knob (SELL SpMV is
    // bitwise identical to CSR); every count below is format-invariant.
    let op = problem.operator(args.format);
    let bound = problem.a.norm_fro();

    println!(
        "== bit-flip anatomy of a representative h_ij (value 3.7), bound ‖A‖_F = {bound:.1} =="
    );
    let outcomes = bitflip_anatomy(3.7);
    let summary = summarize_against_bound(&outcomes, bound);
    println!(
        "  detectable: {} / 64   (of which non-finite: {})   silent: {}",
        summary.detectable, summary.non_finite, summary.undetectable
    );
    println!("  bit | region   | corrupted value | magnification | detected by bound");
    for o in outcomes.iter().rev() {
        if o.bit >= 48 || o.bit == 0 {
            println!(
                "  {:>3} | {:<8} | {:>15.6e} | {:>13.3e} | {}",
                o.bit,
                match o.region {
                    BitRegion::Sign => "sign",
                    BitRegion::Exponent => "exponent",
                    BitRegion::Mantissa => "mantissa",
                },
                o.value,
                o.magnification,
                o.detectable_by_bound(bound)
            );
        }
    }

    // End-to-end: inject one real bit flip per solve into h_{1,2} of the
    // second inner solve, sweeping the bit position.
    println!("\n== FT-GMRES under single real bit flips (h_1,2 of inner solve 2) ==");
    let ft = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-7, max_outer: 150, ..Default::default() },
        inner_iters: inner,
        inner_detector: Some(SdcDetector::with_frobenius_bound(
            &problem.a,
            DetectorResponse::RestartInner,
        )),
        ..Default::default()
    };
    let (_, ff) = sdc_gmres::ftgmres::ftgmres_solve(op, &problem.b, None, &ft);
    println!(
        "  failure-free outer iterations: {} (engine: {})",
        ff.iterations,
        problem.resolved_format(args.format)
    );

    let rows: Vec<(u8, usize, bool, bool, bool)> = (0u8..64)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&bit| {
            let inj = SingleFaultInjector::new(
                FaultModel::BitFlip { bit },
                Trigger::once(SitePredicate::mgs_site(2, 2, LoopPosition::First)),
            );
            let (x, rep) =
                sdc_gmres::ftgmres::ftgmres_solve_instrumented(op, &problem.b, None, &ft, &inj);
            let mut r = vec![0.0; problem.b.len()];
            sdc_gmres::operator::residual(&problem.a, &problem.b, &x, &mut r);
            let ok = sdc_dense::vector::nrm2(&r) <= 1e-6 * sdc_dense::vector::nrm2(&problem.b);
            (
                bit,
                rep.iterations,
                rep.detected_anything(),
                rep.outcome.is_converged() && ok,
                !rep.injections.is_empty(),
            )
        })
        .collect();

    println!("  bit | outer iterations | detected | solved correctly | committed");
    let mut max_outer = ff.iterations;
    for (bit, outer, detected, correct, committed) in &rows {
        max_outer = max_outer.max(*outer);
        if *bit >= 48 || *bit == 0 || *detected {
            println!("  {bit:>3} | {outer:>16} | {detected:>8} | {correct:>16} | {committed}");
        }
    }
    let n_detected = rows.iter().filter(|r| r.2).count();
    let n_correct = rows.iter().filter(|r| r.3).count();
    println!(
        "\n  summary: {}/64 flips detected, {}/64 solves correct, worst outer = {} (+{})",
        n_detected,
        n_correct,
        max_outer,
        max_outer - ff.iterations
    );
    println!("  (exponent-region flips either blow past the ‖A‖_F bound — detected — or");
    println!("   shrink the value — run through; mantissa flips are silent and harmless.)");
}

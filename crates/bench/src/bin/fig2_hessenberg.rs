//! Regenerates **Figure 2** of the paper: the structure of the projected
//! matrix `H` — tridiagonal for an SPD input, full upper Hessenberg for a
//! nonsymmetric input.
//!
//! The paper uses this structural difference to explain why the Poisson
//! experiments are so sensitive to faults on the *first* MGS iteration:
//! for SPD systems the entries `h_{1,j}, j ≥ 3` should be exactly zero,
//! so corrupting one injects energy where theory says none can exist.
//!
//! Usage: `fig2_hessenberg [--quick]`

use sdc_bench::render::CliArgs;
use sdc_gmres::arnoldi::{arnoldi, tridiagonality_defect};
use sdc_gmres::operator::LinearOperator;
use sdc_gmres::ortho::OrthoStrategy;
use sdc_sparse::{CsrMatrix, FormatMatrix, SparseFormat};

fn structure_diagram(h: &sdc_dense::DenseMatrix, k: usize, tol: f64) -> String {
    let mut out = String::new();
    let k = k.min(h.cols());
    for r in 0..=k.min(h.rows() - 1) {
        out.push_str("    ");
        for c in 0..k {
            let v = h[(r, c)].abs();
            out.push(if v > tol { 'x' } else { '0' });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn analyze(name: &str, a: &CsrMatrix, steps: usize, format: SparseFormat) {
    // The Arnoldi process only needs `y = A x`; run it through the
    // chosen storage engine (bitwise-invisible to H's structure).
    let op = FormatMatrix::convert(a, format);
    let a: &dyn LinearOperator = &op;
    let n = a.nrows();
    let v0: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.317).sin() + 0.73).collect();
    let dec = arnoldi(a, &v0, steps, OrthoStrategy::Mgs);
    let scale = dec.h.norm_max();
    let tol = 1e-10 * scale;
    let defect = tridiagonality_defect(&dec.h);
    // Count entries strictly above the first superdiagonal that are
    // numerically nonzero.
    let mut above = 0usize;
    let mut total = 0usize;
    for c in 0..dec.h.cols() {
        for r in 0..c.saturating_sub(1) {
            total += 1;
            if dec.h[(r, c)].abs() > tol {
                above += 1;
            }
        }
    }
    println!("  {name}: {} Arnoldi steps", dec.h.cols());
    println!("{}", structure_diagram(&dec.h, 8, tol));
    println!("    tridiagonality defect (max |h_ij|, i<j-1, / ‖H‖_max) = {defect:.3e}");
    println!("    nonzero entries above the superdiagonal: {above}/{total}");
    println!();
}

fn main() {
    let args = CliArgs::parse();
    let (pm, dn, steps) = if args.quick { (20, 800, 15) } else { (100, 25_187, 25) };

    println!("FIGURE 2: upper Hessenberg vs tridiagonal structure\n");
    println!("SPD input (Poisson {pm}x{pm}) -- H should be tridiagonal:");
    analyze("poisson", &sdc_sparse::gallery::poisson2d(pm), steps, args.format);

    println!("Nonsymmetric input (synthetic circuit, n={dn}) -- H is full upper Hessenberg:");
    let circuit = sdc_sparse::gallery::circuit_mna(&sdc_sparse::gallery::CircuitMnaConfig {
        nodes: dn,
        seed: 1311,
        ..Default::default()
    });
    analyze("circuit", &circuit, steps, args.format);

    println!("Nonsymmetric input (convection-diffusion, wind=3) -- intermediate:");
    analyze(
        "convdiff",
        &sdc_sparse::gallery::convection_diffusion_2d(pm.min(40), 3.0, 1.0),
        steps,
        args.format,
    );
}

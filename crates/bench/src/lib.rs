//! Experiment harness regenerating every table and figure of
//! *Evaluating the Impact of SDC on the GMRES Iterative Solver*.
//!
//! * [`problems`] — the two evaluation problems: the paper's exact
//!   Poisson matrix and the synthetic `mult_dcop_03` stand-in (or the
//!   real `.mtx` file if supplied).
//! * [`campaign`] — the single-SDC sweep driver: one FT-GMRES solve per
//!   (aggregate inner iteration, fault class, MGS position), parallelized
//!   over experiments with Rayon.
//! * [`render`] — ASCII figures, aligned tables and CSV emitters, so each
//!   binary prints the same rows/series the paper reports and leaves a
//!   machine-readable trace next to it.
//!
//! Every binary accepts `--quick` for a subsampled sweep on a smaller
//! matrix (CI-friendly) and `--csv DIR` to dump raw data.

pub mod campaign;
pub mod figure;
pub mod problems;
pub mod render;

pub use campaign::{failure_free, run_sweep, CampaignConfig, SweepPoint, SweepResult};
pub use problems::Problem;

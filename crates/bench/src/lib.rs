//! Experiment harness regenerating every table and figure of
//! *Evaluating the Impact of SDC on the GMRES Iterative Solver*.
//!
//! The heavy lifting lives in [`sdc_campaigns`]: the declarative spec,
//! the sharded resumable executor, the JSONL artifact format and the
//! re-solve-free report layer. This crate is the presentation tier —
//! ASCII figures, aligned tables, CSV emitters — plus the thin figure,
//! table and `campaign` binaries on top.
//!
//! * [`campaign`] / [`problems`] — re-exports of the engine's sweep
//!   driver and evaluation problems (their original home; kept so
//!   `sdc_bench::campaign::run_sweep` etc. keep working).
//! * [`figure`] — the Figure-3/Figure-4 driver, now a front-end that
//!   runs a paper-shaped campaign through the engine and renders the
//!   resulting artifact.
//! * [`render`] — ASCII figures, aligned tables and CSV emitters.
//!
//! Every binary accepts `--quick` for a subsampled sweep on a smaller
//! matrix (CI-friendly) and `--csv DIR` to dump raw data; the sweep
//! binaries also accept `--out PATH` to keep the JSONL artifact.

/// The single-SDC sweep driver (re-exported from `sdc_campaigns`).
pub mod campaign {
    pub use sdc_campaigns::sweep::*;
}

/// The evaluation problems (re-exported from `sdc_campaigns`).
pub mod problems {
    pub use sdc_campaigns::problems::*;
}

pub mod baseline;
pub mod figure;
pub mod render;

pub use campaign::{failure_free, run_sweep, CampaignConfig, SweepPoint, SweepResult};
pub use problems::Problem;

//! Committed performance baselines and the CI regression gate.
//!
//! The repo commits `BENCH_*.json` files recording, per benchmark id,
//! the median sample time of a baseline run. The benches regenerate the
//! raw data as a JSONL *dump* (one line per benchmark, written by the
//! vendored criterion when `BENCH_JSON=path` is set); this module parses
//! both, compares medians with a generous tolerance (CI hardware varies
//! — the gate only fails on gross slowdowns), cross-checks suspicious
//! medians against the minimum sample so one loaded-neighbour spike
//! doesn't fail the build, and renders the committed
//! baseline format from a fresh dump. The `bench_gate` binary is the
//! thin CLI over these functions; the CI `bench-regression` job and the
//! baseline regeneration workflow in the README both go through it, so
//! the file format has exactly one reader and one writer.

use sdc_campaigns::json::{Json, JsonError};
use std::collections::BTreeMap;

/// One benchmark's measurements from a `BENCH_JSON` dump line.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchStats {
    /// Timed samples.
    pub samples: usize,
    /// Fastest sample, microseconds — the gate's noise-robust secondary
    /// signal (a loaded CI host inflates the median far more than the
    /// minimum).
    pub min_us: f64,
    /// Median sample, microseconds — the quantity the gate compares.
    pub median_us: f64,
    /// Mean sample, microseconds.
    pub mean_us: f64,
    /// Host ISA the dumping bench recorded via criterion's dump context
    /// (`"avx2"` / `"scalar"`); absent from dumps older than the tag.
    pub isa: Option<String>,
    /// Kernel tier the benched engine ran (`"strict"` / `"fast_math"`);
    /// absent from dumps older than the tag.
    pub tier: Option<String>,
}

/// Parses a `BENCH_JSON` JSONL dump into `id → stats`. A rerun appends
/// to the same file, so the *last* line per id wins.
pub fn parse_dump(text: &str) -> Result<BTreeMap<String, BenchStats>, JsonError> {
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line)?;
        out.insert(
            v.field("id")?.as_str()?.to_string(),
            BenchStats {
                samples: v.field("samples")?.as_usize()?,
                min_us: v.field("min_us")?.as_f64()?,
                median_us: v.field("median_us")?.as_f64()?,
                mean_us: v.field("mean_us")?.as_f64()?,
                isa: v.get("isa").and_then(|s| s.as_str().ok()).map(str::to_string),
                tier: v.get("tier").and_then(|s| s.as_str().ok()).map(str::to_string),
            },
        );
    }
    Ok(out)
}

/// A committed `BENCH_*.json` baseline: the gated medians plus the
/// per-id minimum samples and host provenance recorded alongside them.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// `id → median_us`, the primary gate signal.
    pub medians_us: BTreeMap<String, f64>,
    /// `id → min_us` from the baseline's `stats` block (the secondary
    /// gate signal); may be missing ids on baselines emitted before the
    /// stats block recorded minimums.
    pub mins_us: BTreeMap<String, f64>,
    /// Kernel ISA of the machine that emitted the baseline; `None` on
    /// baselines from before the field existed.
    pub host_isa: Option<String>,
}

/// Parses a committed `BENCH_*.json` baseline.
pub fn parse_baseline(text: &str) -> Result<Baseline, JsonError> {
    let v = Json::parse(text)?;
    let Json::Obj(medians) = v.field("medians_us")? else {
        return Err(JsonError { offset: 0, msg: "medians_us must be an object".into() });
    };
    let medians_us = medians
        .iter()
        .map(|(k, m)| Ok((k.clone(), m.as_f64()?)))
        .collect::<Result<BTreeMap<_, _>, JsonError>>()?;
    let mut mins_us = BTreeMap::new();
    if let Some(Json::Obj(stats)) = v.get("stats") {
        for (id, s) in stats {
            if let Some(min) = s.get("min_us") {
                mins_us.insert(id.clone(), min.as_f64()?);
            }
        }
    }
    let host_isa = v.get("host_isa").and_then(|s| s.as_str().ok()).map(str::to_string);
    Ok(Baseline { medians_us, mins_us, host_isa })
}

/// One gate comparison row.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// Benchmark id (`group/param`).
    pub id: String,
    /// Committed baseline median, microseconds.
    pub baseline_us: f64,
    /// Fresh median, microseconds.
    pub fresh_us: f64,
    /// `fresh / baseline` over medians — the primary signal.
    pub ratio: f64,
    /// `fresh min / baseline min` — the secondary, noise-robust signal.
    /// `None` when the baseline predates recorded minimums.
    pub min_ratio: Option<f64>,
}

/// The gate verdict over a full baseline/dump pair.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Per-benchmark comparisons (every baseline id found in the dump).
    pub rows: Vec<GateRow>,
    /// Baseline ids absent from the fresh dump — a fail: silently
    /// dropping a bench would otherwise retire its baseline.
    pub missing: Vec<String>,
    /// Ids whose ratio exceeded the tolerance.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// True when nothing regressed and nothing went missing.
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.regressions.is_empty()
    }

    /// Renders the human-readable comparison table. A row regresses only
    /// when *both* the median and the min ratio exceed the tolerance, so
    /// both deltas are printed on every row.
    pub fn render(&self, tol: f64) -> String {
        let mut out = String::new();
        let w = self.rows.iter().map(|r| r.id.len()).max().unwrap_or(8).max(8);
        out.push_str(&format!(
            "{:<w$} {:>12} {:>12} {:>8} {:>9}  verdict (fail: median AND min > {tol}x)\n",
            "bench", "base µs", "fresh µs", "ratio", "min_ratio"
        ));
        for r in &self.rows {
            let verdict = if r.ratio > tol {
                match r.min_ratio {
                    Some(m) if m <= tol => "noisy (median regressed, min within gate)",
                    Some(_) => "REGRESSED",
                    None => "REGRESSED (no baseline min to cross-check)",
                }
            } else {
                "ok"
            };
            let min_col =
                r.min_ratio.map_or_else(|| format!("{:>9}", "-"), |m| format!("{m:>9.2}"));
            out.push_str(&format!(
                "{:<w$} {:>12.1} {:>12.1} {:>8.2} {min_col}  {verdict}\n",
                r.id, r.baseline_us, r.fresh_us, r.ratio
            ));
        }
        for id in &self.missing {
            out.push_str(&format!("{id:<w$} missing from fresh dump: FAIL\n"));
        }
        out
    }
}

/// `fresh / base` with the zero-baseline convention: a zero baseline is
/// an exact-count gate (e.g. "detector false positives = 0"), so equal
/// is a pass and anything above is an unconditional fail.
fn gate_ratio(fresh: f64, base: f64) -> f64 {
    if base > 0.0 {
        fresh / base
    } else if fresh == 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}

/// Compares a committed baseline against a fresh dump: every baseline id
/// must be present, and its fresh timings must not exceed `tol ×` the
/// committed ones. Extra ids in the dump are ignored (new benches land
/// in the baseline when it is next regenerated).
///
/// A slowdown counts as a regression only when **both** the median and
/// the minimum sample exceed the tolerance. A loaded CI neighbour can
/// double a median while the fastest sample — which needs just one
/// quiet scheduling window — stays honest; a genuine kernel regression
/// slows every sample, minimum included. Baselines that predate
/// recorded minimums fall back to the median-only gate.
pub fn compare(baseline: &Baseline, fresh: &BTreeMap<String, BenchStats>, tol: f64) -> GateReport {
    let mut report = GateReport::default();
    for (id, &base_us) in &baseline.medians_us {
        match fresh.get(id) {
            None => report.missing.push(id.clone()),
            Some(stats) => {
                let ratio = gate_ratio(stats.median_us, base_us);
                let min_ratio =
                    baseline.mins_us.get(id).map(|&base_min| gate_ratio(stats.min_us, base_min));
                if ratio > tol && min_ratio.map_or(true, |m| m > tol) {
                    report.regressions.push(id.clone());
                }
                report.rows.push(GateRow {
                    id: id.clone(),
                    baseline_us: base_us,
                    fresh_us: stats.median_us,
                    ratio,
                    min_ratio,
                });
            }
        }
    }
    report
}

/// Renders a fresh dump as the committed `BENCH_*.json` baseline format
/// (canonical: sorted keys, round-trip-exact floats, trailing newline).
pub fn emit_baseline(
    fresh: &BTreeMap<String, BenchStats>,
    comment: &str,
    command: &str,
    host_cores: usize,
    host_isa: &str,
) -> String {
    let medians =
        fresh.iter().map(|(id, s)| (id.as_str(), Json::Num(s.median_us))).collect::<Vec<_>>();
    let stats = fresh
        .iter()
        .map(|(id, s)| {
            let mut fields = vec![
                ("samples", Json::Num(s.samples as f64)),
                ("min_us", Json::Num(s.min_us)),
                ("median_us", Json::Num(s.median_us)),
                ("mean_us", Json::Num(s.mean_us)),
            ];
            // Per-bench provenance from tagged dumps (the host-level
            // host_isa above covers dumps from before the tags).
            if let Some(isa) = &s.isa {
                fields.push(("isa", Json::str(isa)));
            }
            if let Some(tier) = &s.tier {
                fields.push(("tier", Json::str(tier)));
            }
            (id.as_str(), Json::obj(fields))
        })
        .collect::<Vec<_>>();
    let doc = Json::obj(vec![
        ("comment", Json::str(comment)),
        ("command", Json::str(command)),
        ("host_cores", Json::Num(host_cores as f64)),
        ("host_isa", Json::str(host_isa)),
        ("medians_us", Json::obj(medians)),
        ("stats", Json::obj(stats)),
    ]);
    let mut line = doc.to_line();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump_line(id: &str, median: f64) -> String {
        stats_line(id, median, median)
    }

    fn stats_line(id: &str, min: f64, median: f64) -> String {
        format!("{{\"id\":\"{id}\",\"samples\":5,\"min_us\":{min},\"median_us\":{median},\"mean_us\":{median}}}")
    }

    #[test]
    fn dump_parses_and_last_line_wins() {
        let text =
            [dump_line("a/1", 10.0), dump_line("b/2", 20.0), dump_line("a/1", 12.0)].join("\n");
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump["a/1"].median_us, 12.0);
        assert_eq!(dump["b/2"].samples, 5);
        assert_eq!(dump["a/1"].isa, None, "untagged dumps parse with no ISA");
        assert!(parse_dump("{bogus").is_err());
    }

    #[test]
    fn dump_parses_the_isa_and_tier_tags() {
        let text = "{\"id\":\"a/1\",\"samples\":5,\"min_us\":1.0,\"median_us\":2.0,\"mean_us\":2.0,\"isa\":\"avx2\",\"tier\":\"fast_math\"}";
        let dump = parse_dump(text).unwrap();
        assert_eq!(dump["a/1"].isa.as_deref(), Some("avx2"));
        assert_eq!(dump["a/1"].tier.as_deref(), Some("fast_math"));
        // The per-bench provenance survives into the emitted baseline's
        // stats block.
        let baseline = emit_baseline(&dump, "", "", 1, "avx2");
        assert!(baseline.contains("\"isa\":\"avx2\""), "{baseline}");
        assert!(baseline.contains("\"tier\":\"fast_math\""), "{baseline}");
    }

    #[test]
    fn emit_then_parse_round_trips_medians_mins_and_isa() {
        let dump = parse_dump(&[stats_line("a/1", 9.25, 10.5), dump_line("b/2", 0.125)].join("\n"))
            .unwrap();
        let text = emit_baseline(&dump, "test baseline", "cargo bench", 4, "avx2");
        let base = parse_baseline(&text).unwrap();
        assert_eq!(base.medians_us["a/1"], 10.5);
        assert_eq!(base.medians_us["b/2"], 0.125);
        assert_eq!(base.mins_us["a/1"], 9.25);
        assert_eq!(base.host_isa.as_deref(), Some("avx2"));
        // Canonical: serializing twice is identical.
        assert_eq!(text, emit_baseline(&dump, "test baseline", "cargo bench", 4, "avx2"));
    }

    #[test]
    fn pre_isa_baselines_still_parse() {
        // Hand-rolled old-format document: no host_isa, no stats block.
        let text =
            "{\"comment\":\"\",\"command\":\"\",\"host_cores\":1,\"medians_us\":{\"a/1\":100.0}}";
        let base = parse_baseline(text).unwrap();
        assert_eq!(base.medians_us["a/1"], 100.0);
        assert!(base.mins_us.is_empty());
        assert_eq!(base.host_isa, None);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("a/1", 100.0)).unwrap(),
            "",
            "",
            1,
            "scalar",
        ))
        .unwrap();
        // 2.4x slower: within the 2.5x gate.
        let fresh = parse_dump(&dump_line("a/1", 240.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(rep.pass(), "{}", rep.render(2.5));
        assert!((rep.rows[0].ratio - 2.4).abs() < 1e-12);
        // 2.6x slower on median AND min: regression.
        let fresh = parse_dump(&dump_line("a/1", 260.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass());
        assert_eq!(rep.regressions, vec!["a/1".to_string()]);
        let rendered = rep.render(2.5);
        assert!(rendered.contains("REGRESSED"));
        // Both deltas appear in the failure report.
        assert!(rendered.contains("2.60"), "{rendered}");
        // Faster is always fine.
        let fresh = parse_dump(&dump_line("a/1", 10.0)).unwrap();
        assert!(compare(&baseline, &fresh, 2.5).pass());
    }

    #[test]
    fn noisy_median_is_saved_by_an_honest_minimum() {
        // Baseline: min 50, median 55 — the spmv_csr_circuit3000 shape
        // that motivated the secondary signal (one slow sample on a
        // loaded CI host inflates the median, not the min).
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&stats_line("a/1", 50.0, 55.0)).unwrap(),
            "",
            "",
            1,
            "scalar",
        ))
        .unwrap();
        // Fresh median blows the 2.5x gate (3.1x) but the min is 1.1x:
        // scheduling noise, not a kernel regression.
        let fresh = parse_dump(&stats_line("a/1", 55.0, 170.5)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(rep.pass(), "{}", rep.render(2.5));
        assert!(rep.rows[0].ratio > 2.5);
        assert!(rep.rows[0].min_ratio.unwrap() < 2.5);
        assert!(rep.render(2.5).contains("noisy"), "{}", rep.render(2.5));
        // When the min regresses too, the gate fails.
        let fresh = parse_dump(&stats_line("a/1", 160.0, 170.5)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass());
        assert_eq!(rep.regressions, vec!["a/1".to_string()]);
    }

    #[test]
    fn baselines_without_minimums_gate_on_median_alone() {
        let text = "{\"medians_us\":{\"a/1\":100.0}}";
        let baseline = parse_baseline(text).unwrap();
        let fresh = parse_dump(&stats_line("a/1", 10.0, 260.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass(), "no recorded min means no noise escape hatch");
        assert_eq!(rep.rows[0].min_ratio, None);
        assert!(rep.render(2.5).contains("no baseline min"), "{}", rep.render(2.5));
    }

    #[test]
    fn zero_baseline_is_an_exact_count_gate() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("metrics/sdc_detector_events_total", 0.0)).unwrap(),
            "",
            "",
            1,
            "scalar",
        ))
        .unwrap();
        // 0 == 0: pass at any tolerance.
        let fresh = parse_dump(&dump_line("metrics/sdc_detector_events_total", 0.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(rep.pass(), "{}", rep.render(2.5));
        assert_eq!(rep.rows[0].ratio, 1.0);
        // Any nonzero count against a zero baseline fails unconditionally
        // (the min is nonzero too, so the secondary signal agrees).
        let fresh = parse_dump(&dump_line("metrics/sdc_detector_events_total", 1.0)).unwrap();
        let rep = compare(&baseline, &fresh, 1e9);
        assert!(!rep.pass());
        assert_eq!(rep.regressions.len(), 1);
    }

    #[test]
    fn gate_fails_on_missing_bench_and_ignores_extras() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("a/1", 100.0)).unwrap(),
            "",
            "",
            1,
            "scalar",
        ))
        .unwrap();
        let fresh = parse_dump(&dump_line("new/3", 1.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass());
        assert_eq!(rep.missing, vec!["a/1".to_string()]);
        assert!(rep.render(2.5).contains("missing"));
    }
}

//! Committed performance baselines and the CI regression gate.
//!
//! The repo commits `BENCH_*.json` files recording, per benchmark id,
//! the median sample time of a baseline run. The benches regenerate the
//! raw data as a JSONL *dump* (one line per benchmark, written by the
//! vendored criterion when `BENCH_JSON=path` is set); this module parses
//! both, compares medians with a generous tolerance (CI hardware varies
//! — the gate only fails on gross slowdowns), and renders the committed
//! baseline format from a fresh dump. The `bench_gate` binary is the
//! thin CLI over these functions; the CI `bench-regression` job and the
//! baseline regeneration workflow in the README both go through it, so
//! the file format has exactly one reader and one writer.

use sdc_campaigns::json::{Json, JsonError};
use std::collections::BTreeMap;

/// One benchmark's measurements from a `BENCH_JSON` dump line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchStats {
    /// Timed samples.
    pub samples: usize,
    /// Fastest sample, microseconds.
    pub min_us: f64,
    /// Median sample, microseconds — the quantity the gate compares.
    pub median_us: f64,
    /// Mean sample, microseconds.
    pub mean_us: f64,
}

/// Parses a `BENCH_JSON` JSONL dump into `id → stats`. A rerun appends
/// to the same file, so the *last* line per id wins.
pub fn parse_dump(text: &str) -> Result<BTreeMap<String, BenchStats>, JsonError> {
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line)?;
        out.insert(
            v.field("id")?.as_str()?.to_string(),
            BenchStats {
                samples: v.field("samples")?.as_usize()?,
                min_us: v.field("min_us")?.as_f64()?,
                median_us: v.field("median_us")?.as_f64()?,
                mean_us: v.field("mean_us")?.as_f64()?,
            },
        );
    }
    Ok(out)
}

/// Parses a committed `BENCH_*.json` baseline's `medians_us` map.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, JsonError> {
    let v = Json::parse(text)?;
    let Json::Obj(medians) = v.field("medians_us")? else {
        return Err(JsonError { offset: 0, msg: "medians_us must be an object".into() });
    };
    medians.iter().map(|(k, m)| Ok((k.clone(), m.as_f64()?))).collect()
}

/// One gate comparison row.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// Benchmark id (`group/param`).
    pub id: String,
    /// Committed baseline median, microseconds.
    pub baseline_us: f64,
    /// Fresh median, microseconds.
    pub fresh_us: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
}

/// The gate verdict over a full baseline/dump pair.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Per-benchmark comparisons (every baseline id found in the dump).
    pub rows: Vec<GateRow>,
    /// Baseline ids absent from the fresh dump — a fail: silently
    /// dropping a bench would otherwise retire its baseline.
    pub missing: Vec<String>,
    /// Ids whose ratio exceeded the tolerance.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// True when nothing regressed and nothing went missing.
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.regressions.is_empty()
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self, tol: f64) -> String {
        let mut out = String::new();
        let w = self.rows.iter().map(|r| r.id.len()).max().unwrap_or(8).max(8);
        out.push_str(&format!(
            "{:<w$} {:>12} {:>12} {:>8}  verdict (fail > {tol}x)\n",
            "bench", "base µs", "fresh µs", "ratio"
        ));
        for r in &self.rows {
            let verdict = if r.ratio > tol { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "{:<w$} {:>12.1} {:>12.1} {:>8.2}  {verdict}\n",
                r.id, r.baseline_us, r.fresh_us, r.ratio
            ));
        }
        for id in &self.missing {
            out.push_str(&format!("{id:<w$} missing from fresh dump: FAIL\n"));
        }
        out
    }
}

/// Compares a committed baseline against a fresh dump: every baseline id
/// must be present, and its fresh median must not exceed `tol ×` the
/// committed median. Extra ids in the dump are ignored (new benches land
/// in the baseline when it is next regenerated).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, BenchStats>,
    tol: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for (id, &base_us) in baseline {
        match fresh.get(id) {
            None => report.missing.push(id.clone()),
            Some(stats) => {
                // A zero baseline is an exact-count gate (e.g. "detector
                // false positives = 0"): equal is a pass, anything above
                // is an unconditional fail.
                let ratio = if base_us > 0.0 {
                    stats.median_us / base_us
                } else if stats.median_us == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                };
                if ratio > tol {
                    report.regressions.push(id.clone());
                }
                report.rows.push(GateRow {
                    id: id.clone(),
                    baseline_us: base_us,
                    fresh_us: stats.median_us,
                    ratio,
                });
            }
        }
    }
    report
}

/// Renders a fresh dump as the committed `BENCH_*.json` baseline format
/// (canonical: sorted keys, round-trip-exact floats, trailing newline).
pub fn emit_baseline(
    fresh: &BTreeMap<String, BenchStats>,
    comment: &str,
    command: &str,
    host_cores: usize,
) -> String {
    let medians =
        fresh.iter().map(|(id, s)| (id.as_str(), Json::Num(s.median_us))).collect::<Vec<_>>();
    let stats = fresh
        .iter()
        .map(|(id, s)| {
            (
                id.as_str(),
                Json::obj(vec![
                    ("samples", Json::Num(s.samples as f64)),
                    ("min_us", Json::Num(s.min_us)),
                    ("median_us", Json::Num(s.median_us)),
                    ("mean_us", Json::Num(s.mean_us)),
                ]),
            )
        })
        .collect::<Vec<_>>();
    let doc = Json::obj(vec![
        ("comment", Json::str(comment)),
        ("command", Json::str(command)),
        ("host_cores", Json::Num(host_cores as f64)),
        ("medians_us", Json::obj(medians)),
        ("stats", Json::obj(stats)),
    ]);
    let mut line = doc.to_line();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump_line(id: &str, median: f64) -> String {
        format!("{{\"id\":\"{id}\",\"samples\":5,\"min_us\":{median},\"median_us\":{median},\"mean_us\":{median}}}")
    }

    #[test]
    fn dump_parses_and_last_line_wins() {
        let text =
            [dump_line("a/1", 10.0), dump_line("b/2", 20.0), dump_line("a/1", 12.0)].join("\n");
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump["a/1"].median_us, 12.0);
        assert_eq!(dump["b/2"].samples, 5);
        assert!(parse_dump("{bogus").is_err());
    }

    #[test]
    fn emit_then_parse_round_trips_medians() {
        let dump =
            parse_dump(&[dump_line("a/1", 10.5), dump_line("b/2", 0.125)].join("\n")).unwrap();
        let text = emit_baseline(&dump, "test baseline", "cargo bench", 4);
        let medians = parse_baseline(&text).unwrap();
        assert_eq!(medians["a/1"], 10.5);
        assert_eq!(medians["b/2"], 0.125);
        // Canonical: serializing twice is identical.
        assert_eq!(text, emit_baseline(&dump, "test baseline", "cargo bench", 4));
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("a/1", 100.0)).unwrap(),
            "",
            "",
            1,
        ))
        .unwrap();
        // 2.4x slower: within the 2.5x gate.
        let fresh = parse_dump(&dump_line("a/1", 240.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(rep.pass(), "{}", rep.render(2.5));
        assert!((rep.rows[0].ratio - 2.4).abs() < 1e-12);
        // 2.6x slower: regression.
        let fresh = parse_dump(&dump_line("a/1", 260.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass());
        assert_eq!(rep.regressions, vec!["a/1".to_string()]);
        assert!(rep.render(2.5).contains("REGRESSED"));
        // Faster is always fine.
        let fresh = parse_dump(&dump_line("a/1", 10.0)).unwrap();
        assert!(compare(&baseline, &fresh, 2.5).pass());
    }

    #[test]
    fn zero_baseline_is_an_exact_count_gate() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("metrics/sdc_detector_events_total", 0.0)).unwrap(),
            "",
            "",
            1,
        ))
        .unwrap();
        // 0 == 0: pass at any tolerance.
        let fresh = parse_dump(&dump_line("metrics/sdc_detector_events_total", 0.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(rep.pass(), "{}", rep.render(2.5));
        assert_eq!(rep.rows[0].ratio, 1.0);
        // Any nonzero count against a zero baseline fails unconditionally.
        let fresh = parse_dump(&dump_line("metrics/sdc_detector_events_total", 1.0)).unwrap();
        let rep = compare(&baseline, &fresh, 1e9);
        assert!(!rep.pass());
        assert_eq!(rep.regressions.len(), 1);
    }

    #[test]
    fn gate_fails_on_missing_bench_and_ignores_extras() {
        let baseline = parse_baseline(&emit_baseline(
            &parse_dump(&dump_line("a/1", 100.0)).unwrap(),
            "",
            "",
            1,
        ))
        .unwrap();
        let fresh = parse_dump(&dump_line("new/3", 1.0)).unwrap();
        let rep = compare(&baseline, &fresh, 2.5);
        assert!(!rep.pass());
        assert_eq!(rep.missing, vec!["a/1".to_string()]);
        assert!(rep.render(2.5).contains("missing"));
    }
}

//! ASCII figures, aligned tables and CSV output.
//!
//! Terminal-friendly reproductions of the paper's figures: the y-axis is
//! the outer iteration count, the x-axis the aggregate faulted inner
//! iteration, with vertical guides at inner-solve boundaries ("vertical
//! bars indicate the start of a new inner solve").

use crate::campaign::SweepResult;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Renders a sweep series as a compact ASCII plot.
pub fn ascii_plot(res: &SweepResult, inner_per_outer: usize, width: usize) -> String {
    let mut out = String::new();
    let ymin = res
        .points
        .iter()
        .map(|p| p.outer_iterations)
        .min()
        .unwrap_or(res.failure_free_outer)
        .min(res.failure_free_outer);
    let ymax = res.max_outer().max(res.failure_free_outer);
    let n = res.points.len().max(1);
    let width = width.min(n).max(1);

    // Bucket the x-domain; plot the max outer count in each bucket.
    let mut buckets = vec![ymin; width];
    for (i, p) in res.points.iter().enumerate() {
        let b = i * width / n;
        buckets[b] = buckets[b].max(p.outer_iterations);
    }
    // Which buckets contain an inner-solve boundary?
    let domain_len = res.points.last().map(|p| p.aggregate).unwrap_or(1);
    let mut boundary = vec![false; width];
    let mut agg_of_bucket = vec![0usize; width];
    for (i, p) in res.points.iter().enumerate() {
        let b = i * width / n;
        agg_of_bucket[b] = p.aggregate;
        if (p.aggregate - 1) % inner_per_outer == 0 {
            boundary[b] = true;
        }
    }

    writeln!(
        out,
        "  {} | {} | failure-free = {} outer",
        res.class.label(),
        res.position.label(),
        res.failure_free_outer
    )
    .unwrap();
    for y in (ymin..=ymax).rev() {
        let marker = if y == res.failure_free_outer { '-' } else { ' ' };
        write!(out, "  {y:>4} {marker}").unwrap();
        for b in 0..width {
            let c = if buckets[b] >= y {
                '#'
            } else if boundary[b] {
                '.'
            } else if y == res.failure_free_outer {
                '-'
            } else {
                ' '
            };
            out.push(c);
        }
        out.push('\n');
    }
    writeln!(
        out,
        "       {}^1 .. aggregate faulted inner iteration .. {}^",
        " ".repeat(0),
        domain_len
    )
    .unwrap();
    writeln!(
        out,
        "       max increase: +{} outer ({:.0}%) | no-penalty points: {}/{} | detected: {} | non-converged: {}",
        res.max_increase(),
        res.pct_increase(),
        res.count_no_penalty(),
        res.points.len(),
        res.count_detected(),
        res.count_failures()
    )
    .unwrap();
    out
}

/// Writes a sweep series as CSV: `aggregate,outer,converged,injected,detected,restarts,true_rel_residual`.
///
/// Floats are written with [`sdc_campaigns::json::fmt_f64`]: the
/// shortest representation that parses back to the identical bits, so
/// re-running a deterministic sweep reproduces the CSV byte for byte.
pub fn write_sweep_csv(path: &Path, res: &SweepResult) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "aggregate,outer_iterations,converged,injected,detected,restarts,true_rel_residual"
    )?;
    for p in &res.points {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            p.aggregate,
            p.outer_iterations,
            p.converged,
            p.injected,
            p.detected,
            p.restarts,
            sdc_campaigns::json::fmt_f64(p.true_rel_residual)
        )?;
    }
    f.flush()
}

/// The canonical CSV filename for one scenario's series: every grid
/// axis appears, so no two scenarios of any spec can collide.
pub fn scenario_csv_path(
    dir: &Path,
    campaign: &str,
    scenario: &sdc_campaigns::Scenario,
) -> std::path::PathBuf {
    use sdc_campaigns::spec::{class_str, position_str};
    dir.join(format!(
        "{campaign}_p{}_{}_{}_{}_{}.csv",
        scenario.problem,
        class_str(scenario.class),
        position_str(scenario.position),
        scenario.detector.as_str(),
        scenario.lsq.file_tag()
    ))
}

/// Renders an aligned two-column table (Table-I style).
pub fn two_column_table(title: &str, rows: &[(String, String, String)]) -> String {
    let mut out = String::new();
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max("Properties".len());
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let w2 = rows.iter().map(|r| r.2.len()).max().unwrap_or(0);
    writeln!(out, "{title}").unwrap();
    writeln!(out, "{}", "-".repeat(w0 + w1 + w2 + 6)).unwrap();
    for (a, b, c) in rows {
        writeln!(out, "{a:<w0$} | {b:>w1$} | {c:>w2$}").unwrap();
    }
    out
}

/// The CLI vocabulary shared by the experiment binaries, built on the
/// engine's [`sdc_campaigns::cli`] parser so every binary reports flags
/// and errors the same way.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    /// `--quick`: subsampled sweep on a smaller matrix.
    pub quick: bool,
    /// `--csv DIR`: write raw CSV series into DIR.
    pub csv_dir: Option<std::path::PathBuf>,
    /// `--matrix PATH`: use a Matrix Market file instead of the
    /// synthetic generator (fig4 only).
    pub matrix: Option<std::path::PathBuf>,
    /// `--stride N`: explicit sweep stride.
    pub stride: Option<usize>,
    /// `--out PATH`: keep the JSONL campaign artifact at PATH.
    pub out: Option<std::path::PathBuf>,
    /// `--trace-out PATH`: write per-unit deterministic solve traces.
    pub trace_out: Option<std::path::PathBuf>,
    /// `--format {csr,sell,auto}`: sparse storage engine for the
    /// operator (default `auto`; bitwise-invisible to results).
    pub format: sdc_sparse::SparseFormat,
    /// `--precond {none,jacobi,ilu0,chebyshev}`: right preconditioner
    /// inside the inner solves (default `none`; the legacy figures).
    pub precond: sdc_gmres::precond::PrecondKind,
}

impl CliArgs {
    /// The shared flag set.
    pub fn cli(program: impl Into<String>, about: impl Into<String>) -> sdc_campaigns::cli::Cli {
        sdc_campaigns::cli::Cli::new(program, about)
            .switch("quick", "subsampled sweep on a smaller matrix")
            .opt("stride", "N", "explicit sweep stride")
            .opt("csv", "DIR", "write raw CSV series into DIR")
            .opt("matrix", "PATH", "Matrix Market file instead of the synthetic generator")
            .opt("out", "PATH", "keep the JSONL campaign artifact at PATH")
            .opt("trace-out", "PATH", "write per-unit deterministic solve traces (JSONL)")
            .with_threads()
            .with_format()
            .with_precond()
            .with_simd()
    }

    /// Builds from a parsed flag set, applying `--threads` to the
    /// global `sdc_parallel` pool and `--simd` to the global kernel
    /// dispatch as side effects.
    pub fn from_parsed(p: &sdc_campaigns::cli::Parsed) -> Result<Self, String> {
        p.apply_threads()?;
        p.apply_simd()?;
        Ok(CliArgs {
            quick: p.has("quick"),
            csv_dir: p.path("csv"),
            matrix: p.path("matrix"),
            stride: p.get::<usize>("stride")?,
            out: p.path("out"),
            trace_out: p.path("trace-out"),
            format: p.format()?,
            precond: p.precond()?,
        })
    }

    /// Parses `std::env::args`; prints usage and exits on `--help` or a
    /// bad flag. Usage/error text carries the invoking binary's name.
    pub fn parse() -> Self {
        let cli =
            Self::cli(sdc_campaigns::cli::program_name(), "paper figure/table reproduction binary");
        let parsed = cli.parse_env(1);
        match Self::from_parsed(&parsed) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SweepPoint;
    use sdc_faults::campaign::{FaultClass, MgsPosition};

    fn sample_result() -> SweepResult {
        SweepResult {
            class: FaultClass::Huge,
            position: MgsPosition::First,
            failure_free_outer: 9,
            points: (1..=50)
                .map(|aggregate| SweepPoint {
                    aggregate,
                    outer_iterations: if aggregate % 10 == 3 { 14 } else { 9 },
                    converged: true,
                    injected: true,
                    detected: false,
                    restarts: 0,
                    true_rel_residual: 1e-9,
                })
                .collect(),
        }
    }

    #[test]
    fn plot_contains_summary() {
        let s = ascii_plot(&sample_result(), 25, 60);
        assert!(s.contains("failure-free = 9"));
        assert!(s.contains("max increase: +5"));
        assert!(s.contains('#'));
    }

    #[test]
    fn csv_round_trips_line_count() {
        let res = sample_result();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sdc_bench_csv_test_{}.csv", std::process::id()));
        write_sweep_csv(&path, &res).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 51); // header + 50 points
        assert!(text.lines().nth(1).unwrap().starts_with("1,"));
    }

    #[test]
    fn table_is_aligned() {
        let rows = vec![
            ("number of rows".to_string(), "10,000".to_string(), "25,187".to_string()),
            ("nonzeros".to_string(), "49,600".to_string(), "193,216".to_string()),
        ];
        let t = two_column_table("Sample Matrices", &rows);
        assert!(t.contains("10,000"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len(), "rows must align");
    }
}

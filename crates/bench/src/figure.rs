//! Shared driver for the Figure-3/Figure-4 experiments.
//!
//! Both figures have the same shape — six sweeps (3 fault classes × first
//! /last MGS position) without a detector, plus the §VII-E comparison runs
//! with the detector enabled for the detectable (class-1) faults.

use crate::campaign::{failure_free, run_sweep, CampaignConfig, SweepResult};
use crate::problems::Problem;
use crate::render::{ascii_plot, write_sweep_csv};
use sdc_faults::campaign::{FaultClass, MgsPosition};
use sdc_gmres::prelude::DetectorResponse;
use std::path::Path;

/// Everything a figure run produces.
pub struct FigureOutput {
    /// Failure-free outer iteration count.
    pub failure_free_outer: usize,
    /// The six undetected sweep series (position-major: First ×3 classes,
    /// then Last ×3 classes).
    pub series: Vec<SweepResult>,
    /// The two detector-on class-1 series (First, Last).
    pub detector_series: Vec<SweepResult>,
}

/// Runs the full figure: prints plots as it goes, returns all series.
pub fn run_figure(
    label: &str,
    problem: &Problem,
    cfg: &CampaignConfig,
    csv_dir: Option<&Path>,
    plot_width: usize,
) -> FigureOutput {
    eprintln!("[{label}] failure-free baseline...");
    let ff = failure_free(problem, cfg);
    assert!(ff.outcome.is_converged(), "failure-free run must converge, got {:?}", ff.outcome);
    let ff_outer = ff.iterations;
    println!(
        "\n{label}: {} | {} inner iterations per outer iteration.",
        problem.name, cfg.inner_iters
    );
    println!("Failure-free number of outer iterations = {ff_outer} (paper: 9 Poisson / 28 dcop)\n");

    let mut series = Vec::new();
    for position in MgsPosition::both() {
        println!("--- SDC on the {} of the Modified Gram-Schmidt loop ---", position.label());
        for class in FaultClass::all() {
            eprintln!("[{label}] sweep: {} / {}...", class.label(), position.label());
            let res = run_sweep(problem, cfg, class, position, ff_outer);
            println!("{}", ascii_plot(&res, cfg.inner_iters, plot_width));
            if let Some(dir) = csv_dir {
                let file = dir.join(format!(
                    "{label}_{}_{}.csv",
                    match class {
                        FaultClass::Huge => "huge",
                        FaultClass::Slight => "slight",
                        FaultClass::Tiny => "tiny",
                    },
                    match position {
                        MgsPosition::First => "first",
                        MgsPosition::Last => "last",
                    }
                ));
                write_sweep_csv(&file, &res).expect("csv write failed");
            }
            series.push(res);
        }
    }

    // §VII-E: the detector turns the class-1 plots into near-flat lines.
    println!("--- class-1 sweeps WITH the ‖A‖_F detector (response: restart inner solve) ---");
    let mut detector_series = Vec::new();
    let det_cfg =
        CampaignConfig { detector_response: Some(DetectorResponse::RestartInner), ..*cfg };
    for position in MgsPosition::both() {
        eprintln!("[{label}] detector sweep: huge / {}...", position.label());
        let res = run_sweep(problem, &det_cfg, FaultClass::Huge, position, ff_outer);
        println!("{}", ascii_plot(&res, cfg.inner_iters, plot_width));
        if let Some(dir) = csv_dir {
            let file = dir.join(format!(
                "{label}_huge_{}_detector.csv",
                match position {
                    MgsPosition::First => "first",
                    MgsPosition::Last => "last",
                }
            ));
            write_sweep_csv(&file, &res).expect("csv write failed");
        }
        detector_series.push(res);
    }

    summarize(label, ff_outer, &series, &detector_series);
    FigureOutput { failure_free_outer: ff_outer, series, detector_series }
}

fn summarize(label: &str, ff: usize, series: &[SweepResult], detector: &[SweepResult]) {
    println!("=== {label} summary (paper §VII-E) ===");
    let worst_undetected = series.iter().map(|s| s.max_outer()).max().unwrap_or(ff);
    let worst_detected = detector.iter().map(|s| s.max_outer()).max().unwrap_or(ff);
    let huge_undetected: usize = series
        .iter()
        .filter(|s| s.class == FaultClass::Huge)
        .map(|s| s.max_outer())
        .max()
        .unwrap_or(ff);
    println!("  failure-free outer iterations:            {ff}");
    println!(
        "  worst case, any class, no detector:       {worst_undetected} (+{}, {:.0}%)",
        worst_undetected - ff,
        100.0 * (worst_undetected - ff) as f64 / ff as f64
    );
    println!(
        "  worst case, class-1 (huge), no detector:  {huge_undetected} (+{})",
        huge_undetected - ff
    );
    println!(
        "  worst case, class-1 (huge), detector on:  {worst_detected} (+{})",
        worst_detected - ff
    );
    let all_conv = series.iter().chain(detector).all(|s| s.count_failures() == 0);
    println!(
        "  every experiment converged to the true solution: {}",
        if all_conv { "yes" } else { "NO — INVESTIGATE" }
    );
    for s in detector {
        let committed = s.points.iter().filter(|p| p.injected).count();
        println!(
            "  detector coverage ({}): {}/{} committed class-1 faults detected",
            s.position.label(),
            s.count_detected(),
            committed
        );
    }
    println!();
}

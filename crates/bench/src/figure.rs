//! Shared driver for the Figure-3/Figure-4 experiments — a thin
//! front-end over the campaign engine.
//!
//! Both figures have the same shape — six sweeps (3 fault classes ×
//! first/last MGS position) without a detector, plus the §VII-E
//! comparison runs with the detector enabled for the detectable
//! (class-1) faults. That shape is exactly
//! [`CampaignSpec::paper_shape`]: the driver builds the spec, hands it
//! to the executor (which streams a JSONL artifact and can resume an
//! interrupted run), then renders plots, CSVs and the summary *from the
//! artifact* via the report layer.
//!
//! Passing `--out PATH` keeps the artifact; re-running with the same
//! `--out` resumes/reuses it instead of re-solving, and
//! `campaign report --out PATH` re-renders it any time.

use crate::render::{ascii_plot, write_sweep_csv};
use sdc_campaigns::{CampaignData, CampaignSpec, DetectorPolicy, RunOptions, SweepResult};
use std::path::Path;

/// Everything a figure run produces.
pub struct FigureOutput {
    /// Failure-free outer iteration count.
    pub failure_free_outer: usize,
    /// The six undetected sweep series (position-major: First ×3 classes,
    /// then Last ×3 classes).
    pub series: Vec<SweepResult>,
    /// The two detector-on class-1 series (First, Last).
    pub detector_series: Vec<SweepResult>,
}

/// Runs the full figure campaign: executes (or resumes) the spec into a
/// JSONL artifact, prints plots, returns all series.
pub fn run_figure(
    label: &str,
    spec: &CampaignSpec,
    csv_dir: Option<&Path>,
    artifact_out: Option<&Path>,
    trace_out: Option<&Path>,
    plot_width: usize,
) -> FigureOutput {
    // Without --out the artifact lives in a scratch path; with --out it
    // persists and re-runs resume it (a finished artifact re-renders
    // without a single new solve).
    let scratch;
    let artifact = match artifact_out {
        Some(p) => p,
        None => {
            scratch =
                std::env::temp_dir().join(format!("sdc_{label}_{}.jsonl", std::process::id()));
            std::fs::remove_file(&scratch).ok();
            &scratch
        }
    };
    let resume = artifact.exists();
    if resume {
        eprintln!("[{label}] resuming artifact {}", artifact.display());
    }
    let opts = RunOptions { trace_out: trace_out.map(Path::to_path_buf), ..RunOptions::default() };
    let summary = sdc_campaigns::run(spec, artifact, resume, &opts).unwrap_or_else(|e| {
        // A bad spec or a foreign --out file is user error, not a bug:
        // report it without a panic backtrace.
        eprintln!("campaign '{label}' failed: {e}");
        std::process::exit(1);
    });
    assert!(summary.is_complete(), "figure campaigns run to completion");

    let data = CampaignData::load(artifact).expect("artifact just written must load");
    if artifact_out.is_none() {
        std::fs::remove_file(artifact).ok();
    }

    let ff_outer = data.baselines.first().map(|(_, outer)| *outer).unwrap_or(0);
    println!(
        "\n{label}: {} | {} inner iterations per outer iteration.",
        data.problems.first().map(|p| p.name.as_str()).unwrap_or("?"),
        spec.inner_iters
    );
    println!("Failure-free number of outer iterations = {ff_outer} (paper: 9 Poisson / 28 dcop)\n");

    let mut series = Vec::new();
    let mut detector_series = Vec::new();
    let mut last_position = None;
    for (scenario, result) in &data.series {
        let detector_on = scenario.detector != DetectorPolicy::Off;
        if !detector_on && last_position != Some(scenario.position) {
            println!(
                "--- SDC on the {} of the Modified Gram-Schmidt loop ---",
                scenario.position.label()
            );
            last_position = Some(scenario.position);
        }
        if detector_on && detector_series.is_empty() {
            println!(
                "--- class-1 sweeps WITH the ‖A‖_F detector (response: restart inner solve) ---"
            );
        }
        println!("{}", ascii_plot(result, spec.inner_iters, plot_width));
        if let Some(dir) = csv_dir {
            let file = crate::render::scenario_csv_path(dir, label, scenario);
            write_sweep_csv(&file, result).expect("csv write failed");
        }
        if detector_on {
            detector_series.push(result.clone());
        } else {
            series.push(result.clone());
        }
    }

    // The report layer's summary covers the same §VII-E numbers the
    // bespoke summarize() used to compute.
    println!("=== {label} summary (paper §VII-E) ===");
    print!("{}", sdc_campaigns::render_report(&data));
    for s in &detector_series {
        let committed = s.points.iter().filter(|p| p.injected).count();
        println!(
            "  detector coverage ({}): {}/{} committed class-1 faults detected",
            s.position.label(),
            s.count_detected(),
            committed
        );
    }
    println!();

    FigureOutput { failure_free_outer: ff_outer, series, detector_series }
}

//! Criterion microbenchmarks for the computational kernels.
//!
//! Backs the paper's performance claims at the kernel level: SpMV is the
//! dominant cost, orthogonalization grows linearly with the iteration
//! index, and the parallel kernels are worth their overhead at the
//! experiment sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_dense::vector;
use sdc_faults::NoFaults;
use sdc_gmres::ortho::{orthogonalize, OrthoSiteCtx, OrthoStrategy};
use sdc_sparse::gallery;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("spmv");
    g.sample_size(20);
    for m in [50usize, 100] {
        let a = gallery::poisson2d(m);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; n];
        g.bench_with_input(BenchmarkId::new("serial", n), &a, |b, a| {
            b.iter(|| {
                a.spmv(black_box(&x), &mut y);
                black_box(&y);
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &a, |b, a| {
            b.iter(|| {
                a.par_spmv(black_box(&x), &mut y);
                black_box(&y);
            })
        });
    }
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    g.sample_size(30);
    for n in [10_000usize, 100_000] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).cos()).collect();
        g.bench_with_input(BenchmarkId::new("pairwise_serial", n), &n, |b, _| {
            b.iter(|| black_box(vector::dot(&x, &y)))
        });
        g.bench_with_input(BenchmarkId::new("pairwise_parallel", n), &n, |b, _| {
            b.iter(|| black_box(vector::par_dot(&x, &y)))
        });
    }
    g.finish();
}

fn bench_ortho(c: &mut Criterion) {
    // Orthogonalization cost grows linearly in the basis size — the
    // paper's argument that extra robustness early in the inner solve is
    // nearly free (§VII-E-1).
    let mut g = c.benchmark_group("orthogonalize");
    g.sample_size(20);
    let n = 10_000;
    for basis_size in [1usize, 5, 25] {
        let basis: Vec<Vec<f64>> = (0..basis_size)
            .map(|k| {
                let mut v: Vec<f64> = (0..n).map(|i| ((i + 7 * k) as f64 * 0.31).sin()).collect();
                vector::normalize(&mut v);
                v
            })
            .collect();
        let v0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        for strat in [OrthoStrategy::Mgs, OrthoStrategy::Cgs, OrthoStrategy::Cgs2] {
            g.bench_with_input(
                BenchmarkId::new(format!("{strat:?}"), basis_size),
                &basis_size,
                |b, _| {
                    b.iter(|| {
                        let mut v = v0.clone();
                        let r = orthogonalize(
                            strat,
                            &basis,
                            &mut v,
                            OrthoSiteCtx { outer_iteration: 0, inner_solve: 0, column: basis_size },
                            &NoFaults,
                            None,
                        );
                        black_box(r.vnorm)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_dot, bench_ortho);
criterion_main!(benches);

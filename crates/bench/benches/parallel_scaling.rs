//! Thread-scaling benchmarks for the two parallel hot paths: SpMV on a
//! campaign-sized operator, and the campaign engine end to end — each at
//! 1, 2 and 4 threads. `BENCH_parallel.json` at the repo root records a
//! committed baseline (with the host's core count, since scaling on a
//! single-core host is expected to be flat); later PRs diff against it.
//!
//! The benches also double as a cheap determinism check: each parallel
//! result is compared bitwise against the 1-thread result before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_campaigns::{CampaignSpec, GridBlock, ProblemSpec, RunOptions};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_spmv_scaling(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    // gallery('poisson', 180): n = 32 400, nnz = 161 280 — big enough
    // that par_spmv takes its parallel path.
    let a = sdc_sparse::gallery::poisson2d(180);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos()).collect();

    sdc_parallel::set_threads(1);
    let mut reference = vec![0.0; a.nrows()];
    a.par_spmv(&x, &mut reference);

    let mut g = c.benchmark_group("spmv_threads");
    g.sample_size(20);
    for t in THREAD_COUNTS {
        sdc_parallel::set_threads(t);
        let mut y = vec![0.0; a.nrows()];
        a.par_spmv(&x, &mut y);
        assert!(
            y.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "par_spmv must be bitwise thread-count-independent"
        );
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                a.par_spmv(black_box(&x), &mut y);
                black_box(y[0])
            })
        });
    }
    g.finish();
    sdc_parallel::set_threads(0);
}

fn bench_campaign_engine_scaling(c: &mut Criterion) {
    let spec = CampaignSpec {
        inner_iters: 8,
        outer_tol: 1e-8,
        outer_max: 60,
        stride: 5,
        blocks: vec![GridBlock::undetected_full()],
        ..CampaignSpec::paper_shape("bench-threads", vec![ProblemSpec::Poisson { m: 8 }])
    };
    let opts = RunOptions { quiet: true, ..Default::default() };
    let path =
        std::env::temp_dir().join(format!("sdc_bench_parallel_{}.jsonl", std::process::id()));

    sdc_parallel::set_threads(1);
    std::fs::remove_file(&path).ok();
    sdc_campaigns::run(&spec, &path, false, &opts).unwrap();
    let reference = std::fs::read(&path).unwrap();

    let mut g = c.benchmark_group("campaign_engine_threads");
    g.sample_size(10);
    for t in THREAD_COUNTS {
        sdc_parallel::set_threads(t);
        std::fs::remove_file(&path).ok();
        sdc_campaigns::run(&spec, &path, false, &opts).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference,
            "campaign artifact must be byte-identical at any thread count"
        );
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                std::fs::remove_file(&path).ok();
                black_box(sdc_campaigns::run(&spec, &path, false, &opts).unwrap())
            })
        });
    }
    g.finish();
    std::fs::remove_file(&path).ok();
    sdc_parallel::set_threads(0);
}

criterion_group!(benches, bench_spmv_scaling, bench_campaign_engine_scaling);
criterion_main!(benches);

//! Criterion benchmarks at the solver level: time-to-solution of CG,
//! GMRES, restarted GMRES and FT-GMRES on the Poisson problem, and the
//! cost of running FT-GMRES with injection plumbing armed versus
//! fault-free — the end-to-end version of the "cheap detector" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
use sdc_gmres::prelude::*;
use sdc_sparse::gallery;
use std::hint::black_box;

fn problem() -> (sdc_sparse::CsrMatrix, Vec<f64>) {
    let a = gallery::poisson2d(40);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    (a, b)
}

fn bench_solvers(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("time_to_solution_poisson40");
    g.sample_size(10);
    let (a, b) = problem();

    g.bench_function("cg", |bch| {
        bch.iter(|| black_box(cg_solve(&a, &b, None, &CgConfig { tol: 1e-7, max_iters: 2000 })))
    });
    g.bench_function("gmres_full", |bch| {
        let cfg = GmresConfig { tol: 1e-7, max_iters: 400, ..Default::default() };
        bch.iter(|| black_box(gmres_solve(&a, &b, None, &cfg)))
    });
    g.bench_function("gmres_restart25", |bch| {
        let cfg =
            GmresConfig { tol: 1e-7, max_iters: 2000, restart: Some(25), ..Default::default() };
        bch.iter(|| black_box(gmres_solve(&a, &b, None, &cfg)))
    });
    g.bench_function("ftgmres_25inner", |bch| {
        let cfg = FtGmresConfig {
            outer: sdc_gmres::fgmres::FgmresConfig {
                tol: 1e-7,
                max_outer: 60,
                ..Default::default()
            },
            inner_iters: 25,
            ..Default::default()
        };
        bch.iter(|| black_box(sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &cfg)))
    });
    g.finish();
}

fn bench_injection_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftgmres_injection_overhead");
    g.sample_size(10);
    let (a, b) = problem();
    let cfg = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-7, max_outer: 60, ..Default::default() },
        inner_iters: 25,
        ..Default::default()
    };
    g.bench_function("fault_free", |bch| {
        bch.iter(|| black_box(sdc_gmres::ftgmres::ftgmres_solve(&a, &b, None, &cfg)))
    });
    g.bench_function("armed_injector", |bch| {
        // Single-shot injector targeting a site that exists: measures the
        // full plumbing cost including the one committed fault.
        bch.iter(|| {
            let point = CampaignPoint {
                aggregate_iteration: 30,
                inner_per_outer: 25,
                class: FaultClass::Slight,
                position: MgsPosition::First,
            };
            let inj = point.injector();
            black_box(sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj))
        })
    });
    let det_cfg = FtGmresConfig {
        inner_detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner)),
        ..cfg
    };
    g.bench_function("armed_injector_plus_detector", |bch| {
        bch.iter(|| {
            let point = CampaignPoint {
                aggregate_iteration: 30,
                inner_per_outer: 25,
                class: FaultClass::Huge,
                position: MgsPosition::First,
            };
            let inj = point.injector();
            black_box(sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &det_cfg, &inj))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_injection_overhead);
criterion_main!(benches);

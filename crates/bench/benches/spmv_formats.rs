//! CSR vs SELL-C-σ SpMV across the gallery's two structural classes, at
//! 1/2/4 threads. `BENCH_spmv.json` at the repo root commits the
//! baseline medians; CI's `bench-regression` job re-runs this bench in
//! quick mode (`BENCH_QUICK=1`, same matrices, fewer samples) and fails
//! on gross slowdowns via the `bench_gate` binary.
//!
//! Before timing anything, every SELL product is compared *bitwise*
//! against the 1-thread CSR result — the bench doubles as an end-to-end
//! witness of the format/thread determinism contract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_sparse::{auto_format, gallery, CsrMatrix, SellMatrix, SparseFormat};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Case {
    name: &'static str,
    a: CsrMatrix,
}

fn cases() -> Vec<Case> {
    vec![
        // Near-uniform rows (5-point stencil): SELL's best case; auto
        // picks SELL. n = 32 400, nnz = 161 280.
        Case { name: "poisson180", a: gallery::poisson2d(180) },
        // Ragged circuit rows (supply rails): padding-hostile; the auto
        // heuristic decides from the fill ratio.
        Case {
            name: "circuit3000",
            a: gallery::circuit_mna(&gallery::CircuitMnaConfig {
                nodes: 3000,
                seed: 7,
                ..Default::default()
            }),
        },
    ]
}

fn bench_spmv_formats(c: &mut Criterion) {
    for case in cases() {
        let a = &case.a;
        let sell = SellMatrix::from_csr(a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos()).collect();

        sdc_parallel::set_threads(1);
        let mut reference = vec![0.0; a.nrows()];
        a.par_spmv(&x, &mut reference);

        let stats = sdc_sparse::structure::row_length_stats(a);
        println!(
            "{}: n={} nnz={} row_len(mean={:.2} cv={:.2}) sell_fill={:.3} auto={}",
            case.name,
            a.nrows(),
            a.nnz(),
            stats.mean,
            stats.cv(),
            sell.fill_ratio(),
            auto_format(a)
        );

        for (fmt_name, fmt) in [("csr", SparseFormat::Csr), ("sell", SparseFormat::Sell)] {
            let mut g = c.benchmark_group(format!("spmv_{fmt_name}_{}", case.name));
            g.sample_size(20);
            for t in THREAD_COUNTS {
                sdc_parallel::set_threads(t);
                let mut y = vec![0.0; a.nrows()];
                match fmt {
                    SparseFormat::Sell => sell.par_spmv(&x, &mut y),
                    _ => a.par_spmv(&x, &mut y),
                }
                assert!(
                    y.iter().zip(&reference).all(|(p, q)| p.to_bits() == q.to_bits()),
                    "{fmt_name} SpMV must be bitwise format- and thread-independent"
                );
                g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                    b.iter(|| {
                        match fmt {
                            SparseFormat::Sell => sell.par_spmv(black_box(&x), &mut y),
                            _ => a.par_spmv(black_box(&x), &mut y),
                        }
                        black_box(y[0])
                    })
                });
            }
            g.finish();
        }
        sdc_parallel::set_threads(0);
    }
}

criterion_group!(benches, bench_spmv_formats);
criterion_main!(benches);

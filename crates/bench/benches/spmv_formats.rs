//! CSR vs SELL-C-σ SpMV across the gallery's two structural classes, at
//! 1/2/4 threads. `BENCH_spmv.json` at the repo root commits the
//! baseline medians; CI's `bench-regression` job re-runs this bench in
//! quick mode (`BENCH_QUICK=1`, same matrices, fewer samples) and fails
//! on gross slowdowns via the `bench_gate` binary.
//!
//! Four engines per matrix: strict CSR and strict SELL under the
//! auto-detected ISA, strict SELL under the forced scalar fallback
//! (`sell_scalar` — the AVX2 speedup witness is the sell/sell_scalar
//! ratio on poisson180), and the fast-math CSR tier (`csr_fastmath`).
//!
//! Before timing anything, every strict product is compared *bitwise*
//! against the 1-thread CSR result — the bench doubles as an end-to-end
//! witness of the format/thread/SIMD determinism contract. The
//! fast-math product is held to a relative-error bound instead; bitwise
//! equality with strict is exactly what the tier gives up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_sparse::simd::{set_mode, SimdMode};
use sdc_sparse::{auto_format, gallery, CsrMatrix, SellMatrix};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Case {
    name: &'static str,
    a: CsrMatrix,
}

fn cases() -> Vec<Case> {
    vec![
        // Near-uniform rows (5-point stencil): SELL's best case; auto
        // picks SELL. n = 32 400, nnz = 161 280.
        Case { name: "poisson180", a: gallery::poisson2d(180) },
        // Ragged circuit rows (supply rails): padding-hostile; the auto
        // heuristic decides from the fill ratio.
        Case {
            name: "circuit3000",
            a: gallery::circuit_mna(&gallery::CircuitMnaConfig {
                nodes: 3000,
                seed: 7,
                ..Default::default()
            }),
        },
    ]
}

/// The kernel engines under test. `simd` forces a mode for the
/// duration of the engine's groups (None = leave the active mode).
struct Engine {
    name: &'static str,
    simd: Option<SimdMode>,
    fastmath: bool,
    sell: bool,
}

const ENGINES: [Engine; 4] = [
    Engine { name: "csr", simd: None, fastmath: false, sell: false },
    Engine { name: "sell", simd: None, fastmath: false, sell: true },
    Engine { name: "sell_scalar", simd: Some(SimdMode::Scalar), fastmath: false, sell: true },
    Engine { name: "csr_fastmath", simd: None, fastmath: true, sell: false },
];

fn bench_spmv_formats(c: &mut Criterion) {
    for case in cases() {
        let a = &case.a;
        let sell = SellMatrix::from_csr(a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos()).collect();

        sdc_parallel::set_threads(1);
        let mut reference = vec![0.0; a.nrows()];
        a.par_spmv(&x, &mut reference);
        let ref_norm = reference.iter().map(|v| v * v).sum::<f64>().sqrt();

        let stats = sdc_sparse::structure::row_length_stats(a);
        println!(
            "{}: n={} nnz={} row_len(mean={:.2} cv={:.2}) sell_fill={:.3} auto={}",
            case.name,
            a.nrows(),
            a.nnz(),
            stats.mean,
            stats.cv(),
            sell.fill_ratio(),
            auto_format(a)
        );

        for engine in &ENGINES {
            if let Some(mode) = engine.simd {
                set_mode(mode).expect("scalar fallback always available");
            }
            // Tag this engine's BENCH_JSON lines with the ISA it actually
            // runs and its kernel tier, so baselines regenerated on SIMD
            // hosts are self-describing and bench_gate can flag a
            // machine-class mismatch.
            criterion::set_dump_context(&[
                ("isa", sdc_sparse::simd::active().as_str()),
                ("tier", if engine.fastmath { "fast_math" } else { "strict" }),
            ]);
            let mut g = c.benchmark_group(format!("spmv_{}_{}", engine.name, case.name));
            g.sample_size(20);
            for t in THREAD_COUNTS {
                sdc_parallel::set_threads(t);
                let mut y = vec![0.0; a.nrows()];
                let run = |y: &mut Vec<f64>| match (engine.sell, engine.fastmath) {
                    (true, _) => sell.par_spmv(&x, y),
                    (false, true) => a.par_spmv_fastmath(&x, y),
                    (false, false) => a.par_spmv(&x, y),
                };
                run(&mut y);
                if engine.fastmath {
                    // The tier trades bitwise identity for speed; it
                    // must still land within a tight forward error.
                    let err = y
                        .iter()
                        .zip(&reference)
                        .map(|(p, q)| (p - q) * (p - q))
                        .sum::<f64>()
                        .sqrt();
                    assert!(
                        err <= 1e-12 * ref_norm.max(1.0),
                        "{} fast-math SpMV drifted: ||err|| = {err:e}",
                        engine.name
                    );
                } else {
                    assert!(
                        y.iter().zip(&reference).all(|(p, q)| p.to_bits() == q.to_bits()),
                        "{} SpMV must be bitwise format-, thread- and SIMD-independent",
                        engine.name
                    );
                }
                g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                    b.iter(|| {
                        run(black_box(&mut y));
                        black_box(y[0])
                    })
                });
            }
            g.finish();
            if engine.simd.is_some() {
                set_mode(SimdMode::Auto).expect("restore auto dispatch");
            }
        }
        sdc_parallel::set_threads(0);
    }
}

criterion_group!(benches, bench_spmv_formats);
criterion_main!(benches);

//! Right-preconditioned GMRES across the preconditioner vocabulary
//! (none / jacobi / ilu0 / chebyshev) on the same two matrices as the
//! SpMV format bench: the near-uniform `poisson180` stencil and the
//! ragged `circuit3000` MNA system. Measures wall time to tolerance and
//! records the (deterministic) iterations-to-tol per preconditioner.
//!
//! `BENCH_precond.json` at the repo root commits the baseline medians;
//! CI's `bench-regression` job re-runs in quick mode (`BENCH_QUICK=1`,
//! same matrices, fewer samples) and fails on gross slowdowns via
//! `bench_gate`. Iteration counts ride along in the same dump as
//! `gmres_precond_iters_*` pseudo-benches (the "µs" fields hold the
//! iteration count); they are bitwise deterministic, so the gate pins
//! them far more tightly than any timing.
//!
//! The bench also asserts the headline claim the preconditioners exist
//! for: on poisson180 at tol 1e-8, ILU(0) or Chebyshev must converge in
//! at most half the unpreconditioned iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_gmres::gmres::{gmres_solve_right_precond, GmresConfig};
use sdc_gmres::precond::{BuiltPrecond, PrecondKind};
use sdc_sparse::{gallery, CsrMatrix};
use std::hint::black_box;
use std::io::Write as _;

struct Case {
    name: &'static str,
    a: CsrMatrix,
    tol: f64,
    maxit: usize,
}

fn cases() -> Vec<Case> {
    vec![
        Case { name: "poisson180", a: gallery::poisson2d(180), tol: 1e-8, maxit: 2000 },
        Case {
            name: "circuit3000",
            a: {
                // Equilibrated like the campaign dcop problem: the raw
                // MNA scaling (supply rails vs leakage) stalls even full
                // GMRES, which would measure the scaling, not the
                // preconditioner.
                let mut a = gallery::circuit_mna(&gallery::CircuitMnaConfig {
                    nodes: 3000,
                    seed: 7,
                    ..Default::default()
                });
                sdc_campaigns::problems::equilibrate(&mut a);
                a
            },
            tol: 1e-8,
            maxit: 3000,
        },
    ]
}

/// Appends the deterministic iteration counts to the `BENCH_JSON` dump
/// in the same line format the vendored criterion writes, so the
/// committed baseline pins them alongside the timings.
fn dump_iteration_counts(group: &str, iters: &[(PrecondKind, usize)]) {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let isa = sdc_sparse::simd::active().as_str();
    let mut text = String::new();
    for (kind, n) in iters {
        text.push_str(&format!(
            "{{\"id\":\"{group}/{kind}\",\"samples\":1,\"min_us\":{n},\"median_us\":{n},\"mean_us\":{n},\"isa\":\"{isa}\",\"tier\":\"strict\"}}\n"
        ));
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(text.as_bytes()));
    if let Err(e) = written {
        eprintln!("gmres_precond: cannot append BENCH_JSON to {path}: {e}");
    }
}

fn bench_gmres_precond(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    for case in cases() {
        let a = &case.a;
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        let cfg = GmresConfig { tol: case.tol, max_iters: case.maxit, ..Default::default() };

        let mut iters: Vec<(PrecondKind, usize)> = Vec::new();
        let mut g = c.benchmark_group(format!("gmres_precond_{}", case.name));
        g.sample_size(10);
        for kind in PrecondKind::all() {
            let pc = BuiltPrecond::build(kind, a)
                .unwrap_or_else(|e| panic!("{kind} on {}: {e}", case.name));
            let (_, report) = gmres_solve_right_precond(a, &b, None, &cfg, &pc);
            assert!(
                report.outcome.is_converged(),
                "{kind} GMRES must converge on {} (tol {:.0e}): stopped at {} iterations",
                case.name,
                case.tol,
                report.iterations
            );
            println!(
                "{}/{kind}: {} iterations to tol {:.0e}",
                case.name, report.iterations, case.tol
            );
            iters.push((kind, report.iterations));
            g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |bch, _| {
                bch.iter(|| black_box(gmres_solve_right_precond(a, &b, None, &cfg, &pc)))
            });
        }
        g.finish();
        dump_iteration_counts(&format!("gmres_precond_iters_{}", case.name), &iters);

        if case.name == "poisson180" {
            let count = |k: PrecondKind| iters.iter().find(|(kk, _)| *kk == k).unwrap().1;
            let none = count(PrecondKind::None);
            let best = count(PrecondKind::Ilu0).min(count(PrecondKind::Chebyshev));
            assert!(
                2 * best <= none,
                "ILU(0) or Chebyshev must at least halve poisson180 iterations \
                 (none={none}, best preconditioned={best})"
            );
        }
    }
}

criterion_group!(benches, bench_gmres_precond);
criterion_main!(benches);

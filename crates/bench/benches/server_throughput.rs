//! Served-solve throughput at 1/2/4 worker threads.
//!
//! Each measurement drives a real `sdc_server` over loopback TCP: an
//! engine is built per thread count (the pool size is frozen at engine
//! construction — exactly the production startup path), a Poisson
//! matrix is registered once, and the timed unit is one full
//! request→response round trip through the scheduler. A separate
//! multi-connection sample exercises the same-matrix batching path via
//! the load generator.
//!
//! `BENCH_server.json` at the repo root commits the baseline medians
//! (see README "Performance"); the CI `bench-regression` job re-runs
//! this in quick mode and gates with `bench_gate`. Like the other
//! scaling benches, the committed numbers come from a 1-core container,
//! so scaling there is flat by construction — the gate catches rot, not
//! jitter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_campaigns::json::Json;
use sdc_server::{load_gen, serve, Client, Engine, EngineConfig};
use std::hint::black_box;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn start_server(threads: usize) -> sdc_server::ServerHandle {
    sdc_parallel::set_threads(threads);
    let engine = Arc::new(Engine::new(EngineConfig { threads: 0, queue_cap: 64, batch_max: 8 }));
    serve(engine, "127.0.0.1:0").expect("bind")
}

fn shutdown(handle: sdc_server::ServerHandle) {
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.request_lines("{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle.wait();
}

fn load_poisson(client: &mut Client) {
    let r = client
        .call(
            &Json::parse(
                "{\"cmd\":\"load_matrix\",\"name\":\"bench\",\"problem\":{\"kind\":\"poisson\",\"m\":24}}",
            )
            .unwrap(),
        )
        .expect("load_matrix");
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
}

fn solve_request() -> Json {
    Json::parse(
        "{\"cmd\":\"solve\",\"matrix\":\"bench\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10}",
    )
    .unwrap()
}

/// One connection, sequential round trips: the per-request service
/// latency floor (queue + dispatch + solve + serialization).
fn bench_single_connection(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("server_solve");
    g.sample_size(10);
    for t in THREAD_COUNTS {
        let handle = start_server(t);
        let mut client = Client::connect(handle.addr()).expect("connect");
        load_poisson(&mut client);
        let req = solve_request();
        // Warm the format caches and verify the response once.
        let warm = client.call(&req).expect("solve");
        assert!(warm.field("ok").unwrap().as_bool().unwrap());
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(client.call(&req).expect("solve")))
        });
        shutdown(handle);
    }
    g.finish();
    sdc_parallel::set_threads(0);
}

/// Four concurrent connections through the load generator: exercises
/// accept, per-connection threads and the same-matrix batching path.
fn bench_concurrent_connections(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_batch");
    g.sample_size(10);
    for t in THREAD_COUNTS {
        let handle = start_server(t);
        let mut setup = Client::connect(handle.addr()).expect("connect");
        load_poisson(&mut setup);
        let req = solve_request();
        let addr = handle.addr();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let report = load_gen(addr, 4, 2, &req).expect("load gen");
                assert_eq!(report.completed, 8, "all batched solves must succeed");
                black_box(report.completed)
            })
        });
        shutdown(handle);
    }
    g.finish();
    sdc_parallel::set_threads(0);
}

criterion_group!(benches, bench_single_connection, bench_concurrent_connections);
criterion_main!(benches);

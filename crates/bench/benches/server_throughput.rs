//! Served-solve throughput at 1/2/4 worker threads.
//!
//! Each measurement drives a real `sdc_server` over loopback TCP: an
//! engine is built per thread count (the pool size is frozen at engine
//! construction — exactly the production startup path), a Poisson
//! matrix is registered once, and the timed unit is one full
//! request→response round trip through the scheduler. A separate
//! multi-connection sample exercises the same-matrix batching path via
//! the load generator.
//!
//! A third group exercises the event loop itself at connection scale:
//! a 256-connection pipelined wave (timed), then a 1024-connection
//! open-loop run whose p50/p99 land in `BENCH_JSON` as exact
//! pseudo-samples (`server_open_loop_1024/*`) — the "thousands of
//! connections on one loop thread" claim, measured.
//!
//! `BENCH_server.json` at the repo root commits the baseline medians
//! (see README "Performance"); the CI `bench-regression` job re-runs
//! this in quick mode and gates with `bench_gate`. Like the other
//! scaling benches, the committed numbers come from a 1-core container,
//! so scaling there is flat by construction — the gate catches rot, not
//! jitter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_campaigns::json::Json;
use sdc_server::{load_gen, load_gen_open, serve, Client, Engine, EngineConfig};
use std::hint::black_box;
use std::io::Write as _;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn start_server(threads: usize) -> sdc_server::ServerHandle {
    sdc_parallel::set_threads(threads);
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 0,
        queue_cap: 64,
        batch_max: 8,
        shard: None,
    }));
    serve(engine, "127.0.0.1:0").expect("bind")
}

fn shutdown(handle: sdc_server::ServerHandle) {
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.request_lines("{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle.wait();
}

fn load_poisson(client: &mut Client) {
    let r = client
        .call(
            &Json::parse(
                "{\"cmd\":\"load_matrix\",\"name\":\"bench\",\"problem\":{\"kind\":\"poisson\",\"m\":24}}",
            )
            .unwrap(),
        )
        .expect("load_matrix");
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
}

fn solve_request() -> Json {
    Json::parse(
        "{\"cmd\":\"solve\",\"matrix\":\"bench\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10}",
    )
    .unwrap()
}

/// One connection, sequential round trips: the per-request service
/// latency floor (queue + dispatch + solve + serialization).
fn bench_single_connection(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("server_solve");
    g.sample_size(10);
    for t in THREAD_COUNTS {
        let handle = start_server(t);
        let mut client = Client::connect(handle.addr()).expect("connect");
        load_poisson(&mut client);
        let req = solve_request();
        // Warm the format caches and verify the response once.
        let warm = client.call(&req).expect("solve");
        assert!(warm.field("ok").unwrap().as_bool().unwrap());
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(client.call(&req).expect("solve")))
        });
        shutdown(handle);
    }
    g.finish();
    sdc_parallel::set_threads(0);
}

/// Four concurrent connections through the load generator: exercises
/// accept, per-connection threads and the same-matrix batching path.
fn bench_concurrent_connections(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_batch");
    g.sample_size(10);
    for t in THREAD_COUNTS {
        let handle = start_server(t);
        let mut setup = Client::connect(handle.addr()).expect("connect");
        load_poisson(&mut setup);
        let req = solve_request();
        let addr = handle.addr();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let report = load_gen(addr, 4, 2, &req).expect("load gen");
                assert_eq!(report.completed, 8, "all batched solves must succeed");
                black_box(report.completed)
            })
        });
        shutdown(handle);
    }
    g.finish();
    sdc_parallel::set_threads(0);
}

/// Appends latency percentiles to `BENCH_JSON` as exact pseudo-samples
/// (same shape `gmres_precond` uses for iteration counts).
fn dump_percentiles(group: &str, report: &sdc_server::LoadReport) {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let isa = sdc_sparse::simd::active().as_str();
    let mut text = String::new();
    for (name, v) in
        [("p50_us", report.percentile_us(50.0)), ("p99_us", report.percentile_us(99.0))]
    {
        text.push_str(&format!(
            "{{\"id\":\"{group}/{name}\",\"samples\":{n},\"min_us\":{v},\"median_us\":{v},\"mean_us\":{v},\"isa\":\"{isa}\",\"tier\":\"latency\"}}\n",
            n = report.completed,
        ));
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(text.as_bytes()));
    if let Err(e) = written {
        eprintln!("server_throughput: cannot append BENCH_JSON to {path}: {e}");
    }
}

/// The event loop at connection scale. The timed unit multiplexes a
/// pipelined stats wave across 256 persistent connections on one
/// client thread — pure loop dispatch, no solver time. The untimed
/// 1024-connection open-loop wave of real solves dumps its p50/p99.
fn bench_many_connections(c: &mut Criterion) {
    sdc_server::netpoll::ensure_fd_limit(8192);
    let quick = std::env::var("BENCH_QUICK").map(|v| v == "1").unwrap_or(false);

    let handle = start_server(1);
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connect");
    load_poisson(&mut setup);

    let mut conns: Vec<Client> =
        (0..256).map(|_| Client::connect(addr).expect("connect wave")).collect();
    let stats = "{\"cmd\":\"stats\"}";
    let mut g = c.benchmark_group("server_conns");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("wave256"), |b| {
        b.iter(|| {
            for conn in conns.iter_mut() {
                conn.send_line(stats).expect("send");
            }
            for conn in conns.iter_mut() {
                black_box(conn.read_frame().expect("read").expect("frame"));
            }
        })
    });
    g.finish();
    drop(conns);

    // Open-loop: 1024 connections, fixed aggregate arrival rate, small
    // solves; latency measured from scheduled send times. Quick mode
    // trims the per-connection request count, not the connection count
    // (the scale is the point).
    let small = Json::parse(
        "{\"cmd\":\"load_matrix\",\"name\":\"small\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
    )
    .unwrap();
    let r = setup.call(&small).expect("load small");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    let solve = Json::parse(
        "{\"cmd\":\"solve\",\"matrix\":\"small\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":200}",
    )
    .unwrap();
    let requests = if quick { 1 } else { 3 };
    let report = load_gen_open(addr, 1024, requests, 1000.0, &solve).expect("open-loop load gen");
    assert_eq!(report.completed, 1024 * requests, "all open-loop solves must succeed");
    eprintln!("server_open_loop_1024: {}", report.render());
    dump_percentiles("server_open_loop_1024", &report);

    shutdown(handle);
    sdc_parallel::set_threads(0);
}

criterion_group!(
    benches,
    bench_single_connection,
    bench_concurrent_connections,
    bench_many_connections
);
criterion_main!(benches);

//! Criterion benchmark for the paper's "inexpensive checks" claim (§V):
//! the detector adds one comparison per projection coefficient, so a
//! GMRES iteration with the detector enabled must cost essentially the
//! same as without it. Also measures the three §VI-D least-squares
//! policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::matrix::DenseMatrix;
use sdc_gmres::prelude::*;
use sdc_sparse::gallery;
use std::hint::black_box;

fn bench_detector_overhead(c: &mut Criterion) {
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("gmres25_detector");
    g.sample_size(10);
    let a = gallery::poisson2d(50);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);

    let base = GmresConfig { tol: 0.0, max_iters: 25, ..Default::default() };
    g.bench_function(BenchmarkId::new("detector", "off"), |bch| {
        bch.iter(|| black_box(gmres_solve(&a, &b, None, &base)))
    });
    let with_det = GmresConfig {
        detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Record)),
        ..base
    };
    g.bench_function(BenchmarkId::new("detector", "record"), |bch| {
        bch.iter(|| black_box(gmres_solve(&a, &b, None, &with_det)))
    });
    g.finish();
}

fn bench_lsq_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsq_policy_k25");
    g.sample_size(30);
    // A representative 25x25 triangular factor.
    let k = 25;
    let mut r = DenseMatrix::zeros(k, k);
    for i in 0..k {
        r[(i, i)] = 2.0 + (i as f64 * 0.1).sin();
        for j in i + 1..k {
            r[(i, j)] = 0.3 * ((i * j) as f64 * 0.05).cos();
        }
    }
    let z: Vec<f64> = (0..k).map(|i| (i as f64 * 0.21).sin()).collect();
    for (name, policy) in [
        ("1_standard", LstsqPolicy::Standard),
        ("2_fallback", LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 }),
        ("3_rank_revealing", LstsqPolicy::RankRevealing { tol: 1e-12 }),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(solve_projected(&r, &z, policy).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detector_overhead, bench_lsq_policies);
criterion_main!(benches);

//! Criterion benchmark for the campaign engine's scheduling overhead:
//! the same small Poisson sweep through (a) the raw `run_sweep` path
//! (in-memory, no persistence) and (b) the full executor (spec
//! expansion, sharding, JSONL streaming, flush-per-shard). The delta is
//! what the artifact layer costs — it should be noise next to the
//! solves themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use sdc_campaigns::{CampaignSpec, GridBlock, ProblemSpec, RunOptions};
use std::hint::black_box;

fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        inner_iters: 8,
        outer_tol: 1e-8,
        outer_max: 60,
        stride: 5,
        blocks: vec![GridBlock::undetected_full()],
        ..CampaignSpec::paper_shape("bench", vec![ProblemSpec::Poisson { m: 8 }])
    }
}

fn bench_engine_vs_raw(c: &mut Criterion) {
    // Tag every BENCH_JSON line with the host ISA so bench_gate can
    // flag baselines recorded on a different machine class.
    criterion::set_dump_context(&[
        ("isa", sdc_sparse::simd::active().as_str()),
        ("tier", "strict"),
    ]);
    let mut g = c.benchmark_group("campaign_engine_overhead");
    g.sample_size(10);
    let spec = bench_spec();

    g.bench_function("raw_run_sweep", |b| {
        let problem = spec.problems[0].build();
        b.iter(|| {
            // Same work as one executor run: one baseline solve (all
            // scenarios share the standard lsq policy), then one sweep
            // per scenario — minus all spec/artifact machinery.
            let ff = sdc_campaigns::failure_free(
                &problem,
                &spec.baseline_config(sdc_campaigns::LsqSpec::Standard),
            );
            let mut results = Vec::new();
            for scenario in spec.scenarios() {
                let cfg = spec.campaign_config(&scenario);
                results.push(sdc_campaigns::run_sweep(
                    &problem,
                    &cfg,
                    scenario.class,
                    scenario.position,
                    ff.iterations,
                ));
            }
            black_box(results)
        })
    });

    g.bench_function("executor_with_artifact", |b| {
        let path =
            std::env::temp_dir().join(format!("sdc_bench_engine_{}.jsonl", std::process::id()));
        b.iter(|| {
            std::fs::remove_file(&path).ok();
            let summary = sdc_campaigns::run(
                &spec,
                &path,
                false,
                &RunOptions { quiet: true, ..Default::default() },
            )
            .expect("campaign runs");
            black_box(summary)
        });
        std::fs::remove_file(&path).ok();
    });

    // Report-side cost: reconstructing every series from the artifact.
    g.bench_function("report_reconstruction", |b| {
        let path =
            std::env::temp_dir().join(format!("sdc_bench_report_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        sdc_campaigns::run(&spec, &path, false, &RunOptions { quiet: true, ..Default::default() })
            .expect("campaign runs");
        b.iter(|| black_box(sdc_campaigns::CampaignData::load(&path).expect("loads")));
        std::fs::remove_file(&path).ok();
    });

    g.finish();
}

criterion_group!(benches, bench_engine_vs_raw);
criterion_main!(benches);

//! Format-determinism contract across the gallery: SELL-C-σ SpMV is
//! bitwise equal to CSR SpMV on random, Poisson and circuit matrices at
//! pinned 1-thread and 4-thread pools, and the CSR→SELL→CSR round trip
//! is exact. (The CI test matrix additionally runs this whole file under
//! `SDC_THREADS=1` and `=4`; the explicit pinning below makes the
//! cross-thread-count comparison hold inside a single process too.)

use sdc_sparse::{gallery, CsrMatrix, SellMatrix};

fn gallery_cases() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("random", gallery::sprand(300, 300, 0.03, 2026)),
        // Large enough that par_spmv takes its parallel branch.
        ("poisson", gallery::poisson2d(150)),
        (
            "circuit",
            gallery::circuit_mna(&gallery::CircuitMnaConfig {
                nodes: 900,
                seed: 5,
                ..Default::default()
            }),
        ),
    ]
}

#[test]
fn sell_round_trips_and_matches_csr_bitwise_at_1_and_4_threads() {
    let _guard = sdc_parallel::test_serial_guard();
    for (name, a) in gallery_cases() {
        let sell = SellMatrix::from_csr(&a);
        assert_eq!(sell.to_csr(), a, "{name}: CSR→SELL→CSR must be exact");

        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.43).sin() + 0.2).collect();
        let mut reference = vec![0.0; a.nrows()];
        a.spmv(&x, &mut reference); // serial CSR: the ground truth

        for threads in [1usize, 4] {
            sdc_parallel::set_threads(threads);
            let mut y_csr = vec![0.0; a.nrows()];
            let mut y_sell = vec![0.0; a.nrows()];
            a.par_spmv(&x, &mut y_csr);
            sell.par_spmv(&x, &mut y_sell);
            for i in 0..a.nrows() {
                assert_eq!(
                    reference[i].to_bits(),
                    y_csr[i].to_bits(),
                    "{name}: CSR thread-count drift at row {i} ({threads} threads)"
                );
                assert_eq!(
                    reference[i].to_bits(),
                    y_sell[i].to_bits(),
                    "{name}: SELL format drift at row {i} ({threads} threads)"
                );
            }
        }
        sdc_parallel::set_threads(0);
    }
}

#[test]
fn auto_format_is_deterministic_per_matrix() {
    for (name, a) in gallery_cases() {
        let f1 = sdc_sparse::auto_format(&a);
        let f2 = sdc_sparse::auto_format(&a);
        assert_eq!(f1, f2, "{name}");
        assert_ne!(f1, sdc_sparse::SparseFormat::Auto, "{name}: auto must resolve");
    }
    // The two structural classes land where the heuristic intends:
    // stencil rows are uniform (SELL), tiny matrices stay CSR.
    assert_eq!(sdc_sparse::auto_format(&gallery::poisson2d(150)), sdc_sparse::SparseFormat::Sell);
    assert_eq!(sdc_sparse::auto_format(&gallery::poisson2d(6)), sdc_sparse::SparseFormat::Csr);
}

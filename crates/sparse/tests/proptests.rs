//! Property-based tests for the sparse substrate.

use proptest::prelude::*;
use sdc_dense::vector;
use sdc_sparse::gallery;
use sdc_sparse::io::{read_matrix_market_from, write_matrix_market_to};
use sdc_sparse::{structure, CooMatrix, CscMatrix};
use std::io::Cursor;

/// Strategy: a random COO matrix with bounded size and entries.
fn coo_strategy(max_n: usize) -> impl Strategy<Value = CooMatrix> {
    (1..max_n, 1..max_n).prop_flat_map(|(r, c)| {
        let triplets =
            proptest::collection::vec((0..r, 0..c, -100.0f64..100.0), 0..(r * c).min(80) + 1);
        triplets.prop_map(move |ts| {
            let mut coo = CooMatrix::new(r, c);
            for (i, j, v) in ts {
                coo.push(i, j, v);
            }
            coo
        })
    })
}

proptest! {
    #[test]
    fn csr_spmv_matches_dense_matvec(coo in coo_strategy(12)) {
        let a = coo.to_csr();
        let d = a.to_dense();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.61).sin() + 0.3).collect();
        let mut ys = vec![0.0; a.nrows()];
        a.spmv(&x, &mut ys);
        let mut yd = vec![0.0; a.nrows()];
        d.matvec(&x, &mut yd);
        for i in 0..a.nrows() {
            prop_assert!((ys[i] - yd[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(coo in coo_strategy(12)) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_transpose_adjoint_identity(coo in coo_strategy(10)) {
        // <A x, y> == <x, Aᵀ y> up to rounding.
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos()).collect();
        let y: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.73).sin()).collect();
        let mut ax = vec![0.0; a.nrows()];
        a.spmv(&x, &mut ax);
        let mut aty = vec![0.0; a.ncols()];
        a.spmv_transpose(&y, &mut aty);
        let lhs = vector::dot(&ax, &y);
        let rhs = vector::dot(&x, &aty);
        let scale = a.norm_fro().max(1.0) * vector::nrm2(&x).max(1.0) * vector::nrm2(&y).max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-12 * scale);
    }

    #[test]
    fn csc_round_trip(coo in coo_strategy(10)) {
        let a = coo.to_csr();
        let csc = CscMatrix::from_csr(&a);
        prop_assert_eq!(csc.to_csr(), a);
    }

    #[test]
    fn matrix_market_round_trip_is_exact(coo in coo_strategy(10)) {
        let a = coo.to_csr();
        let mut bytes = Vec::new();
        write_matrix_market_to(&mut bytes, &a).unwrap();
        let b = read_matrix_market_from(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn structural_rank_bounds(coo in coo_strategy(10)) {
        let a = coo.to_csr();
        let sr = structure::structural_rank(&a);
        prop_assert!(sr <= a.nrows().min(a.ncols()));
        // Rank at least the number of rows holding a "private" column is
        // hard to compute; weaker invariant: a nonzero matrix has rank>=1.
        if a.nnz() > 0 {
            prop_assert!(sr >= 1);
        } else {
            prop_assert_eq!(sr, 0);
        }
    }

    // SELL-C-σ: the format must be lossless and bitwise-invisible for
    // *every* pattern and every (C, σ) — not just the gallery shapes.

    #[test]
    fn csr_sell_csr_round_trip_is_exact(
        coo in coo_strategy(14),
        chunk in 1usize..9,
        sigma in 1usize..20,
    ) {
        let a = coo.to_csr();
        let s = sdc_sparse::SellMatrix::from_csr_with(&a, chunk, sigma);
        prop_assert_eq!(s.to_csr(), a);
    }

    #[test]
    fn sell_spmv_is_bitwise_equal_to_csr(
        coo in coo_strategy(14),
        chunk in 1usize..9,
        sigma in 1usize..20,
    ) {
        let a = coo.to_csr();
        let s = sdc_sparse::SellMatrix::from_csr_with(&a, chunk, sigma);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.61).sin() + 0.3).collect();
        let mut yc = vec![0.0; a.nrows()];
        let mut ys = vec![0.0; a.nrows()];
        let mut yp = vec![0.0; a.nrows()];
        a.spmv(&x, &mut yc);
        s.spmv(&x, &mut ys);
        s.par_spmv(&x, &mut yp);
        for i in 0..a.nrows() {
            prop_assert_eq!(yc[i].to_bits(), ys[i].to_bits(), "serial row {}", i);
            prop_assert_eq!(yc[i].to_bits(), yp[i].to_bits(), "parallel row {}", i);
        }
    }

    #[test]
    fn frobenius_dominates_each_entry(coo in coo_strategy(10)) {
        // The detector-bound chain: every |a_ij| ≤ ‖A‖_max ≤ ‖A‖_F.
        let a = coo.to_csr();
        prop_assert!(a.norm_max() <= a.norm_fro() + 1e-12);
    }

    #[test]
    fn poisson_sizes_are_consistent(m in 1usize..12) {
        let a = gallery::poisson2d(m);
        prop_assert_eq!(a.nrows(), m * m);
        // nnz = 5m² − 4m (each grid direction drops 2m boundary couplings).
        prop_assert_eq!(a.nnz(), 5 * m * m - 4 * m);
        prop_assert!(a.is_numerically_symmetric(0.0));
        prop_assert_eq!(a, gallery::poisson2d_kron(m));
    }

    #[test]
    fn kron_norm_multiplicativity(m in 1usize..5, n in 1usize..5) {
        // ‖A ⊗ B‖_F = ‖A‖_F · ‖B‖_F.
        let a = gallery::poisson1d(m);
        let b = gallery::grcar(n, 1);
        let k = sdc_sparse::ops::kron(&a, &b);
        let lhs = k.norm_fro();
        let rhs = a.norm_fro() * b.norm_fro();
        prop_assert!((lhs - rhs).abs() < 1e-10 * rhs.max(1.0));
    }

    // Matrix Market round trips. Campaign specs load real `.mtx` inputs,
    // so the reader must reproduce matrices *exactly* — the writer's 17
    // significant digits round-trip every f64, and the three supported
    // symmetry/field variants must expand to the same CSR a direct
    // construction gives.

    #[test]
    fn matrix_market_general_round_trip(coo in coo_strategy(12)) {
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a).unwrap();
        let b = read_matrix_market_from(Cursor::new(buf)).unwrap();
        prop_assert_eq!(b, a);
    }

    #[test]
    fn matrix_market_symmetric_expands_exactly(
        n in 1usize..10,
        entries in proptest::collection::vec((0usize..10, 0usize..10, -100.0f64..100.0), 0..30),
    ) {
        // Keep the first value per distinct lower-triangle coordinate so
        // the file and the reference agree without duplicate-summing.
        let mut seen = std::collections::BTreeSet::new();
        let mut lower = Vec::new();
        for (i, j, v) in entries {
            let (r, c) = (i.max(j) % n, i.min(j) % n);
            if seen.insert((r, c)) {
                lower.push((r, c, v));
            }
        }
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n{n} {n} {}\n",
            lower.len()
        );
        let mut reference = CooMatrix::new(n, n);
        for &(r, c, v) in &lower {
            text.push_str(&format!("{} {} {v:e}\n", r + 1, c + 1));
            reference.push_sym(r, c, v);
        }
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        prop_assert_eq!(a, reference.to_csr());
    }

    // ILU(0): on any strictly diagonally dominant matrix (nonsingular by
    // Gershgorin) the factorization must succeed and never manufacture a
    // NaN/Inf — neither in the stored factor nor in a triangular solve.
    // The opaque-preconditioner fault model corrupts these stored values
    // deliberately; this pins down that *clean* factors are always finite.

    #[test]
    fn ilu0_on_diagonally_dominant_input_is_finite(
        n in 2usize..12,
        entries in proptest::collection::vec((0usize..12, 0usize..12, -10.0f64..10.0), 0..40),
    ) {
        let mut coo = CooMatrix::new(n, n);
        let mut row_abs = vec![0.0f64; n];
        let mut seen = std::collections::BTreeSet::new();
        for (i, j, v) in entries {
            let (r, c) = (i % n, j % n);
            if r != c && seen.insert((r, c)) {
                coo.push(r, c, v);
                row_abs[r] += v.abs();
            }
        }
        for (r, &s) in row_abs.iter().enumerate() {
            coo.push(r, r, s + 1.0);
        }
        let a = coo.to_csr();
        let f = sdc_sparse::Ilu0Factor::factor(&a).expect("dominant input must factor");
        prop_assert!(f.values().iter().all(|v| v.is_finite()), "factor has non-finite entries");
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin() + 0.2).collect();
        let mut z = vec![0.0; n];
        f.solve(&q, &mut z);
        prop_assert!(z.iter().all(|v| v.is_finite()), "solve produced non-finite entries");
        // The triangular solves are deterministic: same input, same bits.
        let mut z2 = vec![f64::NAN; n];
        f.solve(&q, &mut z2);
        for i in 0..n {
            prop_assert_eq!(z[i].to_bits(), z2[i].to_bits(), "row {}", i);
        }
    }

    #[test]
    fn matrix_market_pattern_reads_unit_values(
        n in 1usize..10,
        entries in proptest::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let mut seen = std::collections::BTreeSet::new();
        let mut coords = Vec::new();
        for (i, j) in entries {
            let (r, c) = (i % n, j % n);
            if seen.insert((r, c)) {
                coords.push((r, c));
            }
        }
        let mut text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n{n} {n} {}\n",
            coords.len()
        );
        let mut reference = CooMatrix::new(n, n);
        for &(r, c) in &coords {
            text.push_str(&format!("{} {}\n", r + 1, c + 1));
            reference.push(r, c, 1.0);
        }
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        prop_assert_eq!(a, reference.to_csr());
    }
}

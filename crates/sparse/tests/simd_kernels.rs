//! SIMD kernel contracts, property-tested.
//!
//! Strict tier: the AVX2 SELL kernel must be *bitwise* equal to the
//! scalar kernel over random matrices, chunk heights and σ windows —
//! including NaN-corrupted padding slots (which the masked gather must
//! never read) and zero-width chunks. Fast-math tier: not bitwise vs
//! strict, but within a forward-error bound, deterministic run-to-run,
//! and bitwise-identical across scalar and AVX2 hosts.
//!
//! Every test that pins a SIMD mode holds `test_mode_guard`, which
//! serializes the global-mode flips and restores `auto` on drop.

use proptest::prelude::*;
use sdc_sparse::simd::{set_mode, test_mode_guard, SimdMode};
use sdc_sparse::{CooMatrix, CsrMatrix, SellMatrix};
use std::collections::BTreeMap;

fn csr_from(entries: &[(usize, usize, f64)], r: usize, c: usize) -> CsrMatrix {
    let mut map = BTreeMap::new();
    for &(i, j, v) in entries {
        if i < r && j < c {
            map.insert((i, j), v);
        }
    }
    let mut coo = CooMatrix::new(r, c);
    for (&(i, j), &v) in &map {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

fn probe(c: usize) -> Vec<f64> {
    (0..c).map(|i| (i as f64 * 0.7).sin() * 2.0 - 0.3).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sell_simd_bitwise_equals_scalar(
        r in 1usize..40,
        c in 1usize..40,
        entries in proptest::collection::vec(
            (0usize..40, 0usize..40, -100.0f64..100.0), 0..220),
        chunk_sel in 0usize..4,
        sigma_sel in 0usize..4,
        corrupt_sel in 0usize..2,
    ) {
        let corrupt_padding = corrupt_sel == 1;
        let a = csr_from(&entries, r, c);
        // C = 8 twice: that is the SIMD-eligible chunk height; the other
        // heights pin the scalar fallback.
        let chunk = [1, 3, 8, 8][chunk_sel];
        let sigma = [1, 2, 8, 64][sigma_sel];
        let mut s = SellMatrix::from_csr_with(&a, chunk, sigma);
        if corrupt_padding {
            // The masked gather must leave padding architecturally
            // unread: NaN here may not perturb a single output bit.
            for i in 0..s.storage_len() {
                if s.is_padding_slot(i) {
                    s.values_mut()[i] = f64::NAN;
                }
            }
        }
        let x = probe(c);
        let _guard = test_mode_guard();
        set_mode(SimdMode::Scalar).unwrap();
        let mut y_scalar = vec![0.0; r];
        s.spmv(&x, &mut y_scalar);
        let mut y_csr = vec![0.0; r];
        a.spmv(&x, &mut y_csr);
        if !corrupt_padding {
            for i in 0..r {
                prop_assert_eq!(y_scalar[i].to_bits(), y_csr[i].to_bits(), "row {}", i);
            }
        }
        if set_mode(SimdMode::Avx2).is_ok() {
            let mut y_simd = vec![0.0; r];
            s.spmv(&x, &mut y_simd);
            let mut y_par = vec![0.0; r];
            s.par_spmv(&x, &mut y_par);
            for i in 0..r {
                prop_assert_eq!(
                    y_scalar[i].to_bits(), y_simd[i].to_bits(),
                    "C={} sigma={} row {}", chunk, sigma, i);
                prop_assert_eq!(y_scalar[i].to_bits(), y_par[i].to_bits(), "par row {}", i);
            }
        }
    }

    #[test]
    fn fastmath_bounded_deterministic_and_isa_invariant(
        n in 1usize..30,
        entries in proptest::collection::vec(
            (0usize..30, 0usize..30, -50.0f64..50.0), 0..200),
    ) {
        let a = csr_from(&entries, n, n);
        let x = probe(n);
        let mut y_strict = vec![0.0; n];
        a.spmv(&x, &mut y_strict);
        let _guard = test_mode_guard();
        set_mode(SimdMode::Scalar).unwrap();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv_fastmath(&x, &mut y1);
        a.spmv_fastmath(&x, &mut y2);
        for i in 0..n {
            // Run-to-run determinism is exact.
            prop_assert_eq!(y1[i].to_bits(), y2[i].to_bits(), "rerun row {}", i);
            // Reordered/fused summation stays within a forward-error
            // bound of the strict kernel: ~n_row·eps·Σ|a_ij x_j|.
            let (cols, vals) = a.row(i);
            let abs_sum: f64 = cols.iter().zip(vals).map(|(&j, &v)| (v * x[j]).abs()).sum();
            let tol = 1e-13 * (1.0 + abs_sum);
            prop_assert!((y1[i] - y_strict[i]).abs() <= tol,
                "row {}: fast {} vs strict {} (tol {})", i, y1[i], y_strict[i], tol);
        }
        if set_mode(SimdMode::Avx2).is_ok() {
            // The AVX2 body fuses with vfmadd, the scalar body with
            // f64::mul_add — both correctly rounded, so the tier's bytes
            // are host-independent.
            let mut y3 = vec![0.0; n];
            a.spmv_fastmath(&x, &mut y3);
            for i in 0..n {
                prop_assert_eq!(y1[i].to_bits(), y3[i].to_bits(), "isa row {}", i);
            }
        }
    }
}

/// Zero-width (empty) chunks: eight consecutive empty stored rows give a
/// chunk whose slab is empty; the SIMD kernel must handle `width == 0`.
#[test]
fn sell_simd_handles_empty_chunks() {
    let mut coo = CooMatrix::new(16, 16);
    for i in 0..8 {
        coo.push(i, i, 1.0 + i as f64);
    }
    // Rows 8..16 empty: with C = 8 and σ = 1 the second chunk has width 0.
    let a = coo.to_csr();
    let s = SellMatrix::from_csr_with(&a, 8, 1);
    let x = probe(16);
    let _guard = test_mode_guard();
    set_mode(SimdMode::Scalar).unwrap();
    let mut y_scalar = vec![0.0; 16];
    s.spmv(&x, &mut y_scalar);
    if set_mode(SimdMode::Avx2).is_ok() {
        let mut y_simd = vec![0.0; 16];
        s.spmv(&x, &mut y_simd);
        for i in 0..16 {
            assert_eq!(y_scalar[i].to_bits(), y_simd[i].to_bits(), "row {i}");
        }
    }
}

/// The parallel fast-math path (row-parallel over the pool) is bitwise
/// identical to the serial fast-math kernel on a matrix large enough to
/// take the parallel branch, at pinned thread counts.
#[test]
fn par_fastmath_matches_serial_fastmath() {
    let a = sdc_sparse::gallery::poisson2d(150);
    assert!(a.nnz() >= sdc_sparse::PAR_SPMV_MIN_NNZ);
    let x = probe(a.ncols());
    let _guard = test_mode_guard();
    let _pool = sdc_parallel::test_serial_guard();
    let mut y_serial = vec![0.0; a.nrows()];
    a.spmv_fastmath(&x, &mut y_serial);
    for threads in [1usize, 4] {
        sdc_parallel::set_threads(threads);
        let mut y_par = vec![0.0; a.nrows()];
        a.par_spmv_fastmath(&x, &mut y_par);
        for i in 0..a.nrows() {
            assert_eq!(y_serial[i].to_bits(), y_par[i].to_bits(), "{threads} threads, row {i}");
        }
    }
    sdc_parallel::set_threads(0);
}

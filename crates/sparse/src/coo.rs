//! Coordinate (triplet) sparse matrix builder.
//!
//! COO is the assembly format: generators and the Matrix Market reader
//! push `(row, col, value)` triplets in any order (duplicates allowed and
//! summed, as in finite-element assembly), then convert to CSR for
//! compute.

use crate::csr::CsrMatrix;

/// A sparse matrix in coordinate form. Duplicate entries are allowed and
/// are *summed* on conversion to CSR.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty builder with capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows, "COO push: row {row} out of range (nrows={})", self.nrows);
        assert!(col < self.ncols, "COO push: col {col} out of range (ncols={})", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Adds a symmetric pair `(i,j)` and `(j,i)` with the same value.
    #[inline]
    pub fn push_sym(&mut self, i: usize, j: usize, value: f64) {
        self.push(i, j, value);
        if i != j {
            self.push(j, i, value);
        }
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()).map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicates and dropping exact zeros that
    /// result from cancellation only if `drop_zeros` is set.
    pub fn to_csr_dropping(&self, drop_zeros: bool) -> CsrMatrix {
        // Counting sort by row, then sort each row's column slice.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.nnz()];
        {
            let mut next = row_counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r]] = k;
                next[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.nnz());
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[row_counts[r]..row_counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicates.
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                if !(drop_zeros && v == 0.0) {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Converts to CSR, summing duplicates (zeros kept).
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_csr_dropping(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(1, 1), 5.0);
    }

    #[test]
    fn cancellation_dropping() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, -1.0);
        assert_eq!(coo.to_csr().nnz(), 1, "zeros kept by default");
        assert_eq!(coo.to_csr_dropping(true).nnz(), 0, "zeros dropped on request");
    }

    #[test]
    fn out_of_order_insertion_sorts() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 6.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 0, 4.0);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row(0), (&[0usize, 2][..], &[1.0, 3.0][..]));
        assert_eq!(csr.row(1), (&[0usize, 2][..], &[4.0, 6.0][..]));
    }

    #[test]
    fn push_sym_mirrors() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 2, -1.5);
        coo.push_sym(1, 1, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 2), -1.5);
        assert_eq!(csr.get(2, 0), -1.5);
        assert_eq!(csr.get(1, 1), 4.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn iter_yields_all_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(0, 1, 2.0), (1, 0, 3.0)]);
    }
}

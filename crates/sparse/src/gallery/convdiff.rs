//! Nonsymmetric convection–diffusion operator.
//!
//! The classical way to make the Poisson operator nonsymmetric: add a
//! first-order upwind convection term with wind `(wx, wy)`. Used by the
//! extended experiments to study how the Hessenberg structure (Fig. 2 of
//! the paper) degrades continuously from tridiagonal to full upper
//! Hessenberg as the wind strength grows.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// 2-D convection–diffusion operator on an `m × m` interior grid with
/// upwind differencing. `wx`/`wy` are the wind components scaled by the
/// mesh Péclet number; `(0,0)` recovers `poisson2d(m)` exactly.
pub fn convection_diffusion_2d(m: usize, wx: f64, wy: f64) -> CsrMatrix {
    let n = m * m;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    // Upwind scheme: convection contributes |w| to the diagonal and −|w|
    // on the upstream side, preserving diagonal dominance (an M-matrix).
    let (cxm, cxp) = if wx >= 0.0 { (wx, 0.0) } else { (0.0, -wx) };
    let (cym, cyp) = if wy >= 0.0 { (wy, 0.0) } else { (0.0, -wy) };
    for i in 0..m {
        for j in 0..m {
            let row = i * m + j;
            if i > 0 {
                coo.push(row, row - m, -1.0 - cym);
            }
            if j > 0 {
                coo.push(row, row - 1, -1.0 - cxm);
            }
            coo.push(row, row, 4.0 + cxm + cxp + cym + cyp);
            if j + 1 < m {
                coo.push(row, row + 1, -1.0 - cxp);
            }
            if i + 1 < m {
                coo.push(row, row + m, -1.0 - cyp);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery::poisson2d;
    use crate::structure;

    #[test]
    fn zero_wind_recovers_poisson() {
        let a = convection_diffusion_2d(7, 0.0, 0.0);
        assert_eq!(a, poisson2d(7));
    }

    #[test]
    fn nonzero_wind_is_nonsymmetric() {
        let a = convection_diffusion_2d(6, 1.5, 0.0);
        assert!(a.is_pattern_symmetric());
        assert!(!a.is_numerically_symmetric(1e-12));
    }

    #[test]
    fn negative_wind_upwinds_other_side() {
        let a = convection_diffusion_2d(4, -2.0, 0.0);
        // Upstream (east) neighbour carries the convection now.
        assert_eq!(a.get(0, 1), -3.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 6.0);
    }

    #[test]
    fn row_sums_stay_nonnegative() {
        // M-matrix property retained by upwinding.
        let a = convection_diffusion_2d(5, 3.0, -1.0);
        let ones = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut y);
        assert!(y.iter().all(|&v| v >= -1e-13));
    }

    #[test]
    fn structurally_full_rank() {
        let a = convection_diffusion_2d(8, 2.0, 2.0);
        assert!(structure::is_structurally_full_rank(&a));
    }
}

//! Synthetic circuit-simulation matrix generator — the stand-in for
//! `mult_dcop_03`.
//!
//! The paper's second test matrix is `mult_dcop_03` from the UF Sparse
//! Matrix Collection: the Jacobian of a circuit DC-operating-point
//! analysis. 25,187 rows, 193,216 nonzeros, nonsymmetric, structurally
//! full rank, condition number ≈ 7.3×10¹³, `‖A‖₂ ≈ 17.18`,
//! `‖A‖_F ≈ 42.42` (Table I).
//!
//! Without network access to the collection we generate a matrix with the
//! same *behaviour-relevant* properties via modified nodal analysis (MNA)
//! stamping of a synthetic network:
//!
//! * **Topology**: a random spanning tree (connectivity ⇒ structural full
//!   rank) plus preferential-attachment extra edges — circuit netlists
//!   have hub nodes (supply rails), giving the skewed degree distribution
//!   of the real matrix.
//! * **Conductances**: log-uniform over many decades, like the mix of
//!   device small-signal conductances in a real DC operating point; this
//!   wide dynamic range is what makes the matrix severely ill-conditioned.
//! * **Nonsymmetry**: a fraction of stamps are one-sided
//!   (voltage-controlled current sources sense a node they do not load),
//!   making both the pattern and the values nonsymmetric — the property
//!   §VII-A-1 needs so that *every* `h_ij` the campaign perturbs may
//!   legitimately be nonzero.
//! * **Scaling**: the final matrix is rescaled to the paper's
//!   `‖A‖_F = 42.4179` so detector thresholds are numerically comparable.
//!
//! The generator is fully deterministic for a given seed.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`circuit_mna`].
#[derive(Clone, Debug)]
pub struct CircuitMnaConfig {
    /// Number of circuit nodes (matrix order).
    pub nodes: usize,
    /// Average node degree; edge count ≈ `nodes · avg_degree / 2`.
    pub avg_degree: f64,
    /// Conductances are `10^u` with `u` uniform in this range.
    pub g_log10_range: (f64, f64),
    /// Fraction of edges stamped one-sidedly (controlled sources).
    pub asym_fraction: f64,
    /// Diagonal ground-leakage conductance (keeps the matrix nonsingular
    /// while dominating the conditioning at the bottom end).
    pub leak: f64,
    /// If set, rescale so `‖A‖_F` equals this value.
    pub target_fro: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CircuitMnaConfig {
    /// Defaults tuned to mirror `mult_dcop_03`'s Table-I characteristics.
    fn default() -> Self {
        Self {
            nodes: 25_187,
            avg_degree: 6.68,
            g_log10_range: (-7.0, 2.0),
            asym_fraction: 0.15,
            leak: 1e-8,
            target_fro: Some(42.4179),
            seed: 1311,
        }
    }
}

/// Generates a synthetic MNA circuit matrix.
pub fn circuit_mna(cfg: &CircuitMnaConfig) -> CsrMatrix {
    let n = cfg.nodes;
    assert!(n >= 2, "circuit_mna needs at least 2 nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target_edges = ((n as f64) * cfg.avg_degree / 2.0).round() as usize;
    let target_edges = target_edges.max(n - 1);

    let mut edges: HashSet<(usize, usize)> = HashSet::with_capacity(target_edges * 2);
    // Preferential attachment endpoint pool: node k appears once per
    // incident edge (plus once initially), so sampling the pool is
    // degree-proportional.
    let mut pool: Vec<usize> = Vec::with_capacity(target_edges * 2 + n);

    // Spanning tree first: node i attaches to a degree-weighted earlier
    // node; guarantees connectivity and hence structural full rank.
    pool.push(0);
    for i in 1..n {
        let j = pool[rng.gen_range(0..pool.len())];
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        edges.insert((a, b));
        pool.push(i);
        pool.push(j);
    }
    // Extra preferential-attachment edges up to the target count.
    let mut attempts = 0usize;
    let max_attempts = target_edges * 20;
    while edges.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if edges.insert(key) {
            pool.push(a);
            pool.push(b);
        }
    }

    // Stamp the edges.
    let (lo, hi) = cfg.g_log10_range;
    let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 4 + n);
    let mut sorted_edges: Vec<(usize, usize)> = edges.into_iter().collect();
    // HashSet iteration order is nondeterministic across runs; sort to
    // keep the generator a pure function of the seed.
    sorted_edges.sort_unstable();
    for &(i, j) in &sorted_edges {
        let g = 10f64.powf(rng.gen_range(lo..hi));
        if rng.gen::<f64>() < cfg.asym_fraction {
            // One-sided stamp: a VCCS at node i sensing node j. Loads the
            // diagonal of i, couples i→j only.
            coo.push(i, i, g);
            coo.push(i, j, -g);
        } else {
            // Symmetric conductance stamp.
            coo.push(i, i, g);
            coo.push(j, j, g);
            coo.push(i, j, -g);
            coo.push(j, i, -g);
        }
    }
    // Ground leakage on every node: keeps rows nonzero and the matrix
    // nonsingular; its tiny magnitude sets the bottom of the spectrum.
    for i in 0..n {
        coo.push(i, i, cfg.leak * (1.0 + rng.gen::<f64>()));
    }

    let mut a = coo.to_csr();
    if let Some(fro) = cfg.target_fro {
        let current = a.norm_fro();
        if current > 0.0 {
            a.scale(fro / current);
        }
    }
    a
}

/// The default `mult_dcop_03`-like instance used by the experiments.
pub fn mult_dcop_like() -> CsrMatrix {
    circuit_mna(&CircuitMnaConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure;

    fn small_cfg() -> CircuitMnaConfig {
        CircuitMnaConfig {
            nodes: 500,
            avg_degree: 6.0,
            g_log10_range: (-6.0, 2.0),
            asym_fraction: 0.2,
            leak: 1e-8,
            target_fro: Some(42.4179),
            seed: 42,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = circuit_mna(&small_cfg());
        let b = circuit_mna(&small_cfg());
        assert_eq!(a, b);
        let mut cfg = small_cfg();
        cfg.seed = 43;
        let c = circuit_mna(&cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn hits_target_frobenius() {
        let a = circuit_mna(&small_cfg());
        assert!((a.norm_fro() - 42.4179).abs() < 1e-9);
    }

    #[test]
    fn nonsymmetric_pattern_and_values() {
        let a = circuit_mna(&small_cfg());
        assert!(!a.is_pattern_symmetric(), "one-sided stamps must break the pattern");
        assert!(!a.is_numerically_symmetric(1e-12));
        let sym = structure::pattern_symmetry_score(&a);
        assert!(sym > 0.5 && sym < 1.0, "mostly-but-not-fully symmetric pattern, got {sym}");
    }

    #[test]
    fn structurally_full_rank() {
        let a = circuit_mna(&small_cfg());
        assert!(structure::is_structurally_full_rank(&a));
    }

    #[test]
    fn wide_diagonal_dynamic_range() {
        // The conditioning driver: diagonal conductances spread over many
        // decades.
        let a = circuit_mna(&small_cfg());
        let d = a.diagonal();
        let dmax = d.iter().cloned().fold(0.0f64, f64::max);
        let dmin = d.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(dmin > 0.0);
        assert!(dmax / dmin > 1e6, "dynamic range {dmax}/{dmin} too narrow");
    }

    #[test]
    fn nnz_close_to_target() {
        let cfg = small_cfg();
        let a = circuit_mna(&cfg);
        // nnz ≈ n + 2·E·(1 − asym/2); allow generous tolerance.
        let e = (cfg.nodes as f64 * cfg.avg_degree / 2.0) as usize;
        let expected = cfg.nodes + 2 * e;
        let got = a.nnz();
        assert!(
            (got as f64) > 0.7 * expected as f64 && (got as f64) < 1.1 * expected as f64,
            "nnz {got} vs rough target {expected}"
        );
    }

    #[test]
    fn full_scale_characteristics_match_table1_shape() {
        // The actual experiment-scale instance (kept reasonably fast: the
        // generator is O(E)).
        let a = mult_dcop_like();
        assert_eq!(a.nrows(), 25_187);
        let nnz = a.nnz();
        assert!(
            (160_000..230_000).contains(&nnz),
            "nnz {nnz} should be near mult_dcop_03's 193,216"
        );
        assert!((a.norm_fro() - 42.4179).abs() < 1e-6);
        assert!(!a.is_numerically_symmetric(1e-12));
    }
}

//! Special test matrices from the Krylov-methods literature.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// The Grcar matrix of order `n` with `k` superdiagonals: −1 on the
/// subdiagonal, +1 on the diagonal and the first `k` superdiagonals.
/// Strongly nonnormal — a classic stress test for GMRES convergence
/// behaviour and for the Hessenberg structure experiments.
pub fn grcar(n: usize, k: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, n * (k + 2));
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        for d in 0..=k {
            if i + d < n {
                coo.push(i, i + d, 1.0);
            }
        }
    }
    coo.to_csr()
}

/// Graph Laplacian of a path on `n` vertices (singular: the all-ones
/// vector is its null space). Useful for exercising breakdown and
/// rank-deficiency handling.
pub fn laplacian_path_graph(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        let mut deg = 0.0;
        if i > 0 {
            coo.push(i, i - 1, -1.0);
            deg += 1.0;
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            deg += 1.0;
        }
        coo.push(i, i, deg);
    }
    coo.to_csr()
}

/// Anisotropic 2-D diffusion: 5-point stencil with horizontal coupling
/// `−ε` and vertical coupling `−1` (diagonal `2 + 2ε`). Strong
/// anisotropy (`ε ≪ 1`) degrades unpreconditioned Krylov convergence and
/// stresses the inner-solve quality of FT-GMRES.
pub fn anisotropic_poisson2d(m: usize, eps: f64) -> CsrMatrix {
    let n = m * m;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let row = i * m + j;
            if i > 0 {
                coo.push(row, row - m, -1.0);
            }
            if j > 0 {
                coo.push(row, row - 1, -eps);
            }
            coo.push(row, row, 2.0 + 2.0 * eps);
            if j + 1 < m {
                coo.push(row, row + 1, -eps);
            }
            if i + 1 < m {
                coo.push(row, row + m, -1.0);
            }
        }
    }
    coo.to_csr()
}

/// Shifted Poisson operator `A − σI` (discrete Helmholtz). For
/// `σ > λ_min(A)` the matrix is symmetric *indefinite*: CG's breakdown
/// detection and GMRES' robustness on indefinite systems are exercised
/// with a controlled, well-understood operator.
pub fn helmholtz2d(m: usize, sigma: f64) -> CsrMatrix {
    let a = crate::gallery::poisson2d(m);
    let shift = crate::ops::scale(&CsrMatrix::identity(m * m), -sigma);
    crate::ops::add(&a, &shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anisotropic_reduces_to_poisson_at_eps_one() {
        assert_eq!(anisotropic_poisson2d(6, 1.0), crate::gallery::poisson2d(6));
    }

    #[test]
    fn anisotropic_is_spd_for_positive_eps() {
        let a = anisotropic_poisson2d(7, 0.01);
        assert!(a.is_numerically_symmetric(0.0));
        // Weak row diagonal dominance with strict dominance at boundary.
        let ones = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut y);
        assert!(y.iter().all(|&v| v >= -1e-14));
    }

    #[test]
    fn helmholtz_shift_moves_diagonal() {
        let a = helmholtz2d(5, 0.5);
        assert_eq!(a.get(0, 0), 3.5);
        assert!(a.is_numerically_symmetric(0.0));
    }

    #[test]
    fn helmholtz_is_indefinite_past_lambda_min() {
        // σ between λ_min and λ_max makes xᵀAx change sign.
        let m = 8;
        let (lmin, lmax, _) = crate::gallery::poisson2d_spectrum(m);
        let sigma = (lmin + lmax) / 2.0;
        let a = helmholtz2d(m, sigma);
        let n = a.nrows();
        // The lowest Poisson eigenvector (all-positive sine sheet) gives a
        // negative quadratic form; a high-frequency vector gives positive.
        let h = std::f64::consts::PI / (m as f64 + 1.0);
        let low: Vec<f64> = (0..n)
            .map(|k| {
                let (i, j) = (k / m + 1, k % m + 1);
                (h * i as f64).sin() * (h * j as f64).sin()
            })
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|k| {
                let (i, j) = (k / m + 1, k % m + 1);
                (h * (m * i) as f64).sin() * (h * (m * j) as f64).sin()
            })
            .collect();
        let quad = |x: &[f64]| {
            let mut y = vec![0.0; n];
            a.spmv(x, &mut y);
            sdc_dense::vector::dot(x, &y)
        };
        assert!(quad(&low) < 0.0, "low mode must be negative under the shift");
        assert!(quad(&high) > 0.0, "high mode must stay positive");
    }

    #[test]
    fn grcar_structure() {
        let a = grcar(6, 3);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 3), 1.0);
        assert_eq!(a.get(0, 4), 0.0);
        assert!(!a.is_numerically_symmetric(1e-12));
    }

    #[test]
    fn grcar_nnz() {
        // Row i holds: 1 subdiag (if i>0) + min(k+1, n-i) upper entries.
        let (n, k) = (10, 2);
        let a = grcar(n, k);
        let expected: usize = (0..n).map(|i| usize::from(i > 0) + (k + 1).min(n - i)).sum();
        assert_eq!(a.nnz(), expected);
    }

    #[test]
    fn laplacian_is_singular_with_ones_nullspace() {
        let a = laplacian_path_graph(8);
        let ones = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        a.spmv(&ones, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-15));
        assert!(a.is_numerically_symmetric(0.0));
    }
}

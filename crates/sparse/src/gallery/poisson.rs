//! Finite-difference Poisson operators.
//!
//! `poisson2d(m)` reproduces Matlab's `gallery('poisson',m)` exactly: the
//! block tridiagonal `kron(I,T) + kron(T,I)` with `T = tridiag(−1,2,−1)`,
//! i.e. the 5-point stencil on an `m × m` interior grid with Dirichlet
//! boundaries. For `m = 100` this is the paper's first test matrix:
//! 10,000 rows, 49,600 nonzeros, SPD, `‖A‖₂ ≈ 8`, `‖A‖_F ≈ 446`
//! (Table I).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::ops::{add, kron, tridiag_toeplitz};

/// 1-D Poisson operator `tridiag(−1, 2, −1)` of order `n`.
pub fn poisson1d(n: usize) -> CsrMatrix {
    tridiag_toeplitz(n, -1.0, 2.0, -1.0)
}

/// 2-D Poisson operator on an `m × m` grid, built directly from the
/// 5-point stencil (fast path).
pub fn poisson2d(m: usize) -> CsrMatrix {
    let n = m * m;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let row = i * m + j;
            // Row-sorted insertion order is not required (COO sorts), but
            // pushing in index order keeps conversion cheap.
            if i > 0 {
                coo.push(row, row - m, -1.0);
            }
            if j > 0 {
                coo.push(row, row - 1, -1.0);
            }
            coo.push(row, row, 4.0);
            if j + 1 < m {
                coo.push(row, row + 1, -1.0);
            }
            if i + 1 < m {
                coo.push(row, row + m, -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 2-D Poisson operator assembled as `kron(I,T) + kron(T,I)` — the exact
/// construction Matlab's gallery uses. Cross-validates [`poisson2d`].
pub fn poisson2d_kron(m: usize) -> CsrMatrix {
    let t = poisson1d(m);
    let i = CsrMatrix::identity(m);
    add(&kron(&i, &t), &kron(&t, &i))
}

/// 3-D Poisson operator (7-point stencil) on an `m × m × m` grid.
pub fn poisson3d(m: usize) -> CsrMatrix {
    let n = m * m * m;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |i: usize, j: usize, k: usize| (i * m + j) * m + k;
    for i in 0..m {
        for j in 0..m {
            for k in 0..m {
                let row = idx(i, j, k);
                if i > 0 {
                    coo.push(row, idx(i - 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(row, idx(i, j, k - 1), -1.0);
                }
                coo.push(row, row, 6.0);
                if k + 1 < m {
                    coo.push(row, idx(i, j, k + 1), -1.0);
                }
                if j + 1 < m {
                    coo.push(row, idx(i, j + 1, k), -1.0);
                }
                if i + 1 < m {
                    coo.push(row, idx(i + 1, j, k), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Exact spectral data of `poisson2d(m)`: returns
/// `(λ_min, λ_max, cond₂ = λ_max/λ_min)`.
///
/// The eigenvalues are `4 − 2cos(iπ/(m+1)) − 2cos(jπ/(m+1))` for
/// `i,j = 1..m`, so the condition number of the paper's 10,000-row matrix
/// is known analytically — used to validate the numeric estimators.
pub fn poisson2d_spectrum(m: usize) -> (f64, f64, f64) {
    let h = std::f64::consts::PI / (m as f64 + 1.0);
    let lmin = 4.0 - 4.0 * h.cos();
    let lmax = 4.0 + 4.0 * h.cos();
    (lmin, lmax, lmax / lmin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure;

    #[test]
    fn poisson2d_matches_table1_characteristics() {
        // The paper's Table I: 10,000 rows, 49,600 nonzeros, symmetric,
        // ‖A‖₂ ≈ 8, ‖A‖_F ≈ 446.
        let a = poisson2d(100);
        assert_eq!(a.nrows(), 10_000);
        assert_eq!(a.ncols(), 10_000);
        assert_eq!(a.nnz(), 49_600);
        assert!(a.is_numerically_symmetric(0.0));
        let fro = a.norm_fro();
        assert!((fro - 446.0).abs() < 1.0, "‖A‖_F = {fro}, Table I says 446");
        let (_, lmax, _) = poisson2d_spectrum(100);
        assert!((lmax - 8.0).abs() < 0.01, "‖A‖₂ = {lmax} ≈ 8");
    }

    #[test]
    fn stencil_and_kron_constructions_agree_exactly() {
        for m in [1, 2, 3, 5, 8] {
            let s = poisson2d(m);
            let k = poisson2d_kron(m);
            assert_eq!(s, k, "m={m}");
        }
    }

    #[test]
    fn poisson1d_small_known() {
        let a = poisson1d(3);
        let d = a.to_dense();
        let expect = sdc_dense::DenseMatrix::from_rows(&[
            &[2.0, -1.0, 0.0],
            &[-1.0, 2.0, -1.0],
            &[0.0, -1.0, 2.0],
        ]);
        assert_eq!(d.max_diff(&expect), 0.0);
    }

    #[test]
    fn poisson2d_row_sums_nonnegative() {
        // Diagonally dominant M-matrix: row sums ≥ 0 (boundary rows > 0).
        let a = poisson2d(6);
        let ones = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut y);
        assert!(y.iter().all(|&v| v >= -1e-14));
        assert!(y.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn poisson3d_characteristics() {
        let m = 5;
        let a = poisson3d(m);
        assert_eq!(a.nrows(), 125);
        // nnz = 7n − 2·3·m² (each of the 3 directions loses 2·m² couplings).
        assert_eq!(a.nnz(), 7 * 125 - 6 * m * m);
        assert!(a.is_numerically_symmetric(0.0));
        assert!(structure::is_structurally_full_rank(&a));
    }

    #[test]
    fn poisson_structurally_full_rank() {
        assert!(structure::is_structurally_full_rank(&poisson2d(10)));
    }

    #[test]
    fn spectrum_formula_sane() {
        let (lmin, lmax, cond) = poisson2d_spectrum(100);
        assert!(lmin > 0.0);
        assert!(lmax < 8.0);
        // Known: cond(gallery('poisson',100)) ≈ 4.13e3 in the 2-norm
        // (Matlab's condest 1-norm estimate reported in Table I is ~6e3).
        assert!(cond > 4.0e3 && cond < 4.3e3, "cond = {cond}");
    }

    #[test]
    fn degenerate_sizes() {
        let a = poisson2d(1);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 4.0);
        let b = poisson1d(1);
        assert_eq!(b.get(0, 0), 2.0);
    }
}

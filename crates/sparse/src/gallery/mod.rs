//! Reproducible test-matrix generators.
//!
//! The paper deliberately avoids hand-crafted matrices ("to ensure
//! reproducibility, we did not create either of these matrices from
//! scratch"): it uses Matlab's `gallery('poisson',100)` and the UF
//! collection's `mult_dcop_03`. This gallery reconstructs the former
//! exactly and substitutes a synthetic circuit generator for the latter
//! (DESIGN.md §3), alongside the standard Krylov test operators used by
//! the extended experiments.

mod circuit;
mod convdiff;
mod poisson;
mod random;
mod special;

pub use circuit::{circuit_mna, mult_dcop_like, CircuitMnaConfig};
pub use convdiff::convection_diffusion_2d;
pub use poisson::{poisson1d, poisson2d, poisson2d_kron, poisson2d_spectrum, poisson3d};
pub use random::{sprand, sprand_spd};
pub use special::{anisotropic_poisson2d, grcar, helmholtz2d, laplacian_path_graph};

//! Seeded random sparse matrices (Matlab `sprand`-style).
//!
//! Used by property tests and the extended fault campaigns to exercise the
//! solvers on operators without special structure.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random sparse `nrows × ncols` matrix with approximately
/// `density · nrows · ncols` uniformly placed entries in `(-1, 1)`.
pub fn sprand(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let target = ((nrows * ncols) as f64 * density).round() as usize;
    let mut coo = CooMatrix::with_capacity(nrows, ncols, target);
    let mut placed = std::collections::HashSet::with_capacity(target * 2);
    let mut attempts = 0usize;
    while placed.len() < target && attempts < target * 30 {
        attempts += 1;
        let r = rng.gen_range(0..nrows);
        let c = rng.gen_range(0..ncols);
        if placed.insert((r, c)) {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Random sparse symmetric positive-definite matrix: a random symmetric
/// off-diagonal pattern made strictly diagonally dominant.
pub fn sprand_spd(n: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = ((n * n) as f64 * density / 2.0).round() as usize;
    let mut coo = CooMatrix::with_capacity(n, n, target * 2 + n);
    let mut rowsum = vec![0.0f64; n];
    let mut placed = std::collections::HashSet::with_capacity(target * 2);
    let mut attempts = 0usize;
    while placed.len() < target && attempts < target * 30 + 10 {
        attempts += 1;
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if r == c {
            continue;
        }
        let key = if r < c { (r, c) } else { (c, r) };
        if placed.insert(key) {
            let v = rng.gen_range(-1.0..1.0);
            coo.push_sym(key.0, key.1, v);
            rowsum[key.0] += v.abs();
            rowsum[key.1] += v.abs();
        }
    }
    for i in 0..n {
        // Strict diagonal dominance ⇒ SPD for a symmetric matrix.
        coo.push(i, i, rowsum[i] + 1.0 + rng.gen::<f64>());
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprand_is_deterministic() {
        let a = sprand(40, 40, 0.05, 7);
        let b = sprand(40, 40, 0.05, 7);
        assert_eq!(a, b);
        let c = sprand(40, 40, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sprand_density_approximate() {
        let a = sprand(100, 100, 0.03, 1);
        let nnz = a.nnz();
        assert!((200..=400).contains(&nnz), "nnz {nnz} far from 300");
    }

    #[test]
    fn sprand_values_in_range() {
        let a = sprand(30, 30, 0.1, 3);
        assert!(a.values().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn spd_is_symmetric_and_dominant() {
        let a = sprand_spd(60, 0.05, 5);
        assert!(a.is_numerically_symmetric(0.0));
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in cols.iter().zip(vals.iter()) {
                if *c == r {
                    diag = *v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {r} not strictly dominant");
        }
    }

    #[test]
    fn spd_quadratic_form_positive() {
        let a = sprand_spd(50, 0.08, 11);
        // xᵀAx > 0 for a few random-ish x.
        for k in 0..5 {
            let x: Vec<f64> = (0..50).map(|i| ((i * (k + 2)) as f64 * 0.13).sin()).collect();
            let mut y = vec![0.0; 50];
            a.spmv(&x, &mut y);
            let q = sdc_dense::vector::dot(&x, &y);
            let nx = sdc_dense::vector::nrm2(&x);
            if nx > 0.0 {
                assert!(q > 0.0, "quadratic form not positive: {q}");
            }
        }
    }
}

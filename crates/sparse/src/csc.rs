//! Compressed sparse column storage.
//!
//! CSC complements CSR where column access dominates: the Hopcroft–Karp
//! structural-rank computation walks columns, and `y = Aᵀx` is a clean
//! row-sweep over CSC. Construction goes through CSR's validated
//! transpose, so CSC inherits the same invariants.

use crate::csr::CsrMatrix;

/// A sparse matrix in compressed sparse column format.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds CSC from a CSR matrix (one counting-sort pass).
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let t = a.transpose();
        // The transpose's rows are the original's columns; reinterpret the
        // arrays directly.
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let span = self.col_ptr[c]..self.col_ptr[c + 1];
        (&self.row_idx[span.clone()], &self.values[span])
    }

    /// `y = A x` via column sweeps (gather on x, scatter on y).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "csc spmv: x length");
        assert_eq!(y.len(), self.nrows, "csc spmv: y length");
        y.fill(0.0);
        for c in 0..self.ncols {
            let xc = x[c];
            if xc != 0.0 {
                let (rows, vals) = self.col(c);
                for (r, v) in rows.iter().zip(vals.iter()) {
                    y[*r] += v * xc;
                }
            }
        }
    }

    /// `y = Aᵀ x` via per-column dot products.
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "csc spmv_transpose: x length");
        assert_eq!(y.len(), self.ncols, "csc spmv_transpose: y length");
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            let mut acc = 0.0;
            for (r, v) in rows.iter().zip(vals.iter()) {
                acc += v * x[*r];
            }
            y[c] = acc;
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        // Reinterpret as the CSR of Aᵀ, then transpose.
        CsrMatrix::from_raw(
            self.ncols,
            self.nrows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        )
        .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 4);
        for &(r, c, v) in
            &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0), (2, 3, 6.0)]
        {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    #[test]
    fn round_trip_csr_csc_csr() {
        let a = sample();
        let csc = CscMatrix::from_csr(&a);
        assert_eq!(csc.nnz(), a.nnz());
        let back = csc.to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn csc_spmv_matches_csr() {
        let a = sample();
        let csc = CscMatrix::from_csr(&a);
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        a.spmv(&x, &mut y1);
        csc.spmv(&x, &mut y2);
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn csc_spmv_transpose_matches_csr() {
        let a = sample();
        let csc = CscMatrix::from_csr(&a);
        let x = [1.0, -2.0, 3.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        a.spmv_transpose(&x, &mut y1);
        csc.spmv_transpose(&x, &mut y2);
        for i in 0..4 {
            assert!((y1[i] - y2[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn column_access() {
        let a = sample();
        let csc = CscMatrix::from_csr(&a);
        let (rows, vals) = csc.col(3);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 6.0]);
        let (rows, vals) = csc.col(1);
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[3.0]);
    }
}

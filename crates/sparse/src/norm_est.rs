//! Norm estimation for sparse operators.
//!
//! The paper's detector bound (Eq. 3) is `|h_ij| ≤ ‖A‖₂ ≤ ‖A‖_F`, and
//! Table I reports both norms as "potential fault detectors". `‖A‖_F` is
//! one pass over the stored values; `‖A‖₂ = σ_max(A)` is estimated by
//! power iteration on `AᵀA`, which converges monotonically from below —
//! important to note, because a *lower* bound on `‖A‖₂` used as a detector
//! threshold can only make the detector more aggressive, never unsound
//! with respect to `‖A‖_F` filtering.

use crate::csr::CsrMatrix;
use sdc_dense::vector;

/// Result of the 2-norm power iteration.
#[derive(Clone, Copy, Debug)]
pub struct Norm2Estimate {
    /// The estimated `‖A‖₂` (a lower bound, converging to the true value).
    pub value: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Relative change of the estimate in the final iteration.
    pub last_rel_change: f64,
}

/// Estimates `‖A‖₂` by power iteration on `AᵀA`, stopping after
/// `max_iters` iterations or when the estimate changes by less than
/// `rel_tol` relatively.
pub fn norm2_est(a: &CsrMatrix, max_iters: usize, rel_tol: f64) -> Norm2Estimate {
    let n = a.ncols();
    let m = a.nrows();
    if n == 0 || m == 0 || a.nnz() == 0 {
        return Norm2Estimate { value: 0.0, iterations: 0, last_rel_change: 0.0 };
    }
    // Deterministic quasi-random start vector avoids adversarial alignment
    // with the null space while keeping runs reproducible.
    let mut x: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.0) * 0.754_877).sin() + 0.25).collect();
    vector::normalize(&mut x);
    let mut ax = vec![0.0; m];
    let mut atax = vec![0.0; n];
    let mut est = 0.0f64;
    let mut change = 0.0;
    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        a.par_spmv(&x, &mut ax);
        let new_est = vector::nrm2(&ax);
        if new_est == 0.0 {
            return Norm2Estimate { value: 0.0, iterations: iters, last_rel_change: 0.0 };
        }
        change = (new_est - est).abs() / new_est;
        est = new_est;
        if change < rel_tol && it > 2 {
            break;
        }
        a.spmv_transpose(&ax, &mut atax);
        x.copy_from_slice(&atax);
        if vector::normalize(&mut x) == 0.0 {
            break;
        }
    }
    Norm2Estimate { value: est, iterations: iters, last_rel_change: change }
}

/// The default detector bound of the paper: `‖A‖_F` (Eq. 3 right-hand
/// side) — always an upper bound on every Hessenberg entry.
pub fn frobenius_bound(a: &CsrMatrix) -> f64 {
    a.norm_fro()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use crate::ops::tridiag_toeplitz;

    #[test]
    fn norm2_of_diagonal_is_max_abs() {
        let a = CsrMatrix::from_diagonal(&[1.0, -9.0, 3.0]);
        let est = norm2_est(&a, 200, 1e-12);
        assert!((est.value - 9.0).abs() < 1e-8, "{est:?}");
    }

    #[test]
    fn norm2_below_frobenius() {
        let a = gallery::poisson2d(12);
        let est = norm2_est(&a, 300, 1e-12);
        assert!(est.value <= a.norm_fro() * (1.0 + 1e-12));
    }

    #[test]
    fn poisson_norm2_matches_eigenvalue_formula() {
        // gallery('poisson',m) has eigenvalues
        // 4 − 2cos(iπ/(m+1)) − 2cos(jπ/(m+1)); the largest is
        // 4 + 4cos(π/(m+1)).
        let m = 20;
        let a = gallery::poisson2d(m);
        let exact = 4.0 + 4.0 * (std::f64::consts::PI / (m as f64 + 1.0)).cos();
        let est = norm2_est(&a, 2000, 1e-13);
        assert!(
            (est.value - exact).abs() < 1e-6 * exact,
            "power est {} vs exact {exact}",
            est.value
        );
    }

    #[test]
    fn empty_matrix_estimate_zero() {
        let a = crate::coo::CooMatrix::new(5, 5).to_csr();
        assert_eq!(norm2_est(&a, 10, 1e-10).value, 0.0);
    }

    #[test]
    fn tridiagonal_norm2_known() {
        // tridiag(-1,2,-1) of order n has ‖A‖₂ = 2 + 2cos(π/(n+1)).
        let n = 64;
        let a = tridiag_toeplitz(n, -1.0, 2.0, -1.0);
        let exact = 2.0 + 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let est = norm2_est(&a, 3000, 1e-13);
        assert!((est.value - exact).abs() < 1e-6, "{} vs {exact}", est.value);
    }
}

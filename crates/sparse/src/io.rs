//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's second test matrix, `mult_dcop_03`, ships from the
//! UF/SuiteSparse collection in Matrix Market coordinate format. The
//! reproduction substitutes a synthetic generator (see DESIGN.md §3), but
//! this reader lets the *real* file be dropped into every experiment
//! binary unchanged (`--matrix path.mtx`). The writer closes the loop for
//! round-trip testing and for exporting generated matrices.
//!
//! Supported: `matrix coordinate real|integer|pattern
//! general|symmetric|skew-symmetric`. Complex and array formats are out of
//! scope and produce a descriptive error.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number where the problem was found.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The file is valid Matrix Market but uses an unsupported variant.
    Unsupported(String),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            MmError::Unsupported(s) => write!(f, "unsupported Matrix Market variant: {s}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market file into CSR.
pub fn read_matrix_market(path: &Path) -> Result<CsrMatrix, MmError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Reads Matrix Market data from any reader.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<CsrMatrix, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header line.
    let (idx, header) = match lines.next() {
        Some((i, l)) => (i + 1, l?),
        None => return Err(MmError::Parse { line: 1, msg: "empty file".into() }),
    };
    let toks: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" {
        return Err(MmError::Parse { line: idx, msg: "missing %%MatrixMarket header".into() });
    }
    if toks[1] != "matrix" {
        return Err(MmError::Unsupported(format!("object '{}'", toks[1])));
    }
    if toks[2] != "coordinate" {
        return Err(MmError::Unsupported(format!("format '{}'", toks[2])));
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MmError::Unsupported(format!("field '{other}'"))),
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(MmError::Unsupported(format!("symmetry '{other}'"))),
    };

    // Size line (after comments).
    let mut size_line = None;
    let mut size_idx = 0;
    for (i, l) in &mut lines {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        size_idx = i + 1;
        break;
    }
    let size_line = size_line
        .ok_or(MmError::Parse { line: size_idx.max(1), msg: "missing size line".into() })?;
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(MmError::Parse {
            line: size_idx,
            msg: format!("size line needs 'rows cols nnz', got '{size_line}'"),
        });
    }
    let parse_usize = |s: &str, what: &str| -> Result<usize, MmError> {
        s.parse::<usize>()
            .map_err(|_| MmError::Parse { line: size_idx, msg: format!("bad {what}: '{s}'") })
    };
    let nrows = parse_usize(dims[0], "row count")?;
    let ncols = parse_usize(dims[1], "column count")?;
    let nnz = parse_usize(dims[2], "nnz count")?;

    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        if symmetry == Symmetry::General { nnz } else { 2 * nnz },
    );
    let mut seen = 0usize;
    for (i, l) in &mut lines {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let lineno = i + 1;
        let toks: Vec<&str> = t.split_whitespace().collect();
        let need = if field == Field::Pattern { 2 } else { 3 };
        if toks.len() < need {
            return Err(MmError::Parse {
                line: lineno,
                msg: format!("entry needs {need} fields, got '{t}'"),
            });
        }
        let r: usize = toks[0].parse().map_err(|_| MmError::Parse {
            line: lineno,
            msg: format!("bad row index '{}'", toks[0]),
        })?;
        let c: usize = toks[1].parse().map_err(|_| MmError::Parse {
            line: lineno,
            msg: format!("bad column index '{}'", toks[1]),
        })?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(MmError::Parse {
                line: lineno,
                msg: format!("index ({r},{c}) out of 1-based range {nrows}x{ncols}"),
            });
        }
        let v: f64 = match field {
            Field::Pattern => 1.0,
            _ => toks[2].parse().map_err(|_| MmError::Parse {
                line: lineno,
                msg: format!("bad value '{}'", toks[2]),
            })?,
        };
        let (r0, c0) = (r - 1, c - 1);
        coo.push(r0, c0, v);
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r0 != c0 {
                    coo.push(c0, r0, v);
                }
            }
            Symmetry::SkewSymmetric => {
                if r0 != c0 {
                    coo.push(c0, r0, -v);
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MmError::Parse {
            line: size_idx,
            msg: format!("header promised {nnz} entries, file contains {seen}"),
        });
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market(path: &Path, a: &CsrMatrix) -> Result<(), MmError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(f), a)
}

/// Writes Matrix Market data to any writer.
pub fn write_matrix_market_to<W: Write>(mut w: W, a: &CsrMatrix) -> Result<(), MmError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% generated by sdc-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (c, v) in cols.iter().zip(vals.iter()) {
            // 17 significant digits: exact f64 round trip.
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use std::io::Cursor;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 3 3\n\
                    1 1 1.5\n\
                    2 3 -2.0\n\
                    1 2 4e-1\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 0.4);
        assert_eq!(a.get(1, 2), -2.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
    }

    #[test]
    fn parse_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(0, 1), -3.0);
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_matrix_market_from(Cursor::new("hello\n")).unwrap_err();
        assert!(matches!(e, MmError::Parse { line: 1, .. }), "{e:?}");
    }

    #[test]
    fn rejects_complex_field() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        let e = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(e, MmError::Unsupported(_)), "{e:?}");
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let e = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(e, MmError::Parse { .. }), "{e:?}");
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let e = read_matrix_market_from(Cursor::new(text)).unwrap_err();
        assert!(matches!(e, MmError::Parse { .. }), "{e:?}");
    }

    #[test]
    fn write_read_round_trip_exact() {
        let a = gallery::poisson2d(7);
        let mut bytes = Vec::new();
        write_matrix_market_to(&mut bytes, &a).unwrap();
        let b = read_matrix_market_from(Cursor::new(bytes)).unwrap();
        assert_eq!(a, b, "round trip must be exact (17 significant digits)");
    }

    #[test]
    fn file_round_trip() {
        let a = gallery::poisson1d(13);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sdc_sparse_io_test_{}.mtx", std::process::id()));
        write_matrix_market(&path, &a).unwrap();
        let b = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }
}

//! SELL-C-σ (sliced ELLPACK) storage: the second SpMV engine.
//!
//! CSR streams each row's indices and values behind a per-row pointer
//! chase; SELL-C-σ instead packs rows into *chunks* of `C` rows stored
//! column-major (lane-interleaved), so a chunk's SpMV walks `C` rows in
//! lockstep with unit-stride loads — the layout GPUs and wide-SIMD CPUs
//! want (Kreutzer et al., SIAM J. Sci. Comput. 2014). The σ parameter
//! sorts rows by descending length inside windows of σ rows before
//! chunking, which shrinks the padding that ragged rows would otherwise
//! force on their chunk.
//!
//! Two contracts make the format safe for this workspace:
//!
//! * **Bitwise identity with CSR.** Entries of a row are stored in the
//!   same (ascending-column) order as CSR, each stored row carries its
//!   exact length, and the kernel accumulates `acc += a_ij · x_j`
//!   sequentially over exactly those entries — the identical
//!   floating-point op sequence as [`CsrMatrix::spmv`]. σ-sorting only
//!   permutes *which output slot* a row's result lands in, and the
//!   permutation is inverted on write-back, so `y` is bitwise equal to
//!   the CSR result at any thread count. Campaign artifacts therefore do
//!   not depend on the storage format.
//! * **Lossless round-trip.** Padding slots (value `0.0`, column `0`)
//!   are never read by the kernel and never emitted by [`SellMatrix::to_csr`];
//!   CSR → SELL → CSR reproduces the original matrix exactly.

use crate::csr::CsrMatrix;
use crate::perm::Permutation;
use rayon::prelude::*;

/// Default chunk height `C` (rows per chunk).
pub const DEFAULT_CHUNK: usize = 8;

/// Default sorting window σ (rows; a multiple of [`DEFAULT_CHUNK`]).
pub const DEFAULT_SIGMA: usize = 64;

/// [`SellMatrix::from_csr`] skips σ-sorting entirely when the *unsorted*
/// fill ratio is already below this: sorting exists to squeeze padding
/// out of ragged chunks, and when there is no padding to squeeze the
/// identity permutation is strictly better (the parallel kernel then
/// writes `y` directly instead of through a gather pass).
pub const SIGMA_SKIP_FILL: f64 = 1.1;

/// A validated sparse matrix in SELL-C-σ format.
#[derive(Clone, Debug, PartialEq)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    chunk: usize,
    sigma: usize,
    /// Slab start of chunk `c` in `col_idx`/`values`; `len = n_chunks + 1`.
    chunk_ptr: Vec<usize>,
    /// Exact entry count of each *stored* row; `len = nrows`.
    row_len: Vec<usize>,
    /// `forward[stored] = original` (σ-window sort permutation).
    perm: Permutation,
    /// True when σ-sorting left every row in place.
    identity_perm: bool,
    /// Per chunk: stored row lengths are non-increasing across lanes
    /// (always true for sorted chunks; also true for uniform unsorted
    /// chunks) — enables the branch-free prefix kernel.
    chunk_sorted: Vec<bool>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SellMatrix {
    /// Converts from CSR with the default `C`, sorting with the default
    /// σ only when sorting actually pays ([`SIGMA_SKIP_FILL`]).
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let sigma =
            if fill_ratio_of(a, DEFAULT_CHUNK, 1) <= SIGMA_SKIP_FILL { 1 } else { DEFAULT_SIGMA };
        Self::from_csr_with(a, DEFAULT_CHUNK, sigma)
    }

    /// Converts from CSR with explicit chunk height `C` and sorting
    /// window σ. `sigma = 1` disables sorting (plain SELL-C).
    ///
    /// # Panics
    /// Panics if `chunk == 0` or `sigma == 0`.
    pub fn from_csr_with(a: &CsrMatrix, chunk: usize, sigma: usize) -> Self {
        assert!(chunk > 0, "SELL: chunk height C must be >= 1");
        assert!(sigma > 0, "SELL: sorting window sigma must be >= 1");
        let n = a.nrows();
        let lens: Vec<usize> = (0..n).map(|r| a.row(r).0.len()).collect();
        let stored_to_orig = sigma_order(&lens, sigma);
        let identity_perm = stored_to_orig.iter().enumerate().all(|(s, &o)| s == o);
        let perm = Permutation::from_vec(stored_to_orig);

        let n_chunks = n.div_ceil(chunk);
        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        chunk_ptr.push(0usize);
        let mut row_len = Vec::with_capacity(n);
        for c in 0..n_chunks {
            let rows = (c * chunk)..((c + 1) * chunk).min(n);
            let width = rows.clone().map(|s| lens[perm.forward()[s]]).max().unwrap_or(0);
            for s in rows {
                row_len.push(lens[perm.forward()[s]]);
            }
            // Every slab holds C lanes even when the last chunk has fewer
            // rows; the spare lanes are all-padding (length 0).
            chunk_ptr.push(chunk_ptr.last().unwrap() + width * chunk);
        }
        let chunk_sorted: Vec<bool> =
            row_len.chunks(chunk).map(|lens| lens.windows(2).all(|w| w[0] >= w[1])).collect();
        let slots = *chunk_ptr.last().unwrap();
        let mut col_idx = vec![0usize; slots];
        let mut values = vec![0.0f64; slots];
        for s in 0..n {
            let (c, lane) = (s / chunk, s % chunk);
            let base = chunk_ptr[c] + lane;
            let (cols, vals) = a.row(perm.forward()[s]);
            for (k, (&j, &v)) in cols.iter().zip(vals.iter()).enumerate() {
                col_idx[base + k * chunk] = j;
                values[base + k * chunk] = v;
            }
        }
        SellMatrix {
            nrows: n,
            ncols: a.ncols(),
            nnz: a.nnz(),
            chunk,
            sigma,
            chunk_ptr,
            row_len,
            perm,
            identity_perm,
            chunk_sorted,
            col_idx,
            values,
        }
    }

    /// Lossless conversion back to CSR (padding dropped, σ-permutation
    /// inverted): exactly the matrix this was built from.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for s in 0..self.nrows {
            row_ptr[self.perm.forward()[s] + 1] = self.row_len[s];
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        for s in 0..self.nrows {
            let (c, lane) = (s / self.chunk, s % self.chunk);
            let base = self.chunk_ptr[c] + lane;
            let dst = row_ptr[self.perm.forward()[s]];
            for k in 0..self.row_len[s] {
                col_idx[dst + k] = self.col_idx[base + k * self.chunk];
                values[dst + k] = self.values[base + k * self.chunk];
            }
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of *matrix* entries (padding slots excluded).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Chunk height `C`.
    #[inline]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Sorting window σ.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of row chunks.
    #[inline]
    pub fn n_chunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// `stored index → original row` of the σ-sort (identity when rows
    /// were already sorted).
    #[inline]
    pub fn stored_to_original(&self) -> &[usize] {
        self.perm.forward()
    }

    /// Total storage slots including padding.
    #[inline]
    pub fn storage_len(&self) -> usize {
        self.values.len()
    }

    /// Stored slots (incl. padding) per matrix entry: `1.0` means no
    /// padding at all; large values mean ragged rows defeated σ-sorting.
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.storage_len() as f64 / self.nnz as f64
        }
    }

    /// Raw value storage, *including* padding slots (fault-injection
    /// surface; see [`SellMatrix::is_padding_slot`]).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value storage (pattern fixed) — the bitflip-campaign
    /// target. Corrupting a padding slot is architecturally masked: the
    /// kernel never reads it.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Raw column-index storage, including padding slots.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Mutable column-index storage for fault campaigns. An index pushed
    /// out of `0..ncols` makes [`SellMatrix::spmv`] panic (a memory-safe
    /// crash — the taxonomy's hard-fault outcome), so campaigns should
    /// range-check flips they intend to run through.
    #[inline]
    pub fn col_idx_mut(&mut self) -> &mut [usize] {
        &mut self.col_idx
    }

    /// The flat storage slot of logical entry `k` of *original* row `r`
    /// (the SELL analogue of CSR's `row_ptr[r] + k`).
    ///
    /// # Panics
    /// Panics if `r` is out of range or `k >= nnz(row r)`.
    pub fn entry_slot(&self, r: usize, k: usize) -> usize {
        let s = self.perm.inverse()[r];
        assert!(k < self.row_len[s], "entry_slot: row {r} has only {} entries", self.row_len[s]);
        let (c, lane) = (s / self.chunk, s % self.chunk);
        self.chunk_ptr[c] + lane + k * self.chunk
    }

    /// True if `slot` is a padding slot (never read by the kernel).
    pub fn is_padding_slot(&self, slot: usize) -> bool {
        let c = match self.chunk_ptr.binary_search(&slot) {
            // `slot` may sit exactly on a chunk boundary whose chunk is
            // empty (width 0); skip to the chunk that actually covers it.
            Ok(mut i) => {
                while i + 1 < self.chunk_ptr.len() && self.chunk_ptr[i + 1] == slot {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        let lane = (slot - self.chunk_ptr[c]) % self.chunk;
        let k = (slot - self.chunk_ptr[c]) / self.chunk;
        let s = c * self.chunk + lane;
        s >= self.nrows || k >= self.row_len[s]
    }

    /// k-major kernel over chunk `c`: `out[lane]` accumulates its row's
    /// entries in ascending-`k` (= ascending-column) order — the exact
    /// op sequence of CSR's row dot — while the slab is streamed with
    /// unit stride, which is the whole point of the sliced layout. The
    /// per-element `row_len` guard stops short rows exactly at their
    /// length; padding slots are never touched, so a non-finite `x` (or
    /// a corrupted padding slot) cannot leak a spurious `0·∞` into a row.
    #[inline]
    fn chunk_dot(&self, c: usize, x: &[f64], out: &mut [f64]) {
        let base = self.chunk_ptr[c];
        let width = (self.chunk_ptr[c + 1] - base) / self.chunk;
        let row0 = c * self.chunk;
        // Full C=8 chunks take the lane-parallel AVX2 body when the
        // dispatcher selected it: one row per SIMD lane, so each row's
        // op sequence — and hence every output bit — is unchanged (see
        // `crate::simd`). Partial tail chunks and non-default C fall
        // through to the scalar kernel.
        #[cfg(target_arch = "x86_64")]
        if self.chunk == 8 && out.len() == 8 && crate::simd::active() == crate::simd::Isa::Avx2 {
            // SAFETY: AVX2 verified by `active()`; the slab bounds come
            // from `chunk_ptr`, and `out.len() == 8` implies the chunk
            // has 8 stored rows, so `row_len[row0..row0 + 8]` is in
            // range.
            unsafe {
                crate::simd::avx2::sell_chunk8(
                    &self.values,
                    &self.col_idx,
                    x,
                    base,
                    width,
                    &self.row_len[row0..row0 + 8],
                    out,
                );
            }
            return;
        }
        out.fill(0.0);
        let mut slot = base;
        if self.chunk_sorted[c] {
            // Lengths are non-increasing across lanes, so at depth `k`
            // the live rows form a prefix: no per-element length test.
            let mut active = out.len();
            for k in 0..width {
                while active > 0 && self.row_len[row0 + active - 1] <= k {
                    active -= 1;
                }
                for (lane, yr) in out[..active].iter_mut().enumerate() {
                    let i = slot + lane;
                    *yr += self.values[i] * x[self.col_idx[i]];
                }
                slot += self.chunk;
            }
        } else {
            for k in 0..width {
                for (lane, yr) in out.iter_mut().enumerate() {
                    if k < self.row_len[row0 + lane] {
                        let i = slot + lane;
                        *yr += self.values[i] * x[self.col_idx[i]];
                    }
                }
                slot += self.chunk;
            }
        }
    }

    /// Serial SpMV `y = A x`, bitwise identical to [`CsrMatrix::spmv`].
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell spmv: x length");
        assert_eq!(y.len(), self.nrows, "sell spmv: y length");
        let mut buf = vec![0.0; self.chunk];
        for c in 0..self.n_chunks() {
            let row0 = c * self.chunk;
            let lanes = self.chunk.min(self.nrows - row0);
            self.chunk_dot(c, x, &mut buf[..lanes]);
            for (lane, &acc) in buf[..lanes].iter().enumerate() {
                y[self.perm.forward()[row0 + lane]] = acc;
            }
        }
    }

    /// Chunk-parallel SpMV on the `sdc_parallel` pool, bitwise identical
    /// to [`SellMatrix::spmv`] (and hence to the CSR kernels) at any
    /// thread count: chunks write disjoint stored slots, and the
    /// σ-permutation is inverted by a deterministic element-wise gather.
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell par_spmv: x length");
        assert_eq!(y.len(), self.nrows, "sell par_spmv: y length");
        if self.nnz < crate::PAR_SPMV_MIN_NNZ {
            return self.spmv(x, y);
        }
        if self.identity_perm {
            // stored == original: chunk results land directly in y.
            y.par_chunks_mut(self.chunk).enumerate().for_each(|(c, yc)| self.chunk_dot(c, x, yc));
        } else {
            let mut ys = vec![0.0; self.nrows];
            ys.par_chunks_mut(self.chunk).enumerate().for_each(|(c, yc)| self.chunk_dot(c, x, yc));
            let inv = self.perm.inverse();
            y.par_iter_mut().enumerate().for_each(|(orig, yr)| *yr = ys[inv[orig]]);
        }
    }
}

/// σ-window stable sort of row indices by descending length (`out[stored]
/// = original`): ties keep original order, so the permutation is a pure
/// function of the pattern. Shared by the constructor and the
/// fill-ratio predictor — they must never disagree on the ordering.
fn sigma_order(lens: &[usize], sigma: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lens.len()).collect();
    for window in order.chunks_mut(sigma) {
        window.sort_by_key(|&r| std::cmp::Reverse(lens[r]));
    }
    order
}

/// The fill ratio a CSR matrix *would* have in SELL-C-σ, computed from
/// row lengths alone (no conversion). This is the operational measure of
/// within-window row-length variance: uniform rows give exactly `1.0`,
/// ragged rows inflate it. [`crate::format::auto_format`] gates on it.
pub fn fill_ratio_of(a: &CsrMatrix, chunk: usize, sigma: usize) -> f64 {
    assert!(chunk > 0 && sigma > 0, "fill_ratio_of: chunk and sigma must be >= 1");
    if a.nnz() == 0 {
        return 1.0;
    }
    let lens: Vec<usize> = (0..a.nrows()).map(|r| a.row(r).0.len()).collect();
    let slots: usize = sigma_order(&lens, sigma)
        .chunks(chunk)
        .map(|rows| rows.iter().map(|&r| lens[r]).max().unwrap_or(0) * chunk)
        .sum();
    slots as f64 / a.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::gallery;

    fn assert_bitwise_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "element {i}: {} vs {}", a[i], b[i]);
        }
    }

    fn spmv_both(a: &CsrMatrix, s: &SellMatrix) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos() + 0.1).collect();
        let mut yc = vec![0.0; a.nrows()];
        let mut ys = vec![0.0; a.nrows()];
        a.spmv(&x, &mut yc);
        s.spmv(&x, &mut ys);
        assert_bitwise_eq(&yc, &ys);
        let mut yp = vec![0.0; a.nrows()];
        s.par_spmv(&x, &mut yp);
        assert_bitwise_eq(&yc, &yp);
    }

    #[test]
    fn round_trip_small_ragged() {
        // Ragged rows across several chunks, C smaller than some rows.
        let mut coo = CooMatrix::new(7, 9);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 3, 2.0),
            (0, 8, 3.0),
            (1, 1, 4.0),
            (3, 0, 5.0),
            (3, 1, 6.0),
            (3, 2, 7.0),
            (3, 7, 8.0),
            (5, 5, 9.0),
            (6, 2, 10.0),
            (6, 6, 11.0),
        ] {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        for chunk in [1, 2, 3, 8] {
            for sigma in [1, 2, 4, 100] {
                let s = SellMatrix::from_csr_with(&a, chunk, sigma);
                assert_eq!(s.to_csr(), a, "C={chunk} sigma={sigma}");
                assert_eq!(s.nnz(), a.nnz());
                spmv_both(&a, &s);
            }
        }
    }

    #[test]
    fn round_trip_gallery() {
        for a in [
            gallery::poisson2d(13),
            gallery::sprand(150, 150, 0.05, 42),
            gallery::circuit_mna(&gallery::CircuitMnaConfig {
                nodes: 120,
                seed: 3,
                ..Default::default()
            }),
        ] {
            let s = SellMatrix::from_csr(&a);
            assert_eq!(s.to_csr(), a);
            spmv_both(&a, &s);
        }
    }

    #[test]
    fn parallel_path_bitwise_on_large_matrix() {
        // Big enough that par_spmv takes its parallel branch; σ forced
        // on so the permutation (and its inversion) is non-trivial.
        let a = gallery::poisson2d(150);
        assert!(a.nnz() >= crate::PAR_SPMV_MIN_NNZ);
        let s = SellMatrix::from_csr_with(&a, DEFAULT_CHUNK, DEFAULT_SIGMA);
        assert!(!s.identity_perm, "poisson boundary rows force a real permutation");
        spmv_both(&a, &s);

        // The default constructor notices sorting buys nothing here
        // (near-uniform rows) and keeps the identity permutation.
        let fast = SellMatrix::from_csr(&a);
        assert!(fast.identity_perm);
        assert_eq!(fast.sigma(), 1);
        assert!(fast.fill_ratio() < SIGMA_SKIP_FILL);
        spmv_both(&a, &fast);
    }

    #[test]
    fn identity_perm_fast_path_on_uniform_rows() {
        // Every row of a diagonal matrix has exactly one entry: stable
        // σ-sort is the identity and the direct-write path runs.
        let n = 20_000;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
        let a = CsrMatrix::from_diagonal(&d);
        let s = SellMatrix::from_csr(&a);
        assert!(s.identity_perm);
        assert!((s.fill_ratio() - 1.0).abs() < 1e-12);
        spmv_both(&a, &s);
    }

    #[test]
    fn empty_and_empty_rows() {
        let a = CsrMatrix::from_raw(0, 0, vec![0], vec![], vec![]);
        let s = SellMatrix::from_csr(&a);
        assert_eq!(s.to_csr(), a);
        let mut y: Vec<f64> = vec![];
        s.spmv(&[], &mut y);

        // All-empty rows.
        let a = CsrMatrix::from_raw(5, 3, vec![0; 6], vec![], vec![]);
        let s = SellMatrix::from_csr(&a);
        assert_eq!(s.to_csr(), a);
        let mut y = vec![1.0; 5];
        s.spmv(&[0.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 5]);
    }

    #[test]
    fn entry_slot_addresses_the_right_value() {
        let a = gallery::sprand(40, 40, 0.1, 7);
        let s = SellMatrix::from_csr_with(&a, 4, 16);
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for k in 0..cols.len() {
                let slot = s.entry_slot(r, k);
                assert_eq!(s.values()[slot], vals[k], "row {r} entry {k}");
                assert_eq!(s.col_idx()[slot], cols[k]);
                assert!(!s.is_padding_slot(slot));
            }
        }
    }

    #[test]
    fn padding_slots_are_classified_and_masked() {
        // Rows of length 3 and 1 in one C=2 chunk: the short row's lanes
        // beyond its length are padding.
        let mut coo = CooMatrix::new(2, 4);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 1, 2.0), (0, 3, 3.0), (1, 2, 4.0)] {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let mut s = SellMatrix::from_csr_with(&a, 2, 2);
        assert_eq!(s.storage_len(), 6);
        let n_padding = (0..s.storage_len()).filter(|&i| s.is_padding_slot(i)).count();
        assert_eq!(n_padding, 2);

        // Corrupting every padding slot changes no SpMV result.
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y_ref = [0.0; 2];
        s.spmv(&x, &mut y_ref);
        for i in 0..s.storage_len() {
            if s.is_padding_slot(i) {
                s.values_mut()[i] = f64::NAN;
            }
        }
        let mut y = [0.0; 2];
        s.spmv(&x, &mut y);
        assert_eq!(y, y_ref);
        // ... and the round trip still reproduces the original matrix.
        assert_eq!(s.to_csr(), a);
    }

    #[test]
    fn fill_ratio_of_predicts_actual_ratio() {
        for (a, chunk, sigma) in [
            (gallery::poisson2d(9), 4, 8),
            (gallery::sprand(100, 80, 0.07, 5), 8, 32),
            (gallery::poisson2d(20), 8, 1),
        ] {
            let predicted = fill_ratio_of(&a, chunk, sigma);
            let actual = SellMatrix::from_csr_with(&a, chunk, sigma).fill_ratio();
            assert!((predicted - actual).abs() < 1e-12, "{predicted} vs {actual}");
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Ragged matrix: σ-sorted SELL must waste no more than unsorted.
        let a = gallery::circuit_mna(&gallery::CircuitMnaConfig {
            nodes: 200,
            seed: 9,
            ..Default::default()
        });
        let sorted = SellMatrix::from_csr_with(&a, 8, 64).fill_ratio();
        let unsorted = SellMatrix::from_csr_with(&a, 8, 1).fill_ratio();
        assert!(sorted <= unsorted + 1e-12, "sorted {sorted} vs unsorted {unsorted}");
    }

    #[test]
    #[should_panic(expected = "chunk height")]
    fn zero_chunk_rejected() {
        SellMatrix::from_csr_with(&CsrMatrix::identity(3), 0, 1);
    }
}

//! Compressed sparse row storage and kernels.
//!
//! CSR is the compute format: GMRES' dominant kernel, sparse
//! matrix–vector multiply (SpMV), streams each row's column indices and
//! values once. The parallel SpMV partitions *rows* disjointly across
//! the `sdc_parallel` work pool (threads claim contiguous row chunks
//! dynamically), so every output element is written by exactly one task
//! and the result is bitwise identical to the serial kernel — campaign
//! reproducibility does not depend on thread count.

use rayon::prelude::*;

use sdc_dense::vector;

/// A validated sparse matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays, validating the invariants:
    /// `row_ptr` monotone with `row_ptr[0]=0`, `row_ptr[nrows]=nnz`,
    /// column indices in range and strictly increasing within each row.
    ///
    /// # Panics
    /// Panics on malformed input — CSR invariants are structural
    /// correctness, not recoverable data errors.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "CSR: row_ptr length");
        assert_eq!(row_ptr[0], 0, "CSR: row_ptr[0] must be 0");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "CSR: row_ptr[last] must equal nnz");
        assert_eq!(col_idx.len(), values.len(), "CSR: col_idx/values length mismatch");
        for r in 0..nrows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "CSR: row_ptr not monotone at {r}");
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "CSR: columns not strictly increasing in row {r}");
            }
            if let Some(&last) = cols.last() {
                assert!(last < ncols, "CSR: column index out of range in row {r}");
            }
        }
        Self { nrows, ncols, row_ptr, col_idx, values }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_raw(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Diagonal matrix from a vector.
    pub fn from_diagonal(d: &[f64]) -> Self {
        let n = d.len();
        Self::from_raw(n, n, (0..=n).collect(), (0..n).collect(), d.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values (pattern is fixed; used by scaling utilities).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Value at `(r, c)` (zero if not stored). O(log nnz_row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Serial SpMV: `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        for r in 0..self.nrows {
            y[r] = self.row_dot(r, x);
        }
    }

    /// Parallel SpMV, bitwise identical to [`CsrMatrix::spmv`].
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "par_spmv: x length");
        assert_eq!(y.len(), self.nrows, "par_spmv: y length");
        if self.nnz() < crate::PAR_SPMV_MIN_NNZ {
            return self.spmv(x, y);
        }
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            *yr = self.row_dot(r, x);
        });
    }

    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (c, v) in cols.iter().zip(vals.iter()) {
            acc += v * x[*c];
        }
        acc
    }

    /// Fast-math serial SpMV: the opt-in [`crate::KernelTier::FastMath`]
    /// kernel — intra-row vectorization with four strided fused
    /// accumulators. Not bitwise-equal to [`CsrMatrix::spmv`] (different,
    /// tighter-error rounding), but deterministic and identical across
    /// scalar and AVX2 hosts, so fast-math artifacts still pin to goldens.
    pub fn spmv_fastmath(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv_fastmath: x length");
        assert_eq!(y.len(), self.nrows, "spmv_fastmath: y length");
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            y[r] = crate::simd::row_dot_fast(cols, vals, x);
        }
    }

    /// Parallel fast-math SpMV, bitwise identical to
    /// [`CsrMatrix::spmv_fastmath`] at any thread count (rows are
    /// disjoint, like the strict kernel).
    pub fn par_spmv_fastmath(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "par_spmv_fastmath: x length");
        assert_eq!(y.len(), self.nrows, "par_spmv_fastmath: y length");
        if self.nnz() < crate::PAR_SPMV_MIN_NNZ {
            return self.spmv_fastmath(x, y);
        }
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let (cols, vals) = self.row(r);
            *yr = crate::simd::row_dot_fast(cols, vals, x);
        });
    }

    /// Transposed SpMV: `y = Aᵀ x` (serial; scatter-based).
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv_transpose: x length");
        assert_eq!(y.len(), self.ncols, "spmv_transpose: y length");
        y.fill(0.0);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let xr = x[r];
            if xr != 0.0 {
                for (c, v) in cols.iter().zip(vals.iter()) {
                    y[*c] += v * xr;
                }
            }
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                let k = next[*c];
                col_idx[k] = r;
                values[k] = *v;
                next[*c] += 1;
            }
        }
        CsrMatrix::from_raw(self.ncols, self.nrows, counts, col_idx, values)
    }

    /// The diagonal as a dense vector (zeros where unset).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Frobenius norm — the paper's default (cheap) detector bound.
    pub fn norm_fro(&self) -> f64 {
        vector::nrm2(&self.values)
    }

    /// Maximum absolute column sum (`‖A‖₁`).
    pub fn norm_one(&self) -> f64 {
        let mut colsum = vec![0.0f64; self.ncols];
        for (c, v) in self.col_idx.iter().zip(self.values.iter()) {
            colsum[*c] += v.abs();
        }
        colsum.iter().fold(0.0, |m, &s| m.max(s))
    }

    /// Maximum absolute row sum (`‖A‖_∞`).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| {
                let (_, vals) = self.row(r);
                vals.iter().map(|v| v.abs()).sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        vector::norm_inf(&self.values)
    }

    /// Scales all values by `s` in place.
    pub fn scale(&mut self, s: f64) {
        vector::scal(s, &mut self.values);
    }

    /// Row scaling `A ← D A` with `D = diag(d)`.
    pub fn scale_rows(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.nrows);
        for r in 0..self.nrows {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for v in &mut self.values[span] {
                *v *= d[r];
            }
        }
    }

    /// Column scaling `A ← A D` with `D = diag(d)`.
    pub fn scale_cols(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.ncols);
        for (c, v) in self.col_idx.iter().zip(self.values.iter_mut()) {
            *v *= d[*c];
        }
    }

    /// True if the sparsity pattern is symmetric (requires square).
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// True if `‖A − Aᵀ‖_max ≤ tol · ‖A‖_max` (requires square).
    pub fn is_numerically_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        let scale = self.norm_max().max(f64::MIN_POSITIVE);
        // Walk both patterns; different patterns with nonzero values break
        // symmetry too.
        for r in 0..self.nrows {
            let (c1, v1) = self.row(r);
            let (c2, v2) = t.row(r);
            let mut i = 0;
            let mut j = 0;
            while i < c1.len() || j < c2.len() {
                match (c1.get(i), c2.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        if (v1[i] - v2[j]).abs() > tol * scale {
                            return false;
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        if v1[i].abs() > tol * scale {
                            return false;
                        }
                        i += 1;
                    }
                    (Some(_), Some(_)) => {
                        if v2[j].abs() > tol * scale {
                            return false;
                        }
                        j += 1;
                    }
                    (Some(_), None) => {
                        if v1[i].abs() > tol * scale {
                            return false;
                        }
                        i += 1;
                    }
                    (None, Some(_)) => {
                        if v2[j].abs() > tol * scale {
                            return false;
                        }
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        true
    }

    /// Converts to a dense matrix (test/debug utility; small matrices only).
    pub fn to_dense(&self) -> sdc_dense::DenseMatrix {
        let mut m = sdc_dense::DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                m[(r, *c)] = *v;
            }
        }
        m
    }

    /// True if every stored value is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)] {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    #[test]
    fn spmv_known() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 6.0, 19.0]);
    }

    #[test]
    fn par_spmv_matches_serial_bitwise() {
        // Large random-ish matrix to trigger the parallel path.
        let n = 2000;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + (i as f64 * 0.01).sin());
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
                coo.push(i + 1, i, -0.25);
            }
            coo.push(i, (i * 7 + 3) % n, 0.125);
        }
        let a = coo.to_csr();
        assert!(a.nnz() >= 1 << 14 || a.nnz() == a.nnz()); // sanity
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        a.par_spmv(&x, &mut y2);
        for i in 0..n {
            assert_eq!(y1[i].to_bits(), y2[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = small();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn spmv_transpose_matches_explicit() {
        let a = small();
        let x = [1.0, -1.0, 0.5];
        let mut y1 = [0.0; 3];
        a.spmv_transpose(&x, &mut y1);
        let mut y2 = [0.0; 3];
        a.transpose().spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn norms_small() {
        let a = small();
        // values: 1,2,3,4,5
        assert!((a.norm_fro() - (55.0f64).sqrt()).abs() < 1e-14);
        assert_eq!(a.norm_one(), 7.0); // col2: |2|+|5|=7
        assert_eq!(a.norm_inf(), 9.0); // row2: 4+5
        assert_eq!(a.norm_max(), 5.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = small();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn get_missing_entry_is_zero() {
        let a = small();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn identity_and_diag() {
        let i3 = CsrMatrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
        let d = CsrMatrix::from_diagonal(&[2.0, 3.0, 4.0]);
        d.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 6.0, 12.0]);
    }

    #[test]
    fn symmetry_checks() {
        let a = small();
        // (0,2)/(2,0) mirror each other, so the *pattern* is symmetric —
        // but the values (2 vs 4) are not.
        assert!(a.is_pattern_symmetric());
        assert!(!a.is_numerically_symmetric(1e-12));
        let mut coo = CooMatrix::new(2, 2);
        coo.push_sym(0, 1, 5.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let s = coo.to_csr();
        assert!(s.is_pattern_symmetric());
        assert!(s.is_numerically_symmetric(1e-14));
    }

    #[test]
    fn numeric_asymmetry_detected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 4.0);
        let a = coo.to_csr();
        assert!(a.is_pattern_symmetric());
        assert!(!a.is_numerically_symmetric(1e-10));
    }

    #[test]
    fn scaling_ops() {
        let mut a = small();
        a.scale(2.0);
        assert_eq!(a.get(0, 0), 2.0);
        a.scale_rows(&[1.0, 0.5, 1.0]);
        assert_eq!(a.get(1, 1), 3.0);
        a.scale_cols(&[0.5, 1.0, 1.0]);
        assert_eq!(a.get(2, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "columns not strictly increasing")]
    fn malformed_csr_rejected() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn all_finite_flags_nan() {
        let mut a = small();
        assert!(a.all_finite());
        a.values_mut()[0] = f64::INFINITY;
        assert!(!a.all_finite());
    }

    #[test]
    fn to_dense_matches() {
        let a = small();
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[(r, c)], a.get(r, c));
            }
        }
    }
}

//! Permutations and bandwidth-reducing reordering.
//!
//! Reordering is standard preprocessing for the circuit-class matrices of
//! §VII-A (direct and incomplete factorizations both profit from small
//! bandwidth). The reverse Cuthill–McKee (RCM) ordering implemented here
//! pairs with [`crate::structure::bandwidth`] for before/after
//! measurements, and the permutation type is the general substrate:
//! `B = P A Pᵀ` with validated permutation vectors.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::collections::VecDeque;

/// A validated permutation of `0..n`: `perm[new_index] = old_index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permutation {
    /// Builds from `perm[new] = old`, validating bijectivity.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn from_vec(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in forward.iter().enumerate() {
            assert!(old < n, "permutation entry {old} out of range");
            assert!(inverse[old] == usize::MAX, "duplicate permutation entry {old}");
            inverse[old] = new;
        }
        Self { forward, inverse }
    }

    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Self { forward: (0..n).collect(), inverse: (0..n).collect() }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// `perm[new] = old`.
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// `inv[old] = new`.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// The reversal of this permutation (RCM = reversed CM).
    pub fn reversed(&self) -> Permutation {
        let mut f = self.forward.clone();
        f.reverse();
        Permutation::from_vec(f)
    }

    /// Permutes a vector: `out[new] = x[perm[new]]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "apply_vec: length mismatch");
        self.forward.iter().map(|&old| x[old]).collect()
    }

    /// Un-permutes a vector: `out[perm[new]] = x[new]`.
    pub fn unapply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "unapply_vec: length mismatch");
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.forward.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }

    /// Symmetric permutation of a square matrix: `B = P A Pᵀ`, i.e.
    /// `B[new_i, new_j] = A[old_i, old_j]`.
    pub fn apply_sym(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(a.nrows(), self.len(), "apply_sym: size mismatch");
        assert_eq!(a.ncols(), self.len(), "apply_sym: matrix must be square");
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for new_r in 0..self.len() {
            let old_r = self.forward[new_r];
            let (cols, vals) = a.row(old_r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                coo.push(new_r, self.inverse[*c], *v);
            }
        }
        coo.to_csr()
    }
}

/// Cuthill–McKee ordering of the *symmetrized* pattern, reversed (RCM).
/// Works on any square matrix; disconnected components are handled by
/// restarting from the minimum-degree unvisited vertex.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.nrows(), a.ncols(), "rcm: matrix must be square");
    let n = a.nrows();
    // Symmetrize the adjacency (pattern of A + Aᵀ), excluding diagonal.
    let t = a.transpose();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        let (c1, _) = a.row(r);
        let (c2, _) = t.row(r);
        let mut merged: Vec<usize> =
            c1.iter().chain(c2.iter()).copied().filter(|&c| c != r).collect();
        merged.sort_unstable();
        merged.dedup();
        adj[r] = merged;
    }
    let degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    loop {
        // Next start: unvisited vertex of minimum degree.
        let start = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]);
        let Some(start) = start else { break };
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            neigh.sort_by_key(|&u| degree[u]);
            for u in neigh {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    Permutation::from_vec(order).reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use crate::structure::bandwidth;

    #[test]
    fn permutation_round_trip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let x = [10.0, 11.0, 12.0, 13.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![12.0, 10.0, 13.0, 11.0]);
        let back = p.unapply_vec(&y);
        assert_eq!(back.to_vec(), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_bijection() {
        Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn symmetric_permutation_preserves_spectrumish_properties() {
        // P A Pᵀ has the same Frobenius norm, diagonal multiset and nnz.
        let a = gallery::poisson2d(5);
        let p = Permutation::from_vec((0..25).rev().collect());
        let b = p.apply_sym(&a);
        assert_eq!(a.nnz(), b.nnz());
        assert!((a.norm_fro() - b.norm_fro()).abs() < 1e-13);
        let mut da = a.diagonal();
        let mut db = b.diagonal();
        da.sort_by(|x, y| x.partial_cmp(y).unwrap());
        db.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(da, db);
    }

    #[test]
    fn permuted_solve_consistency() {
        // Solving the permuted system gives the permuted solution:
        // (P A Pᵀ)(P x) = P b.
        let a = gallery::poisson1d(8);
        let p = Permutation::from_vec(vec![3, 1, 7, 0, 5, 2, 6, 4]);
        let b_mat = p.apply_sym(&a);
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut ax = vec![0.0; 8];
        a.spmv(&x, &mut ax);
        let px = p.apply_vec(&x);
        let mut bpx = vec![0.0; 8];
        b_mat.spmv(&px, &mut bpx);
        let pax = p.apply_vec(&ax);
        for i in 0..8 {
            assert!((bpx[i] - pax[i]).abs() < 1e-14, "index {i}");
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_poisson() {
        // Shuffle a banded matrix, then RCM should substantially recover
        // a small bandwidth.
        let a = gallery::poisson2d(10);
        let (l0, u0) = bandwidth(&a);
        // Deterministic shuffle.
        let mut idx: Vec<usize> = (0..100).collect();
        for i in 0..100usize {
            let j = (i * 37 + 11) % 100;
            idx.swap(i, j);
        }
        let shuffled = Permutation::from_vec(idx).apply_sym(&a);
        let (ls, _us) = bandwidth(&shuffled);
        assert!(ls > 2 * l0, "shuffle should blow up the bandwidth");
        let rcm = reverse_cuthill_mckee(&shuffled);
        let restored = rcm.apply_sym(&shuffled);
        let (lr, ur) = bandwidth(&restored);
        assert!(
            lr <= l0 + 5 && ur <= u0 + 5,
            "RCM bandwidth ({lr},{ur}) not close to original ({l0},{u0})"
        );
    }

    #[test]
    fn rcm_identity_on_diagonal_matrix() {
        let a = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 3);
        // All vertices isolated: any order is valid; must be a bijection.
        let mut f = p.forward().to_vec();
        f.sort_unstable();
        assert_eq!(f, vec![0, 1, 2]);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint paths.
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0);
        }
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(1, 2, -1.0);
        coo.push_sym(3, 4, -1.0);
        coo.push_sym(4, 5, -1.0);
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        let b = p.apply_sym(&a);
        let (l, u) = bandwidth(&b);
        assert!(l <= 1 && u <= 1, "paths must stay tridiagonal, got ({l},{u})");
    }
}

//! SIMD SpMV kernels and the versioned kernel-tier axis.
//!
//! Mode selection (`SDC_SIMD`, `--simd`) lives in [`sdc_dense::simd`]
//! and is re-exported here so sparse callers see one dispatch point;
//! this module adds the two sparse kernel bodies:
//!
//! * **Strict SELL chunk kernel** (`avx2::sell_chunk8`): the SELL-C-σ
//!   slab stores `C = 8` rows lane-interleaved, so the kernel runs the
//!   eight independent row accumulations in two `f64x4` register
//!   groups. Each lane performs exactly its row's scalar op sequence —
//!   `acc += a_ij · x_j` in ascending-column order, separate multiply
//!   and add (no FMA: fusing would change the rounding) — and row
//!   raggedness is handled by *blending the accumulator*, never by
//!   adding a masked-to-zero product (`acc + 0.0` would flush `-0.0`
//!   to `+0.0` and canonicalize NaN payloads of finished lanes). A
//!   masked gather keeps padding slots unread, preserving the
//!   architectural-masking contract the fault campaigns rely on. The
//!   result is bitwise identical to the scalar kernel — and therefore
//!   to CSR — so `SDC_SIMD` never perturbs an artifact byte.
//! * **Fast-math CSR row kernel** (`row_dot_fast`): the explicitly
//!   versioned [`KernelTier::FastMath`] trades the strict contract for
//!   intra-row vectorization — four strided sub-accumulators folded
//!   with fused multiply-adds. It is *not* bitwise-equal to strict
//!   (hence the opt-in tier field and separate goldens), but it is
//!   deterministic and host-independent: the scalar fallback uses
//!   `f64::mul_add` (IEEE correctly-rounded fusion, like the FMA
//!   instruction) over the identical accumulator shape and the same
//!   final `(a0+a1)+(a2+a3)` combine, so scalar and AVX2 hosts produce
//!   the same bytes and fast-math goldens pin on any machine.

pub use sdc_dense::simd::{active, detected, set_mode, test_mode_guard, Isa, ModeGuard, SimdMode};

/// The kernel-tier axis: which arithmetic contract SpMV honours.
/// `strict` is the workspace default and is elided from specs,
/// artifacts and requests, so legacy bytes are unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Bitwise-reproducible kernels: format-, thread- and ISA-invariant.
    #[default]
    Strict,
    /// Intra-row vectorized CSR with FMA: deterministic and
    /// host-independent, but a different (tighter-error) rounding than
    /// strict — opt-in, with its own goldens.
    FastMath,
}

impl KernelTier {
    /// The spec/CLI/protocol string for this tier.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelTier::Strict => "strict",
            KernelTier::FastMath => "fast_math",
        }
    }

    /// Parses a spec/CLI/protocol string (`strict` or `fast_math`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(KernelTier::Strict),
            "fast_math" => Ok(KernelTier::FastMath),
            other => Err(format!("unknown kernel tier '{other}' (expected strict|fast_math)")),
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fast-math dot of one CSR row against `x`: four strided
/// sub-accumulators, each folded with correctly-rounded fused
/// multiply-adds, combined as `(a0+a1)+(a2+a3)`. The AVX2 body computes
/// the identical shape with `vfmadd` (also correctly rounded), so the
/// result does not depend on the dispatched ISA.
///
/// Callers must guarantee `cols[i] < x.len()` for all `i` (CSR
/// construction validates indices against `ncols`, and the SpMV entry
/// points assert `x.len() == ncols`).
#[inline]
pub(crate) fn row_dot_fast(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if active() == Isa::Avx2 {
            // SAFETY: AVX2+FMA verified by `active()`; index bound is the
            // caller contract above.
            return unsafe { avx2::row_dot_fast(cols, vals, x) };
        }
    }
    row_dot_fast_scalar(cols, vals, x)
}

pub(crate) fn row_dot_fast_scalar(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    let n = vals.len();
    let quads = n - n % 4;
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < quads {
        for (l, a) in acc.iter_mut().enumerate() {
            *a = vals[i + l].mul_add(x[cols[i + l]], *a);
        }
        i += 4;
    }
    for l in 0..(n - quads) {
        acc[l] = vals[i + l].mul_add(x[cols[i + l]], acc[l]);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// Strict SELL kernel over one full `C = 8` chunk: lanes 0–3 in
    /// `acc0`, lanes 4–7 in `acc1`. See the module docs for why the
    /// masking blends accumulators and why there is no FMA here.
    ///
    /// # Safety
    /// Requires AVX2. `row_len8.len() == out.len() == 8`; the slab
    /// `[base, base + 8·width)` must lie inside `values`/`col_idx`.
    /// Column indices of *live* (non-padding) slots are range-checked
    /// against `x` and panic exactly like the scalar kernel's slice
    /// index; padding slots are never dereferenced.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sell_chunk8(
        values: &[f64],
        col_idx: &[usize],
        x: &[f64],
        base: usize,
        width: usize,
        row_len8: &[usize],
        out: &mut [f64],
    ) {
        debug_assert_eq!(row_len8.len(), 8);
        debug_assert_eq!(out.len(), 8);
        debug_assert!(base + 8 * width <= values.len().min(col_idx.len()));
        let rl0 = _mm256_loadu_si256(row_len8.as_ptr() as *const __m256i);
        let rl1 = _mm256_loadu_si256(row_len8.as_ptr().add(4) as *const __m256i);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut slot = base;
        for k in 0..width {
            let kv = _mm256_set1_epi64x(k as i64);
            // Lane live while its row still has entries at depth k.
            let m0 = _mm256_cmpgt_epi64(rl0, kv);
            let m1 = _mm256_cmpgt_epi64(rl1, kv);
            acc0 = lane_step(values, col_idx, x, slot, m0, acc0);
            acc1 = lane_step(values, col_idx, x, slot + 4, m1, acc1);
            slot += 8;
        }
        _mm256_storeu_pd(out.as_mut_ptr(), acc0);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), acc1);
    }

    /// One depth-k step for four lanes: masked gather of `x`, separate
    /// mul/add, accumulator blend on the live mask.
    ///
    /// # Safety
    /// Requires AVX2; `slot + 4 <= values.len().min(col_idx.len())`.
    #[target_feature(enable = "avx2")]
    unsafe fn lane_step(
        values: &[f64],
        col_idx: &[usize],
        x: &[f64],
        slot: usize,
        live: __m256i,
        acc: __m256d,
    ) -> __m256d {
        let idx = _mm256_loadu_si256(col_idx.as_ptr().add(slot) as *const __m256i);
        // Unsigned `idx < x.len()` via sign-bias (a bit-flipped index can
        // have its top bit set, which a signed compare would call small).
        let bias = _mm256_set1_epi64x(i64::MIN);
        let bound = _mm256_xor_si256(_mm256_set1_epi64x(x.len() as i64), bias);
        let valid = _mm256_cmpgt_epi64(bound, _mm256_xor_si256(idx, bias));
        if _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_andnot_si256(valid, live))) != 0 {
            // A live lane's index is out of range: reproduce the scalar
            // kernel's bounds-check panic (the taxonomy's hard fault).
            let live_l: [i64; 4] = std::mem::transmute(live);
            for (lane, &l) in live_l.iter().enumerate() {
                if l != 0 {
                    let _ = x[col_idx[slot + lane]];
                }
            }
        }
        // Masked gather: padding slots are architecturally unread.
        let gx = _mm256_mask_i64gather_pd::<8>(
            _mm256_setzero_pd(),
            x.as_ptr(),
            idx,
            _mm256_castsi256_pd(live),
        );
        let v = _mm256_loadu_pd(values.as_ptr().add(slot));
        // mul then add — the scalar op sequence — then blend so finished
        // lanes keep their bits untouched.
        let sum = _mm256_add_pd(acc, _mm256_mul_pd(v, gx));
        _mm256_blendv_pd(acc, sum, _mm256_castsi256_pd(live))
    }

    /// Fast-math CSR row dot: the vector body of
    /// [`super::row_dot_fast`]. `vfmadd` and `f64::mul_add` are both
    /// correctly-rounded fused operations, so this is bitwise equal to
    /// the scalar fallback.
    ///
    /// # Safety
    /// Requires AVX2+FMA; every `cols[i] < x.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_dot_fast(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
        let n = vals.len();
        let quads = n - n % 4;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < quads {
            let idx = _mm256_loadu_si256(cols.as_ptr().add(i) as *const __m256i);
            let gx = _mm256_i64gather_pd::<8>(x.as_ptr(), idx);
            let v = _mm256_loadu_pd(vals.as_ptr().add(i));
            acc = _mm256_fmadd_pd(v, gx, acc);
            i += 4;
        }
        let mut lanes: [f64; 4] = std::mem::transmute(acc);
        for l in 0..(n - quads) {
            lanes[l] = vals[i + l].mul_add(x[cols[i + l]], lanes[l]);
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_strings_round_trip() {
        for t in [KernelTier::Strict, KernelTier::FastMath] {
            assert_eq!(KernelTier::parse(t.as_str()).unwrap(), t);
            assert_eq!(format!("{t}"), t.as_str());
        }
        assert!(KernelTier::parse("sloppy").is_err());
        assert_eq!(KernelTier::default(), KernelTier::Strict);
    }

    #[test]
    fn fastmath_row_dot_isa_invariant_and_close_to_strict() {
        let _guard = test_mode_guard();
        let n = 77;
        let cols: Vec<usize> = (0..n).map(|i| i * 3 % 200).collect();
        let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.31).cos() + 0.2).collect();
        set_mode(SimdMode::Scalar).unwrap();
        let scalar = row_dot_fast(&cols, &vals, &x);
        let strict: f64 = cols.iter().zip(vals.iter()).map(|(&c, &v)| v * x[c]).sum();
        assert!((scalar - strict).abs() <= 1e-12 * strict.abs().max(1.0));
        if set_mode(SimdMode::Avx2).is_ok() {
            let simd = row_dot_fast(&cols, &vals, &x);
            assert_eq!(scalar.to_bits(), simd.to_bits());
        }
    }
}

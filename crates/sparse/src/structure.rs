//! Structural analysis of sparsity patterns.
//!
//! Table I of the paper reports whether each test matrix has *structural
//! full rank* — a property of the nonzero pattern alone: the size of a
//! maximum matching in the bipartite graph pairing rows with the columns
//! they touch. We compute it with the Hopcroft–Karp algorithm
//! (`O(E·√V)`), plus the symmetry and bandwidth metrics that characterize
//! the two matrix classes (§VII-A-1: SPD inputs give a tridiagonal `H`,
//! nonsymmetric inputs a full upper Hessenberg).

use crate::csr::CsrMatrix;

/// Maximum bipartite matching size between rows and columns of the
/// pattern — the structural rank (`sprank` in Matlab).
pub fn structural_rank(a: &CsrMatrix) -> usize {
    hopcroft_karp(a)
}

/// True if `sprank(A) == min(nrows, ncols)` — Table I's
/// "structural full rank?" row.
pub fn is_structurally_full_rank(a: &CsrMatrix) -> bool {
    structural_rank(a) == a.nrows().min(a.ncols())
}

const NIL: usize = usize::MAX;

/// Hopcroft–Karp maximum matching on the row/column bipartite graph.
fn hopcroft_karp(a: &CsrMatrix) -> usize {
    let nr = a.nrows();
    let nc = a.ncols();
    let mut match_row = vec![NIL; nr]; // row -> col
    let mut match_col = vec![NIL; nc]; // col -> row
    let mut dist = vec![usize::MAX; nr];
    let mut matching = 0usize;

    // Greedy initialization speeds up the phases considerably.
    for r in 0..nr {
        let (cols, _) = a.row(r);
        for &c in cols {
            if match_col[c] == NIL {
                match_col[c] = r;
                match_row[r] = c;
                matching += 1;
                break;
            }
        }
    }

    let mut queue = std::collections::VecDeque::new();
    loop {
        // BFS phase: layer the free rows.
        queue.clear();
        for r in 0..nr {
            if match_row[r] == NIL {
                dist[r] = 0;
                queue.push_back(r);
            } else {
                dist[r] = usize::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(r) = queue.pop_front() {
            let (cols, _) = a.row(r);
            for &c in cols {
                let r2 = match_col[c];
                if r2 == NIL {
                    found_augmenting = true;
                } else if dist[r2] == usize::MAX {
                    dist[r2] = dist[r] + 1;
                    queue.push_back(r2);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        for r in 0..nr {
            if match_row[r] == NIL && dfs(a, r, &mut match_row, &mut match_col, &mut dist) {
                matching += 1;
            }
        }
    }
    matching
}

fn dfs(
    a: &CsrMatrix,
    r: usize,
    match_row: &mut [usize],
    match_col: &mut [usize],
    dist: &mut [usize],
) -> bool {
    let (cols, _) = a.row(r);
    for &c in cols {
        let r2 = match_col[c];
        if r2 == NIL || (dist[r2] == dist[r] + 1 && dfs(a, r2, match_row, match_col, dist)) {
            match_row[r] = c;
            match_col[c] = r;
            return true;
        }
    }
    dist[r] = usize::MAX;
    false
}

/// Fraction of off-diagonal stored entries `(i,j)` whose mirror `(j,i)` is
/// also stored. 1.0 for a symmetric pattern, 0.0 for a fully one-sided
/// pattern; matrices with an empty off-diagonal report 1.0.
pub fn pattern_symmetry_score(a: &CsrMatrix) -> f64 {
    if a.nrows() != a.ncols() {
        return 0.0;
    }
    let t = a.transpose();
    let mut offdiag = 0usize;
    let mut mirrored = 0usize;
    for r in 0..a.nrows() {
        let (cols, _) = a.row(r);
        let (tcols, _) = t.row(r);
        for &c in cols {
            if c == r {
                continue;
            }
            offdiag += 1;
            if tcols.binary_search(&c).is_ok() {
                mirrored += 1;
            }
        }
    }
    if offdiag == 0 {
        1.0
    } else {
        mirrored as f64 / offdiag as f64
    }
}

/// Lower and upper bandwidth of the pattern: the largest `i−j` and `j−i`
/// over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> (usize, usize) {
    let mut lower = 0usize;
    let mut upper = 0usize;
    for r in 0..a.nrows() {
        let (cols, _) = a.row(r);
        if let Some(&first) = cols.first() {
            if first < r {
                lower = lower.max(r - first);
            }
        }
        if let Some(&last) = cols.last() {
            if last > r {
                upper = upper.max(last - r);
            }
        }
    }
    (lower, upper)
}

/// Average number of stored entries per row.
pub fn avg_nnz_per_row(a: &CsrMatrix) -> f64 {
    if a.nrows() == 0 {
        0.0
    } else {
        a.nnz() as f64 / a.nrows() as f64
    }
}

/// Moments of the row-length (nnz-per-row) distribution. Low variance
/// is why sliced-ELLPACK chunks pad almost nothing on stencil matrices;
/// note the actual CSR-vs-SELL gate in [`crate::format::auto_format`]
/// is the sharper [`crate::sell::fill_ratio_of`] (variance *within σ
/// windows* is what padding responds to) — these moments are the
/// structural summary reported next to the Table-I metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowLengthStats {
    /// Shortest row.
    pub min: usize,
    /// Longest row.
    pub max: usize,
    /// Mean row length.
    pub mean: f64,
    /// Population variance of the row lengths.
    pub variance: f64,
}

impl RowLengthStats {
    /// Coefficient of variation (`σ / μ`; `0` for an empty matrix).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.variance.sqrt() / self.mean
        }
    }
}

/// Computes [`RowLengthStats`] from the row pointer array in one pass.
pub fn row_length_stats(a: &CsrMatrix) -> RowLengthStats {
    let n = a.nrows();
    if n == 0 {
        return RowLengthStats { min: 0, max: 0, mean: 0.0, variance: 0.0 };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0u128;
    for r in 0..n {
        let len = a.row_ptr()[r + 1] - a.row_ptr()[r];
        min = min.min(len);
        max = max.max(len);
        sum += len;
        sum_sq += (len as u128) * (len as u128);
    }
    let mean = sum as f64 / n as f64;
    let variance = (sum_sq as f64 / n as f64 - mean * mean).max(0.0);
    RowLengthStats { min, max, mean, variance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::ops::tridiag_toeplitz;

    #[test]
    fn identity_has_full_structural_rank() {
        let a = CsrMatrix::identity(10);
        assert_eq!(structural_rank(&a), 10);
        assert!(is_structurally_full_rank(&a));
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let a = CooMatrix::new(4, 4).to_csr();
        assert_eq!(structural_rank(&a), 0);
        assert!(!is_structurally_full_rank(&a));
    }

    #[test]
    fn rank_deficient_pattern() {
        // Two rows share the only column => matching size 1.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        assert_eq!(structural_rank(&a), 1);
    }

    #[test]
    fn permutation_needs_augmenting_paths() {
        // A pattern where greedy matching fails without augmentation:
        // row0: {0,1}, row1: {0}, row2: {1,2}.
        // Greedy: r0->0, r1 blocked... augmenting path must reassign.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(2, 2, 1.0);
        let a = coo.to_csr();
        assert_eq!(structural_rank(&a), 3);
    }

    #[test]
    fn rectangular_rank_bounded_by_min_dim() {
        let mut coo = CooMatrix::new(2, 5);
        for c in 0..5 {
            coo.push(0, c, 1.0);
            coo.push(1, c, 1.0);
        }
        let a = coo.to_csr();
        assert_eq!(structural_rank(&a), 2);
        assert!(is_structurally_full_rank(&a));
    }

    #[test]
    fn tridiagonal_full_rank_and_bandwidth() {
        let t = tridiag_toeplitz(50, -1.0, 2.0, -1.0);
        assert!(is_structurally_full_rank(&t));
        assert_eq!(bandwidth(&t), (1, 1));
        assert!((pattern_symmetry_score(&t) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn one_sided_pattern_scores_zero() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(0, 2, 1.0);
        let a = coo.to_csr();
        assert_eq!(pattern_symmetry_score(&a), 0.0);
        assert_eq!(bandwidth(&a), (0, 2));
    }

    #[test]
    fn avg_nnz() {
        let t = tridiag_toeplitz(4, -1.0, 2.0, -1.0);
        assert!((avg_nnz_per_row(&t) - 2.5).abs() < 1e-15);
    }

    #[test]
    fn row_length_moments() {
        // tridiag(4): lengths 2,3,3,2 — mean 2.5, variance 0.25.
        let t = tridiag_toeplitz(4, -1.0, 2.0, -1.0);
        let s = row_length_stats(&t);
        assert_eq!((s.min, s.max), (2, 3));
        assert!((s.mean - 2.5).abs() < 1e-15);
        assert!((s.variance - 0.25).abs() < 1e-15);
        assert!((s.cv() - 0.5 / 2.5).abs() < 1e-15);

        // Uniform rows: zero variance.
        let d = crate::CsrMatrix::identity(6);
        let s = row_length_stats(&d);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.cv(), 0.0);

        let empty = crate::CsrMatrix::from_raw(0, 0, vec![0], vec![], vec![]);
        assert_eq!(row_length_stats(&empty).mean, 0.0);
    }

    #[test]
    fn hard_matching_instance() {
        // Bipartite "crown"-ish pattern exercising multiple BFS phases.
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1.0);
            coo.push(i, (i + 7) % n, 1.0);
        }
        let a = coo.to_csr();
        assert_eq!(structural_rank(&a), n);
    }
}

//! Sparse matrix algebra: addition, scaling, Kronecker products.
//!
//! The Kronecker product is the assembly tool for the paper's first test
//! problem: Matlab's `gallery('poisson',n)` is exactly
//! `kron(I,T) + kron(T,I)` with `T = tridiag(−1, 2, −1)`. Building the
//! operator both ways (stencil and Kronecker) gives the gallery a strong
//! cross-validation test.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rayon::prelude::*;

/// Sparse matrix sum `A + B` (patterns merged, values added).
///
/// # Panics
/// Panics if shapes differ.
pub fn add(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.nrows(), b.nrows(), "add: row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "add: col mismatch");
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    row_ptr.push(0);
    for r in 0..a.nrows() {
        let (ca, va) = a.row(r);
        let (cb, vb) = b.row(r);
        let (mut i, mut j) = (0, 0);
        while i < ca.len() || j < cb.len() {
            match (ca.get(i), cb.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    col_idx.push(x);
                    values.push(va[i] + vb[j]);
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    col_idx.push(x);
                    values.push(va[i]);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    col_idx.push(y);
                    values.push(vb[j]);
                    j += 1;
                }
                (Some(&x), None) => {
                    col_idx.push(x);
                    values.push(va[i]);
                    i += 1;
                }
                (None, Some(&y)) => {
                    col_idx.push(y);
                    values.push(vb[j]);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

/// Scaled copy `s · A`.
pub fn scale(a: &CsrMatrix, s: f64) -> CsrMatrix {
    let mut out = a.clone();
    out.scale(s);
    out
}

/// Kronecker product `A ⊗ B`: the `(ia·rb + ib, ja·cb + jb)` entry is
/// `A[ia,ja] · B[ib,jb]`.
///
/// Assembled directly in CSR, in parallel over row chunks: output row
/// `ia·rb + ib` holds exactly `nnz(A, ia) · nnz(B, ib)` entries, so the
/// row pointers are computed exactly up front and each chunk of rows is
/// filled independently. Iterating `(ja, jb)` lexicographically emits
/// columns `ja·cb + jb` in strictly increasing order, so no sort is
/// needed — and the result is identical (bitwise) at any thread count.
pub fn kron(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let (an, bn) = (a.nrows(), b.nrows());
    let (ac, bc) = (a.ncols(), b.ncols());
    let nrows = an * bn;
    let ncols = ac * bc;
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    for ia in 0..an {
        let na = a.row(ia).0.len();
        for ib in 0..bn {
            let nb = b.row(ib).0.len();
            row_ptr.push(row_ptr.last().unwrap() + na * nb);
        }
    }
    let nnz = *row_ptr.last().unwrap();

    // Fill one row range's entries into its (exactly-sized) slices.
    let fill_rows = |rows: std::ops::Range<usize>, cols: &mut [usize], vals: &mut [f64]| {
        let mut k = 0;
        for r in rows {
            let (ca, va) = a.row(r / bn);
            let (cb, vb) = b.row(r % bn);
            for (&ja, &av) in ca.iter().zip(va.iter()) {
                for (&jb, &bv) in cb.iter().zip(vb.iter()) {
                    cols[k] = ja * bc + jb;
                    vals[k] = av * bv;
                    k += 1;
                }
            }
        }
        debug_assert_eq!(k, cols.len());
    };

    let mut col_idx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    if nnz < crate::PAR_SPMV_MIN_NNZ {
        fill_rows(0..nrows, &mut col_idx, &mut values);
    } else {
        // Contiguous row chunks; `row_ptr` gives each chunk's exact
        // destination span, so the chunks write disjoint subslices of
        // the final arrays in place — no concat pass, and the layout is
        // canonical by construction at any thread count.
        let chunk = nrows.div_ceil(64).max(1);
        let mut pieces = Vec::with_capacity(nrows.div_ceil(chunk));
        let (mut crest, mut vrest) = (col_idx.as_mut_slice(), values.as_mut_slice());
        for start in (0..nrows).step_by(chunk) {
            let rows = start..(start + chunk).min(nrows);
            let take = row_ptr[rows.end] - row_ptr[rows.start];
            let (c, cr) = std::mem::take(&mut crest).split_at_mut(take);
            let (v, vr) = std::mem::take(&mut vrest).split_at_mut(take);
            (crest, vrest) = (cr, vr);
            pieces.push((rows, c, v));
        }
        pieces.into_par_iter().for_each(|(rows, c, v)| fill_rows(rows, c, v));
    }
    CsrMatrix::from_raw(nrows, ncols, row_ptr, col_idx, values)
}

/// Symmetric tridiagonal Toeplitz matrix `tridiag(sub, diag, sup)` of
/// order `n`.
pub fn tridiag_toeplitz(n: usize, sub: f64, diag: f64, sup: f64) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, sub);
        }
        coo.push(i, i, diag);
        if i + 1 < n {
            coo.push(i, i + 1, sup);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_disjoint_and_overlapping() {
        let a = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 5.0);
        coo.push(0, 0, 3.0);
        let b = coo.to_csr();
        let c = add(&a, &b);
        assert_eq!(c.get(0, 0), 4.0);
        assert_eq!(c.get(0, 1), 5.0);
        assert_eq!(c.get(1, 1), 2.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn scale_copies() {
        let a = CsrMatrix::identity(3);
        let b = scale(&a, 2.5);
        assert_eq!(b.get(1, 1), 2.5);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn kron_identity_is_identity() {
        let i2 = CsrMatrix::identity(2);
        let i3 = CsrMatrix::identity(3);
        let k = kron(&i2, &i3);
        assert_eq!(k, CsrMatrix::identity(6));
    }

    #[test]
    fn kron_known_values() {
        // [1 2] ⊗ [0 1] = [[0 1 0 2],[1 0 2 0]] pattern with products.
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        let a = coo.to_csr();
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 3.0);
        let b = coo.to_csr();
        let k = kron(&a, &b);
        assert_eq!(k.nrows(), 1);
        assert_eq!(k.ncols(), 4);
        assert_eq!(k.get(0, 1), 3.0);
        assert_eq!(k.get(0, 3), 6.0);
        assert_eq!(k.nnz(), 2);
    }

    #[test]
    fn kron_dimensions() {
        let a = tridiag_toeplitz(3, -1.0, 2.0, -1.0);
        let b = tridiag_toeplitz(4, 0.0, 1.0, 5.0);
        let k = kron(&a, &b);
        assert_eq!(k.nrows(), 12);
        assert_eq!(k.ncols(), 12);
    }

    #[test]
    fn tridiag_structure() {
        let t = tridiag_toeplitz(4, -1.0, 2.0, -1.0);
        assert_eq!(t.nnz(), 10);
        assert_eq!(t.get(0, 0), 2.0);
        assert_eq!(t.get(1, 0), -1.0);
        assert_eq!(t.get(2, 3), -1.0);
        assert!(t.is_numerically_symmetric(0.0));
    }

    /// The pre-refactor reference: build through COO and sort.
    fn kron_via_coo(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
        let nrows = a.nrows() * b.nrows();
        let ncols = a.ncols() * b.ncols();
        let mut coo = CooMatrix::with_capacity(nrows, ncols, a.nnz() * b.nnz());
        for ia in 0..a.nrows() {
            let (ca, va) = a.row(ia);
            for (ja, &av) in ca.iter().zip(va.iter()) {
                for ib in 0..b.nrows() {
                    let (cb, vb) = b.row(ib);
                    for (jb, &bv) in cb.iter().zip(vb.iter()) {
                        coo.push(ia * b.nrows() + ib, *ja * b.ncols() + jb, av * bv);
                    }
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn direct_assembly_matches_coo_reference_including_parallel_path() {
        // Large enough that the row-chunk parallel branch runs:
        // tridiag(100) ⊗ tridiag(100) has (3·100−2)² = 88804 entries,
        // well past PAR_KRON_MIN_NNZ.
        let t = tridiag_toeplitz(100, -1.0, 2.0, -1.0);
        let s = tridiag_toeplitz(100, 0.5, 1.0, -0.25);
        let direct = kron(&t, &s);
        let reference = kron_via_coo(&t, &s);
        assert_eq!(direct, reference);
        // And the tiny/serial branch.
        let a = tridiag_toeplitz(3, -1.0, 2.0, -1.0);
        let b = tridiag_toeplitz(4, 0.0, 1.0, 5.0);
        assert_eq!(kron(&a, &b), kron_via_coo(&a, &b));
    }

    #[test]
    fn kron_with_empty_factor() {
        let a = tridiag_toeplitz(3, -1.0, 2.0, -1.0);
        let empty = CsrMatrix::from_raw(0, 0, vec![0], vec![], vec![]);
        let k = kron(&a, &empty);
        assert_eq!(k.nrows(), 0);
        assert_eq!(k.nnz(), 0);
    }

    #[test]
    fn kron_spmv_matches_dense_identity_expansion() {
        // (I ⊗ T) x applies T to contiguous blocks.
        let t = tridiag_toeplitz(3, -1.0, 2.0, -1.0);
        let i2 = CsrMatrix::identity(2);
        let k = kron(&i2, &t);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y = [0.0; 6];
        k.spmv(&x, &mut y);
        let mut yb = [0.0; 3];
        t.spmv(&x[0..3], &mut yb);
        assert_eq!(&y[0..3], &yb);
        t.spmv(&x[3..6], &mut yb);
        assert_eq!(&y[3..6], &yb);
    }
}

//! Sparse linear-algebra substrate for the SDC-GMRES reproduction.
//!
//! The paper evaluates GMRES on large sparse systems (a 2-D Poisson matrix
//! and a circuit-simulation matrix). This crate provides, from scratch:
//!
//! * Triplet ([`coo`]), compressed-sparse-row ([`csr`]) and
//!   compressed-sparse-column ([`csc`]) storage with validated construction.
//! * A second SpMV engine ([`sell`]): SELL-C-σ sliced-ELLPACK storage
//!   with chunk-parallel kernels, plus a format abstraction and
//!   row-length-variance `auto` heuristic ([`format`](mod@format))
//!   choosing between the engines per matrix.
//! * Serial and thread-parallel sparse matrix–vector products. Row
//!   partitioning is disjoint, so parallel SpMV is bitwise identical to
//!   serial SpMV — and the SELL kernels preserve each row's accumulation
//!   order exactly, so the *format* is bitwise-invisible too;
//!   fault-injection campaigns stay reproducible either way.
//! * Sparse matrix algebra ([`ops`]): addition, scaling, Kronecker
//!   products (used to assemble Poisson operators the same way Matlab's
//!   `gallery('poisson',n)` does), identity/diagonal constructors.
//! * Matrix Market I/O ([`io`]) so the real `mult_dcop_03.mtx` can be
//!   dropped into the experiments when available.
//! * Structural analysis ([`structure`]): structural rank via
//!   Hopcroft–Karp maximum bipartite matching, pattern-symmetry metrics,
//!   bandwidth — everything Table I reports about a matrix's structure.
//! * Norm estimation ([`norm_est`]): exact Frobenius/1/∞ norms and a
//!   power-iteration estimate of `‖A‖₂` — the paper's two "potential fault
//!   detectors" (Table I).
//! * A matrix gallery ([`gallery`]): Poisson operators in 1/2/3
//!   dimensions, nonsymmetric convection–diffusion, Toeplitz/Grcar test
//!   matrices, seeded random sparse matrices, and the synthetic
//!   circuit-simulation generator that stands in for `mult_dcop_03`
//!   (see DESIGN.md §3 for the substitution rationale).

// Index-based loops intentionally mirror the CSR/CSC index arithmetic of the
// kernels (row pointers, column indices); iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod checksum;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod format;
pub mod gallery;
pub mod ilu;
pub mod io;
pub mod norm_est;
pub mod ops;
pub mod perm;
pub mod sell;
pub mod simd;
pub mod structure;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use format::{auto_format, FormatMatrix, SparseFormat};
pub use ilu::{Ilu0Error, Ilu0Factor};
pub use sell::SellMatrix;
pub use simd::{KernelTier, SimdMode};

/// Below this many nonzeros the parallel kernels (`par_spmv` in either
/// format, `kron` assembly) stay serial: piece handoff on the pool would
/// cost more than the arithmetic saves. Shared by [`csr`], [`sell`] and
/// [`ops`] so the formats agree on when "parallel" begins.
pub const PAR_SPMV_MIN_NNZ: usize = 1 << 14;

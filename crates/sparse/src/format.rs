//! Storage-format selection: CSR vs SELL-C-σ, and the `auto` heuristic.
//!
//! Both engines compute bitwise-identical SpMV results (see [`crate::sell`]),
//! so the format is a pure performance knob: campaigns, benches and
//! binaries can switch it freely without perturbing a single artifact
//! byte. [`SparseFormat`] is the spec/CLI-level choice (`csr`, `sell`,
//! `auto`), [`FormatMatrix`] a matrix committed to one engine, and
//! [`auto_format`] the heuristic that resolves `auto` from the
//! row-length distribution.

use crate::csr::CsrMatrix;
use crate::sell::{self, SellMatrix};
use crate::simd::KernelTier;

/// Kernel/engine selection for one matrix. Deterministic channel: the
/// choice is a pure function of the matrix, the requested format and
/// the kernel tier — never of the host ISA (`auto` resolution feeds the
/// lane width in, but the det-traced campaigns all sit below
/// [`AUTO_MIN_NNZ`] or far from the fill boundary, and the golden-gated
/// CI legs pin that the emitted bytes agree across `SDC_SIMD` modes).
static EV_FORMAT: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "spmv.format", channel: sdc_obs::Channel::Det };

/// Emits the deterministic `spmv.format` selection event. Public so
/// tier-aware callers that commit storage themselves can report through
/// the same callsite as [`FormatMatrix`].
pub fn trace_selection(
    requested: SparseFormat,
    chosen: SparseFormat,
    tier: KernelTier,
    nrows: usize,
    nnz: usize,
) {
    if sdc_obs::enabled() {
        sdc_obs::Event::new(&EV_FORMAT)
            .str("requested", requested.as_str())
            .str("chosen", chosen.as_str())
            .str("tier", tier.as_str())
            .u64("rows", nrows as u64)
            .u64("nnz", nnz as u64)
            .emit();
    }
}

/// The storage-format axis exposed to specs and CLIs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SparseFormat {
    /// Compressed sparse row (the workspace's original engine).
    Csr,
    /// SELL-C-σ with the default `C`/σ.
    Sell,
    /// Decide per matrix via [`auto_format`].
    #[default]
    Auto,
}

impl SparseFormat {
    /// The spec/CLI string for this format.
    pub fn as_str(&self) -> &'static str {
        match self {
            SparseFormat::Csr => "csr",
            SparseFormat::Sell => "sell",
            SparseFormat::Auto => "auto",
        }
    }

    /// Parses a spec/CLI string (`csr`, `sell` or `auto`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "csr" => Ok(SparseFormat::Csr),
            "sell" => Ok(SparseFormat::Sell),
            "auto" => Ok(SparseFormat::Auto),
            other => Err(format!("unknown sparse format '{other}' (expected csr|sell|auto)")),
        }
    }

    /// Resolves `Auto` against a concrete matrix; `Csr` and `Sell` map
    /// to themselves.
    pub fn resolve(&self, a: &CsrMatrix) -> SparseFormat {
        match self {
            SparseFormat::Auto => auto_format(a),
            concrete => *concrete,
        }
    }
}

impl std::fmt::Display for SparseFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// With scalar kernels, SELL fill ratios above this keep the matrix in
/// CSR: the padded slabs would stream >25% dead data per apply. Wider
/// kernels tolerate proportionally more padding — see
/// [`auto_thresholds`].
pub const AUTO_MAX_FILL: f64 = 1.25;

/// With scalar kernels, matrices under this many nonzeros stay in CSR:
/// their applies are too cheap for layout to matter. Equal to the
/// parallel-kernel cutoff so the scalar heuristic and the pool agree on
/// when SpMV cost becomes interesting.
pub const AUTO_MIN_NNZ: usize = crate::PAR_SPMV_MIN_NNZ;

/// The `auto` decision thresholds `(min_nnz, max_fill)` for a kernel
/// of `lanes` independent SIMD lanes. SELL eligibility widens with the
/// vector width: the lane-parallel kernel pays off on smaller matrices
/// (`min_nnz` shrinks by the lane count) and amortizes more padding
/// (the dead-data allowance above 1.0 grows by the lane count — at
/// AVX2's 4 lanes the fill gate is 2.0), because padding costs scale
/// with slots streamed while the arithmetic speedup scales with lanes.
pub fn auto_thresholds(lanes: usize) -> (usize, f64) {
    let lanes = lanes.max(1);
    (AUTO_MIN_NNZ / lanes, 1.0 + (AUTO_MAX_FILL - 1.0) * lanes as f64)
}

/// Picks CSR or SELL (never `Auto`) for a matrix from its row-length
/// distribution.
///
/// The decision variable is the SELL-C-σ *fill ratio*
/// ([`sell::fill_ratio_of`]): stored slots (padding included) per matrix
/// entry. It is the operational form of within-window row-length
/// variance — uniform rows give exactly 1.0, ragged rows inflate it —
/// so low-variance matrices (stencils, circulants) go to SELL and
/// high-variance ones (circuit MNA with dense supply rails) stay in
/// CSR. Both cutoffs are SIMD-aware ([`auto_thresholds`]): the wider
/// the dispatched kernel, the earlier SELL pays.
pub fn auto_format(a: &CsrMatrix) -> SparseFormat {
    let (min_nnz, max_fill) = auto_thresholds(crate::simd::active().lanes());
    if a.nnz() < min_nnz {
        return SparseFormat::Csr;
    }
    if sell::fill_ratio_of(a, sell::DEFAULT_CHUNK, sell::DEFAULT_SIGMA) <= max_fill {
        SparseFormat::Sell
    } else {
        SparseFormat::Csr
    }
}

/// A sparse matrix committed to one storage engine.
///
/// `LinearOperator` wiring lives in `sdc_gmres::operator`; this type
/// only owns the storage and dispatches the kernels.
#[derive(Clone, Debug, PartialEq)]
pub enum FormatMatrix {
    /// CSR storage.
    Csr(CsrMatrix),
    /// SELL-C-σ storage.
    Sell(SellMatrix),
}

impl FormatMatrix {
    /// Commits `a` to `format` (resolving `Auto`), consuming the CSR.
    pub fn from_csr(a: CsrMatrix, format: SparseFormat) -> Self {
        let chosen = format.resolve(&a);
        trace_selection(format, chosen, KernelTier::Strict, a.nrows(), a.nnz());
        match chosen {
            SparseFormat::Sell => FormatMatrix::Sell(SellMatrix::from_csr(&a)),
            _ => FormatMatrix::Csr(a),
        }
    }

    /// Like [`FormatMatrix::from_csr`] but borrowing (clones CSR storage
    /// when the choice is CSR).
    pub fn convert(a: &CsrMatrix, format: SparseFormat) -> Self {
        let chosen = format.resolve(a);
        trace_selection(format, chosen, KernelTier::Strict, a.nrows(), a.nnz());
        match chosen {
            SparseFormat::Sell => FormatMatrix::Sell(SellMatrix::from_csr(a)),
            _ => FormatMatrix::Csr(a.clone()),
        }
    }

    /// The engine this matrix is committed to (`Csr` or `Sell`).
    pub fn format(&self) -> SparseFormat {
        match self {
            FormatMatrix::Csr(_) => SparseFormat::Csr,
            FormatMatrix::Sell(_) => SparseFormat::Sell,
        }
    }

    /// Lossless CSR view (clones for the CSR variant).
    pub fn to_csr(&self) -> CsrMatrix {
        match self {
            FormatMatrix::Csr(a) => a.clone(),
            FormatMatrix::Sell(s) => s.to_csr(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match self {
            FormatMatrix::Csr(a) => a.nrows(),
            FormatMatrix::Sell(s) => s.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            FormatMatrix::Csr(a) => a.ncols(),
            FormatMatrix::Sell(s) => s.ncols(),
        }
    }

    /// Number of stored matrix entries (SELL padding excluded).
    pub fn nnz(&self) -> usize {
        match self {
            FormatMatrix::Csr(a) => a.nnz(),
            FormatMatrix::Sell(s) => s.nnz(),
        }
    }

    /// Serial SpMV; bitwise identical across the two variants.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            FormatMatrix::Csr(a) => a.spmv(x, y),
            FormatMatrix::Sell(s) => s.spmv(x, y),
        }
    }

    /// Parallel SpMV; bitwise identical across variants and thread counts.
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            FormatMatrix::Csr(a) => a.par_spmv(x, y),
            FormatMatrix::Sell(s) => s.par_spmv(x, y),
        }
    }

    /// Raw value storage (the fault-injection surface; for SELL this
    /// includes padding slots).
    pub fn values(&self) -> &[f64] {
        match self {
            FormatMatrix::Csr(a) => a.values(),
            FormatMatrix::Sell(s) => s.values(),
        }
    }

    /// Mutable value storage for fault campaigns.
    pub fn values_mut(&mut self) -> &mut [f64] {
        match self {
            FormatMatrix::Csr(a) => a.values_mut(),
            FormatMatrix::Sell(s) => s.values_mut(),
        }
    }

    /// The flat value-storage slot of logical entry `k` of row `r`
    /// (CSR: `row_ptr[r] + k`; SELL: [`SellMatrix::entry_slot`]).
    pub fn entry_slot(&self, r: usize, k: usize) -> usize {
        match self {
            FormatMatrix::Csr(a) => {
                assert!(k < a.row(r).0.len(), "entry_slot: row {r} has too few entries");
                a.row_ptr()[r] + k
            }
            FormatMatrix::Sell(s) => s.entry_slot(r, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn format_strings_round_trip() {
        for f in [SparseFormat::Csr, SparseFormat::Sell, SparseFormat::Auto] {
            assert_eq!(SparseFormat::parse(f.as_str()).unwrap(), f);
            assert_eq!(format!("{f}"), f.as_str());
        }
        assert!(SparseFormat::parse("ellpack").is_err());
        assert_eq!(SparseFormat::default(), SparseFormat::Auto);
    }

    #[test]
    fn auto_picks_sell_for_uniform_large_and_csr_for_small() {
        // Both verdicts hold at every lane width (nnz and fill ratio sit
        // far from either mode's thresholds), so no mode pin is needed.
        // Poisson 2-D at n = 10 000: 5-point stencil, near-uniform rows.
        let big = gallery::poisson2d(100);
        assert_eq!(auto_format(&big), SparseFormat::Sell);
        // Tiny matrix: stay CSR regardless of shape.
        let small = gallery::poisson2d(5);
        assert_eq!(auto_format(&small), SparseFormat::Csr);
    }

    #[test]
    fn auto_rejects_ragged_rows() {
        // One dense row in an otherwise diagonal matrix: within the
        // first σ-window the dense row forces a full-width chunk, and
        // the matrix is small enough that this dominates the fill ratio.
        let n = 20_000;
        let mut coo = crate::CooMatrix::with_capacity(n, n, 2 * n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for j in 0..n {
            if j != 0 {
                coo.push(0, j, 0.5);
            }
        }
        let a = coo.to_csr();
        let ratio =
            crate::sell::fill_ratio_of(&a, crate::sell::DEFAULT_CHUNK, crate::sell::DEFAULT_SIGMA);
        // ~4.5: beyond even the widest lane-adjusted gate, so the CSR
        // verdict is ISA-independent.
        let (_, widest_fill) = auto_thresholds(crate::simd::Isa::Avx2.lanes());
        assert!(ratio > widest_fill, "fill ratio {ratio} should exceed the gate {widest_fill}");
        assert_eq!(auto_format(&a), SparseFormat::Csr);
    }

    #[test]
    fn auto_min_nnz_boundary_tracks_simd_lanes() {
        use crate::simd::{set_mode, SimdMode};
        let _guard = crate::simd::test_mode_guard();
        // Uniform single-entry rows: fill ratio exactly 1.0, so the nnz
        // cutoff is the only decision variable.
        let diag = |n: usize| CsrMatrix::from_diagonal(&vec![1.0; n]);
        set_mode(SimdMode::Scalar).unwrap();
        let (min_nnz, _) = auto_thresholds(1);
        assert_eq!(min_nnz, AUTO_MIN_NNZ);
        assert_eq!(auto_format(&diag(AUTO_MIN_NNZ - 1)), SparseFormat::Csr);
        assert_eq!(auto_format(&diag(AUTO_MIN_NNZ)), SparseFormat::Sell);
        if set_mode(SimdMode::Avx2).is_ok() {
            // Four lanes: SELL pays off at a quarter of the scalar size.
            let (min_nnz, max_fill) = auto_thresholds(4);
            assert_eq!(min_nnz, AUTO_MIN_NNZ / 4);
            assert!((max_fill - 2.0).abs() < 1e-12);
            assert_eq!(auto_format(&diag(min_nnz - 1)), SparseFormat::Csr);
            assert_eq!(auto_format(&diag(min_nnz)), SparseFormat::Sell);
        }
    }

    #[test]
    fn format_matrix_dispatch_is_bitwise_consistent() {
        let a = gallery::poisson2d(40);
        let csr = FormatMatrix::convert(&a, SparseFormat::Csr);
        let sell = FormatMatrix::convert(&a, SparseFormat::Sell);
        assert_eq!(csr.format(), SparseFormat::Csr);
        assert_eq!(sell.format(), SparseFormat::Sell);
        assert_eq!(csr.nnz(), sell.nnz());
        assert_eq!(sell.to_csr(), a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        csr.par_spmv(&x, &mut y1);
        sell.par_spmv(&x, &mut y2);
        for i in 0..a.nrows() {
            assert_eq!(y1[i].to_bits(), y2[i].to_bits());
        }
    }

    #[test]
    fn entry_slot_agrees_with_values() {
        let a = gallery::sprand(30, 30, 0.15, 11);
        for fmt in [SparseFormat::Csr, SparseFormat::Sell] {
            let m = FormatMatrix::convert(&a, fmt);
            for r in 0..a.nrows() {
                let (_, vals) = a.row(r);
                for (k, &v) in vals.iter().enumerate() {
                    assert_eq!(m.values()[m.entry_slot(r, k)], v);
                }
            }
        }
    }

    #[test]
    fn format_selection_emits_a_deterministic_event() {
        let sink = std::sync::Arc::new(sdc_obs::trace::TraceSink::new());
        sdc_obs::with_local(sink.clone(), || {
            let _ = FormatMatrix::convert(&gallery::poisson2d(100), SparseFormat::Auto);
        });
        let det = sink.det_bytes();
        assert!(det.contains("\"ev\":\"spmv.format\""), "{det}");
        assert!(det.contains("\"requested\":\"auto\""), "{det}");
        assert!(det.contains("\"chosen\":\"sell\""), "{det}");
        assert!(det.contains("\"tier\":\"strict\""), "{det}");
        assert!(det.contains("\"rows\":10000"), "{det}");
        assert!(sink.timing_bytes().is_empty());
    }

    #[test]
    fn auto_resolution_never_returns_auto() {
        for a in [gallery::poisson2d(100), gallery::poisson2d(5)] {
            assert_ne!(SparseFormat::Auto.resolve(&a), SparseFormat::Auto);
            assert_eq!(SparseFormat::Csr.resolve(&a), SparseFormat::Csr);
            assert_eq!(SparseFormat::Sell.resolve(&a), SparseFormat::Sell);
        }
    }
}

//! ILU(0) factorization on CSR storage.
//!
//! Incomplete LU with zero fill-in: Gaussian elimination restricted to
//! the sparsity pattern of `A` (IKJ variant, LU-in-place). The factors
//! live here in the sparse substrate because they *are* sparse storage:
//! the combined `L`/`U` values sit on `A`'s exact pattern, and — like
//! [`crate::FormatMatrix`] — that flat value array is a fault-injection
//! surface. `sdc_gmres::ilu::Ilu0` wraps this type as a
//! `Preconditioner`; fault campaigns corrupt stored factor slots through
//! [`Ilu0Factor::values_mut`] exactly as they corrupt matrix values.
//!
//! The triangular solves are strictly sequential sweeps (forward
//! substitution row 0..n, backward n..0) with a fixed per-row
//! accumulation order, so every apply is bitwise identical at any thread
//! count by construction.

use crate::csr::CsrMatrix;

/// Error from the ILU(0) factorization.
#[derive(Clone, Debug, PartialEq)]
pub enum Ilu0Error {
    /// The matrix is not square.
    NotSquare,
    /// A zero (or non-finite) pivot appeared at the given row — either
    /// the structural diagonal is missing or elimination annihilated it.
    BadPivot {
        /// Row index of the offending pivot.
        row: usize,
    },
}

impl std::fmt::Display for Ilu0Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ilu0Error::NotSquare => write!(f, "ILU(0): matrix must be square"),
            Ilu0Error::BadPivot { row } => write!(f, "ILU(0): zero/non-finite pivot in row {row}"),
        }
    }
}

impl std::error::Error for Ilu0Error {}

/// The ILU(0) factorization `A ≈ L·U` with unit-diagonal `L`, stored on
/// the pattern of `A`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ilu0Factor {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Combined factors on A's pattern: strictly-lower part holds L
    /// (unit diagonal implicit), diagonal + upper part holds U.
    values: Vec<f64>,
    /// Position of the diagonal entry within each row's slice.
    diag_pos: Vec<usize>,
}

impl Ilu0Factor {
    /// Computes ILU(0) of `a` (IKJ elimination restricted to the
    /// pattern; deterministic — the elimination order is fixed by the
    /// storage order).
    pub fn factor(a: &CsrMatrix) -> Result<Self, Ilu0Error> {
        if a.nrows() != a.ncols() {
            return Err(Ilu0Error::NotSquare);
        }
        let n = a.nrows();
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        let mut values = a.values().to_vec();

        // Locate diagonals; a missing structural diagonal is a bad pivot.
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                if col_idx[k] == i {
                    diag_pos[i] = k;
                    break;
                }
            }
            if diag_pos[i] == usize::MAX {
                return Err(Ilu0Error::BadPivot { row: i });
            }
        }

        // IKJ Gaussian elimination restricted to the pattern.
        // Work array: column -> position in current row (or MAX).
        let mut pos_of_col = vec![usize::MAX; n];
        for i in 0..n {
            let row_span = row_ptr[i]..row_ptr[i + 1];
            for k in row_span.clone() {
                pos_of_col[col_idx[k]] = k;
            }
            // Eliminate using previous rows k (< i) present in row i.
            for kk in row_span.clone() {
                let k = col_idx[kk];
                if k >= i {
                    break;
                }
                let pivot = values[diag_pos[k]];
                if pivot == 0.0 || !pivot.is_finite() {
                    return Err(Ilu0Error::BadPivot { row: k });
                }
                let lik = values[kk] / pivot;
                values[kk] = lik;
                // Subtract lik * U(k, j) for j > k where (i, j) exists.
                for uj in diag_pos[k] + 1..row_ptr[k + 1] {
                    let j = col_idx[uj];
                    let p = pos_of_col[j];
                    if p != usize::MAX {
                        values[p] -= lik * values[uj];
                    }
                }
            }
            let di = values[diag_pos[i]];
            if di == 0.0 || !di.is_finite() {
                return Err(Ilu0Error::BadPivot { row: i });
            }
            for k in row_span {
                pos_of_col[col_idx[k]] = usize::MAX;
            }
        }
        Ok(Self { n, row_ptr, col_idx, values, diag_pos })
    }

    /// Applies `z = U⁻¹ L⁻¹ q` (the preconditioner solve). Two
    /// sequential triangular sweeps; bitwise thread-count-independent.
    pub fn solve(&self, q: &[f64], z: &mut [f64]) {
        assert_eq!(q.len(), self.n, "ilu0 solve: rhs length");
        assert_eq!(z.len(), self.n, "ilu0 solve: output length");
        // Forward: L y = q (unit diagonal).
        for i in 0..self.n {
            let mut s = q[i];
            for k in self.row_ptr[i]..self.diag_pos[i] {
                s -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = s;
        }
        // Backward: U z = y.
        for i in (0..self.n).rev() {
            let mut s = z[i];
            for k in self.diag_pos[i] + 1..self.row_ptr[i + 1] {
                s -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = s / self.values[self.diag_pos[i]];
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (= nnz of the source pattern).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw stored-factor values — the fault-injection surface for the
    /// opaque-preconditioner model (slot `k` ↔ 1-based fault site
    /// `loop_index = k + 1`, mirroring the `Kernel::MatrixValue`
    /// convention).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored-factor values for fault campaigns.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn tridiagonal_factorization_is_exact() {
        // No fill-in on a tridiagonal pattern: ILU(0) = full LU.
        let a = gallery::poisson1d(40);
        let f = Ilu0Factor::factor(&a).unwrap();
        let ones = vec![1.0; 40];
        let mut b = vec![0.0; 40];
        a.spmv(&ones, &mut b);
        let mut x = vec![0.0; 40];
        f.solve(&b, &mut x);
        for (i, &v) in x.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-10, "x[{i}] = {v}");
        }
        assert_eq!(f.order(), 40);
        assert_eq!(f.nnz(), a.nnz());
    }

    #[test]
    fn missing_diagonal_is_bad_pivot() {
        let mut coo = crate::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        assert_eq!(Ilu0Factor::factor(&coo.to_csr()).unwrap_err(), Ilu0Error::BadPivot { row: 0 });
    }

    #[test]
    fn rectangular_is_rejected() {
        let mut coo = crate::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        assert_eq!(Ilu0Factor::factor(&coo.to_csr()).unwrap_err(), Ilu0Error::NotSquare);
    }

    #[test]
    fn stored_values_expose_the_fault_surface() {
        let a = gallery::poisson2d(6);
        let mut f = Ilu0Factor::factor(&a).unwrap();
        let clean = f.values().to_vec();
        f.values_mut()[0] *= 1e3;
        assert_ne!(f.values()[0], clean[0]);
        assert_eq!(f.values().len(), a.nnz());
    }
}

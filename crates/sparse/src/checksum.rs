//! Column-checksum verification for SpMV (Huang–Abraham ABFT).
//!
//! The paper's related work (Shantharam et al., Sloan et al. — refs. 12 and 14 of the paper)
//! protects sparse matrix–vector multiply with algorithm-based fault
//! tolerance: since `eᵀ(Ax) = (Aᵀe)ᵀx`, precomputing the column-sum
//! vector `w = Aᵀe` lets every product be verified with two dot products.
//! This module provides that check as a substrate so the experiments can
//! compare it head-to-head with the paper's Hessenberg-bound detector:
//! the checksum catches *any* sufficiently large corruption of the SpMV
//! output (not just theory-violating values), at the price of `O(n)`
//! extra work per product and a rounding-noise detection floor.

use crate::csr::CsrMatrix;
use sdc_dense::vector;

/// Result of a checksum verification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChecksumOutcome {
    /// `|eᵀy − wᵀx|` within the rounding-noise threshold.
    Pass,
    /// The identity failed beyond the threshold: the product (or the
    /// inputs) were corrupted.
    Violation {
        /// `eᵀ y` (sum of the computed product).
        lhs: f64,
        /// `wᵀ x` (checksum prediction).
        rhs: f64,
        /// The threshold that was exceeded.
        threshold: f64,
    },
}

impl ChecksumOutcome {
    /// True if the check passed.
    pub fn passed(&self) -> bool {
        matches!(self, ChecksumOutcome::Pass)
    }
}

/// Precomputed column checksums of a fixed matrix.
#[derive(Clone, Debug)]
pub struct ColumnChecksum {
    colsum: Vec<f64>,
    abs_colsum: Vec<f64>,
    tol_factor: f64,
}

impl ColumnChecksum {
    /// Builds checksums for `a`. `tol_factor` scales the rounding-noise
    /// threshold; `1e-12` is a safe default for `f64` at the problem
    /// sizes of the paper (the bound on the check's own rounding error is
    /// `O(n·ε)` relative to `Σᵢⱼ |aᵢⱼ||xⱼ|`).
    pub fn new(a: &CsrMatrix, tol_factor: f64) -> Self {
        let mut colsum = vec![0.0; a.ncols()];
        let mut abs_colsum = vec![0.0; a.ncols()];
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                colsum[*c] += v;
                abs_colsum[*c] += v.abs();
            }
        }
        Self { colsum, abs_colsum, tol_factor }
    }

    /// Verifies a computed product `y = A x`.
    pub fn verify(&self, x: &[f64], y: &[f64]) -> ChecksumOutcome {
        assert_eq!(x.len(), self.colsum.len(), "checksum verify: x length");
        let lhs = vector::pairwise_sum(y);
        let rhs = vector::dot(&self.colsum, x);
        // Scale-aware threshold: the natural magnitude of the sums is
        // Σ |a_ij||x_j|, against which rounding noise accumulates.
        let mut scale = 0.0;
        for (w, xi) in self.abs_colsum.iter().zip(x.iter()) {
            scale += w * xi.abs();
        }
        let threshold = self.tol_factor * scale.max(f64::MIN_POSITIVE);
        let gap = (lhs - rhs).abs();
        // NaN anywhere makes the comparison false -> flagged.
        if gap <= threshold {
            ChecksumOutcome::Pass
        } else {
            ChecksumOutcome::Violation { lhs, rhs, threshold }
        }
    }

    /// The smallest absolute corruption of a single `y` element this
    /// check can detect for the given `x` (its noise floor).
    pub fn detection_floor(&self, x: &[f64]) -> f64 {
        let mut scale = 0.0;
        for (w, xi) in self.abs_colsum.iter().zip(x.iter()) {
            scale += w * xi.abs();
        }
        self.tol_factor * scale.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    fn setup() -> (CsrMatrix, ColumnChecksum, Vec<f64>, Vec<f64>) {
        let a = gallery::poisson2d(20);
        let cs = ColumnChecksum::new(&a, 1e-12);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y);
        (a, cs, x, y)
    }

    #[test]
    fn fault_free_product_passes() {
        let (_, cs, x, y) = setup();
        assert!(cs.verify(&x, &y).passed());
    }

    #[test]
    fn fault_free_many_vectors_no_false_positives() {
        let a = gallery::convection_diffusion_2d(15, 2.0, -1.0);
        let cs = ColumnChecksum::new(&a, 1e-12);
        for k in 0..50 {
            let x: Vec<f64> =
                (0..a.ncols()).map(|i| ((i * (k + 1)) as f64 * 0.13).sin() * 10.0).collect();
            let mut y = vec![0.0; a.nrows()];
            a.spmv(&x, &mut y);
            assert!(cs.verify(&x, &y).passed(), "false positive at k={k}");
        }
    }

    #[test]
    fn large_corruption_detected() {
        let (_, cs, x, mut y) = setup();
        y[137] += 1.0;
        match cs.verify(&x, &y) {
            ChecksumOutcome::Violation { threshold, .. } => {
                assert!(threshold < 1.0);
            }
            ChecksumOutcome::Pass => panic!("corruption of 1.0 must be detected"),
        }
    }

    #[test]
    fn detection_floor_is_honest() {
        // A corruption just above the floor is caught; far below it is
        // not (it is indistinguishable from rounding).
        let (_, cs, x, y) = setup();
        let floor = cs.detection_floor(&x);
        let mut yc = y.clone();
        yc[10] += 10.0 * floor;
        assert!(!cs.verify(&x, &yc).passed(), "10x floor must be detected");
        let mut yc = y.clone();
        yc[10] += 0.001 * floor;
        assert!(cs.verify(&x, &yc).passed(), "far sub-floor must pass");
    }

    #[test]
    fn nan_and_inf_detected() {
        let (_, cs, x, y) = setup();
        let mut yc = y.clone();
        yc[0] = f64::NAN;
        assert!(!cs.verify(&x, &yc).passed());
        let mut yc = y.clone();
        yc[0] = f64::INFINITY;
        assert!(!cs.verify(&x, &yc).passed());
    }

    #[test]
    fn scaled_fault_detected_when_significant() {
        // The paper's class-1 scaling on one element of y.
        let (_, cs, x, mut y) = setup();
        // Find a nonzero element.
        let idx = y.iter().position(|v| v.abs() > 1e-3).unwrap();
        y[idx] *= 1e150;
        assert!(!cs.verify(&x, &y).passed());
    }

    #[test]
    fn compensating_corruptions_are_a_known_blind_spot() {
        // Two equal-and-opposite corruptions cancel in the column sum —
        // the single-checksum scheme cannot see them (documented
        // limitation of sum-based ABFT; the paper's bound detector has an
        // entirely different blind spot).
        let (_, cs, x, mut y) = setup();
        y[5] += 7.0;
        y[200] -= 7.0;
        assert!(cs.verify(&x, &y).passed());
    }
}

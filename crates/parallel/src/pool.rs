//! The global work pool: plain `std::thread` workers pulling pieces of
//! submitted jobs from a shared queue.
//!
//! Scheduling model: a job is a closure over a *piece index* plus a
//! piece count. Workers (and the submitting thread itself) claim piece
//! indices with an atomic counter, so load balancing is dynamic — a
//! thread that finishes its piece early steals the next unclaimed one —
//! while the *decomposition into pieces* stays fixed. Callers that need
//! bitwise-reproducible results therefore only have to make each piece's
//! result independent of the others (disjoint output slots, partials
//! combined in piece order); see [`crate::reduce`] for the canonical
//! floating-point reduction built on this rule.
//!
//! Sizing: the worker count is `--threads`/[`set_threads`] when given,
//! else the `SDC_THREADS` environment variable, else
//! `std::thread::available_parallelism()`. Workers are spawned lazily on
//! first use and grow on demand when the setting is raised mid-process
//! (tests exercise 1/2/8 threads in one binary). A nested submission
//! from inside a worker runs inline on that worker — parallel kernels
//! inside parallel campaign units degrade gracefully instead of
//! deadlocking the pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One parallel region, submit → drain (timing channel: durations and
/// piece distribution are scheduling accidents, never byte-diffed).
static EV_RUN: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "pool.run", channel: sdc_obs::Channel::Timing };
/// One participant's share of a region: how many pieces it claimed.
/// Claims beyond the submitter's are the pool's work-stealing in action.
static EV_WORKER: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "pool.worker", channel: sdc_obs::Channel::Timing };

/// Hard cap on the thread setting; oversubscription beyond this is
/// certainly a configuration error.
const MAX_THREADS: usize = 1024;

/// Explicit override from [`set_threads`]; 0 = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for every subsequent parallel
/// region (`n = 0` clears the override, falling back to `SDC_THREADS`
/// or the hardware default). Takes effect immediately: the pool grows
/// on demand, and a setting of 1 makes every region run inline.
///
/// Precedence: `set_threads` (i.e. `--threads`) > `SDC_THREADS` >
/// `available_parallelism()`.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("SDC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of threads parallel regions currently target (including
/// the submitting thread itself).
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n.min(MAX_THREADS);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True on threads currently executing pool work (workers, and any
/// thread inside a [`run_pieces`] region). Nested submissions from such
/// threads run inline.
pub fn is_pool_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// One submitted parallel region.
struct Job {
    /// Borrowed from the submitting stack frame. Safety: the submitter
    /// blocks in [`run_pieces`] until `completed == pieces`, and a piece
    /// is only claimed (hence the pointer only dereferenced) before that
    /// point, so the closure outlives every use.
    body: *const (dyn Fn(usize) + Sync),
    pieces: usize,
    /// Next unclaimed piece index (may grow past `pieces`).
    next: AtomicUsize,
    /// Pieces fully executed.
    completed: AtomicUsize,
    /// How many *additional* workers may still join (the submitter is
    /// not counted). Lets a lowered `set_threads` constrain a job even
    /// when more workers were spawned earlier in the process.
    worker_budget: AtomicIsize,
    panicked: AtomicBool,
    /// The first panic's payload, re-raised verbatim by the submitter so
    /// assertion messages and locations survive the thread hop.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `body` is only dereferenced under the claim/completion
// protocol documented on the field; all other state is atomics/locks.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs pieces until none are left. Once any piece has
    /// panicked the remaining claims drain as no-ops (fail-fast: the
    /// submitter re-raises without waiting for the rest of the region's
    /// work), while the claim/complete accounting keeps the completion
    /// latch exact.
    fn work(&self, submitter: bool) {
        let mut claimed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.pieces {
                break;
            }
            claimed += 1;
            if !self.panicked.load(Ordering::SeqCst) {
                // SAFETY: piece `i` was claimed, so `completed < pieces`
                // until it finishes and the submitter is still parked in
                // `run_pieces` borrowing the closure.
                let body = unsafe { &*self.body };
                if let Err(payload) =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i)))
                {
                    let mut slot = self.panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                    drop(slot);
                    self.panicked.store(true, Ordering::SeqCst);
                }
            }
            if self.completed.fetch_add(1, Ordering::SeqCst) + 1 == self.pieces {
                *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
                self.done_cv.notify_all();
            }
        }
        if claimed > 0 && sdc_obs::enabled() {
            sdc_obs::Event::new(&EV_WORKER)
                .u64("claimed", claimed)
                .u64("pieces", self.pieces as u64)
                .bool("submitter", submitter)
                .emit();
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.pieces
    }

    /// Tries to reserve a worker slot on this job.
    fn try_join(&self) -> bool {
        self.worker_budget.fetch_sub(1, Ordering::SeqCst) > 0
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    spawned: AtomicUsize,
    spawn_lock: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
        spawn_lock: Mutex::new(()),
    })
}

/// Ensures at least `target` workers exist (they are never torn down;
/// idle workers block on the queue condvar and cost nothing).
fn ensure_workers(target: usize) {
    let p = pool();
    if p.spawned.load(Ordering::SeqCst) >= target {
        return;
    }
    let _guard = p.spawn_lock.lock().unwrap_or_else(|e| e.into_inner());
    while p.spawned.load(Ordering::SeqCst) < target {
        let id = p.spawned.fetch_add(1, Ordering::SeqCst);
        std::thread::Builder::new()
            .name(format!("sdc-par-{id}"))
            .spawn(worker_loop)
            .expect("sdc_parallel: cannot spawn worker thread");
    }
}

fn worker_loop() {
    IN_POOL.with(|f| f.set(true));
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                q.retain(|j| !j.exhausted());
                if let Some(j) = q.iter().find(|j| j.try_join()) {
                    break j.clone();
                }
                q = p.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.work(false);
    }
}

/// Runs `body(0) ..= body(pieces - 1)`, distributing piece indices over
/// the pool, and returns once every piece has finished.
///
/// The submitting thread participates, so `run_pieces` never deadlocks
/// and a 1-thread setting is exactly a `for` loop. Pieces are claimed
/// dynamically; callers guarantee determinism by making piece *results*
/// independent (write to disjoint, piece-indexed locations). If any
/// piece panics the panic is re-raised here after the region drains.
pub fn run_pieces(pieces: usize, body: &(dyn Fn(usize) + Sync)) {
    if pieces == 0 {
        return;
    }
    if pieces == 1 || threads() <= 1 || is_pool_worker() {
        let mut span = sdc_obs::span(&EV_RUN);
        if let Some(span) = span.as_mut() {
            span.u64("pieces", pieces as u64).u64("inline", 1);
            // A nested region from inside a worker is the graceful-
            // degradation path; make it visible.
            span.u64("nested", u64::from(is_pool_worker()));
        }
        for i in 0..pieces {
            body(i);
        }
        return;
    }
    let mut span = sdc_obs::span(&EV_RUN);
    if let Some(span) = span.as_mut() {
        span.u64("pieces", pieces as u64).u64("inline", 0).u64("threads", threads() as u64);
    }
    let extra_workers = threads() - 1;
    ensure_workers(extra_workers);
    // SAFETY: the job's pointer to `body` is only dereferenced while
    // this frame is alive — we block on `done` below, which flips only
    // after the final claimed piece completes (see `Job::body`).
    let body_erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
    };
    let job = Arc::new(Job {
        body: body_erased,
        pieces,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        worker_budget: AtomicIsize::new(extra_workers as isize),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut q = pool().queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job.clone());
    }
    pool().queue_cv.notify_all();

    // Participate; mark the thread so nested regions inline.
    let was_in_pool = IN_POOL.with(|f| f.replace(true));
    job.work(true);
    IN_POOL.with(|f| f.set(was_in_pool));

    let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
    while !*done {
        done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    {
        let mut q = pool().queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if job.panicked.load(Ordering::SeqCst) {
        // Re-raise the first piece's payload verbatim so the assertion
        // message and location read the same as a 1-thread run.
        let payload = job.panic_payload.lock().unwrap_or_else(|e| e.into_inner()).take();
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            None => panic!("sdc_parallel: a parallel task panicked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_piece_exactly_once() {
        let _guard = crate::test_guard();
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run_pieces(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        set_threads(0);
    }

    #[test]
    fn zero_and_one_piece() {
        run_pieces(0, &|_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        run_pieces(1, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_thread_setting_runs_inline() {
        let _guard = crate::test_guard();
        set_threads(1);
        let tid = std::thread::current().id();
        run_pieces(16, &|_| assert_eq!(std::thread::current().id(), tid));
        set_threads(0);
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        let _guard = crate::test_guard();
        set_threads(4);
        let total = AtomicUsize::new(0);
        run_pieces(8, &|_| {
            run_pieces(8, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
        set_threads(0);
    }

    #[test]
    fn results_are_piece_indexed_and_complete() {
        let _guard = crate::test_guard();
        set_threads(8);
        let out: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_pieces(out.len(), &|i| {
            out[i].store((i as u64) * 3 + 1, Ordering::Relaxed);
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), (i as u64) * 3 + 1);
        }
        set_threads(0);
    }

    #[test]
    fn growing_the_setting_mid_process_works() {
        let _guard = crate::test_guard();
        set_threads(2);
        let a = AtomicUsize::new(0);
        run_pieces(32, &|_| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        set_threads(6);
        run_pieces(32, &|_| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(a.load(Ordering::SeqCst), 64);
        set_threads(0);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let _guard = crate::test_guard();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            run_pieces(16, &|i| {
                if i == 7 {
                    panic!("piece 7 exploded");
                }
            });
        });
        let payload = result.expect_err("the panic must reach the submitter");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("piece 7 exploded"), "original payload must survive: {msg:?}");
        // The pool must remain usable afterwards.
        let ran = AtomicUsize::new(0);
        run_pieces(16, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        set_threads(0);
    }

    #[test]
    fn pool_events_go_to_the_timing_channel_only() {
        let _guard = crate::test_guard();
        set_threads(2);
        // Worker threads have their own subscriber stacks, so per-worker
        // claim events are only observable through a global subscriber.
        let sink = Arc::new(sdc_obs::trace::TraceSink::new());
        sdc_obs::install_global(sink.clone());
        run_pieces(8, &|_| {});
        // The inline path (one piece runs on the submitter).
        run_pieces(1, &|_| {});
        // A worker's claim report lands just after the completion latch
        // flips, i.e. possibly after `run_pieces` returned; wait for it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !sink.timing_bytes().contains("\"ev\":\"pool.worker\"")
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        sdc_obs::clear_global();
        let timing = sink.timing_bytes();
        assert!(timing.contains("\"ev\":\"pool.run\""), "{timing}");
        // Every piece is claimed by someone, so at least one participant
        // reported its share (which participant is a scheduling accident).
        assert!(timing.contains("\"ev\":\"pool.worker\""), "{timing}");
        assert!(timing.contains("\"claimed\":"), "{timing}");
        assert!(timing.contains("\"inline\":1"), "{timing}");
        // Scheduling events never reach the deterministic channel.
        assert!(sink.det_bytes().is_empty());
        set_threads(0);
    }

    #[test]
    fn thread_setting_is_clamped_and_clearable() {
        let _guard = crate::test_guard();
        set_threads(usize::MAX);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}

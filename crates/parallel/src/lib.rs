//! # sdc_parallel — the workspace's execution substrate
//!
//! A dependency-free `std::thread` work pool plus the canonical
//! deterministic reduction, shared by every `par_*` kernel in the
//! workspace (the vendored `rayon` façade dispatches here).
//!
//! Two invariants make real threads safe for SDC research code:
//!
//! * **Determinism.** Work is decomposed into pieces whose boundaries
//!   depend only on problem size; threads claim pieces dynamically but
//!   every result lands in a piece-indexed slot, and floating-point
//!   partials are combined in a fixed tree ([`reduce`]). Any output —
//!   a vector, a dot product, a campaign artifact — is therefore a pure
//!   function of the input at *any* thread count, which is what lets
//!   fault campaigns replay solves and diff artifacts by byte.
//! * **Composability.** A parallel region submitted from inside another
//!   parallel region runs inline on the current thread, so parallel
//!   kernels (SpMV, dots) nested in parallel campaign units neither
//!   deadlock nor oversubscribe.
//!
//! Thread count precedence: [`set_threads`] (the shared `--threads`
//! flag) > the `SDC_THREADS` environment variable >
//! `std::thread::available_parallelism()`.

pub mod pool;
pub mod reduce;

pub use pool::{is_pool_worker, run_pieces, set_threads, threads};
pub use reduce::{det_map_sum, pairwise_sum, BLOCK, PAIRWISE_BASE, PAR_MIN};

/// Serializes tests (in any crate of this workspace) that mutate the
/// global thread setting via [`set_threads`]. Without it, two
/// concurrently-running `#[test]`s comparing results across thread
/// counts could interleave their `set_threads` calls and silently
/// compare same-count runs — passing vacuously. Test support only, not
/// part of the public API.
#[doc(hidden)]
pub fn test_serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
pub(crate) use test_serial_guard as test_guard;

//! The workspace's single deterministic floating-point reduction.
//!
//! Every dot product, norm and sum in the workspace reduces with one
//! canonical shape, a *fixed-block pairwise tree*:
//!
//! 1. the index range `0..len` is cut into [`BLOCK`]-sized blocks
//!    (`len ≤ BLOCK` is a single block — the shapes coincide);
//! 2. a caller-supplied leaf kernel reduces each block (by convention
//!    with a [`PAIRWISE_BASE`]-base pairwise tree over slices, which the
//!    compiler vectorizes);
//! 3. the block partials are combined with [`pairwise_sum`].
//!
//! The shape is a function of `len` alone — never of thread count or
//! scheduling — so serial and parallel runs are bitwise identical, which
//! is what lets SDC campaigns replay solves and compare artifacts by
//! byte. Blocks are evaluated over the pool when the input is large
//! enough to pay for it; each partial lands in its own slot, so dynamic
//! piece claiming cannot reorder the combination.
//!
//! Accuracy: the pairwise tree has an `O(log n · eps)` error bound
//! versus `O(n · eps)` for running accumulation, keeping Modified
//! Gram-Schmidt's orthogonality loss near the theoretical bound and the
//! SDC detector free of arithmetic-noise false positives.

use crate::pool::{is_pool_worker, run_pieces, threads};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Block size of the canonical reduction: a constant of the *algorithm*,
/// not of the machine, preserving determinism.
pub const BLOCK: usize = 8192;

/// Base-case length of the pairwise tree; below this a simple
/// (vectorizable) loop runs.
pub const PAIRWISE_BASE: usize = 64;

/// Inputs shorter than this are reduced without touching the pool —
/// piece handoff costs more than the arithmetic saves.
pub const PAR_MIN: usize = 4 * BLOCK;

/// Pairwise sum of a slice with a fixed-shape reduction tree
/// (base [`PAIRWISE_BASE`]).
#[inline]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        let mut acc = 0.0;
        for &x in xs {
            acc += x;
        }
        acc
    } else {
        let mid = xs.len() / 2;
        pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
    }
}

/// Deterministic blocked map-reduce over `0..len`.
///
/// `leaf(lo..hi)` reduces one block (block boundaries are multiples of
/// [`BLOCK`]); the partials are combined with [`pairwise_sum`]. The
/// result is a pure function of `len` and the leaf values — bitwise
/// independent of thread count — and large inputs evaluate their blocks
/// concurrently on the pool.
pub fn det_map_sum(len: usize, leaf: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
    if len <= BLOCK {
        return leaf(0..len);
    }
    let nblocks = len.div_ceil(BLOCK);
    let block_range = |b: usize| b * BLOCK..((b + 1) * BLOCK).min(len);
    // The worker check keeps nested reductions (a dot inside a pool-run
    // campaign unit, which would inline anyway) off the atomic-slot path.
    let partials: Vec<f64> = if len >= PAR_MIN && threads() > 1 && !is_pool_worker() {
        // One slot per block; bits written by whichever thread claims
        // the piece, read back in block order after the region ends.
        let slots: Vec<AtomicU64> = (0..nblocks).map(|_| AtomicU64::new(0)).collect();
        run_pieces(nblocks, &|b| {
            slots[b].store(leaf(block_range(b)).to_bits(), Ordering::Relaxed);
        });
        slots.iter().map(|s| f64::from_bits(s.load(Ordering::Relaxed))).collect()
    } else {
        (0..nblocks).map(|b| leaf(block_range(b))).collect()
    };
    pairwise_sum(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::set_threads;
    use crate::test_guard;

    /// Pairwise-tree leaf over a value slice, as the dense kernels use.
    fn leaf_sum(xs: &[f64]) -> f64 {
        if xs.len() <= PAIRWISE_BASE {
            xs.iter().sum()
        } else {
            let mid = xs.len() / 2;
            leaf_sum(&xs[..mid]) + leaf_sum(&xs[mid..])
        }
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.7311).sin() * 1e3 + 1e-7 * i as f64).collect()
    }

    #[test]
    fn matches_single_block_leaf_below_block_size() {
        let xs = data(BLOCK);
        let got = det_map_sum(xs.len(), &|r| leaf_sum(&xs[r]));
        assert_eq!(got.to_bits(), leaf_sum(&xs).to_bits());
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        let _guard = test_guard();
        let xs = data(3 * BLOCK + 1234);
        let mut results = Vec::new();
        for t in [1, 2, 5, 8] {
            set_threads(t);
            results.push(det_map_sum(xs.len(), &|r| leaf_sum(&xs[r])).to_bits());
        }
        set_threads(0);
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:x?}");
    }

    #[test]
    fn parallel_path_matches_serial_shape() {
        let _guard = test_guard();
        // Force the pool path (len >= PAR_MIN) and compare against a
        // hand-rolled serial evaluation of the same canonical shape.
        let xs = data(PAR_MIN + 4097);
        let serial: Vec<f64> = xs.chunks(BLOCK).map(leaf_sum).collect();
        let expect = pairwise_sum(&serial);
        set_threads(4);
        let got = det_map_sum(xs.len(), &|r| leaf_sum(&xs[r]));
        set_threads(0);
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn empty_input_reduces_the_empty_range() {
        let got = det_map_sum(0, &|r| {
            assert!(r.is_empty());
            0.0
        });
        assert_eq!(got, 0.0);
    }
}

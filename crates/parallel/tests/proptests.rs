//! Property tests for the deterministic reduction: the canonical tree
//! must produce bitwise-identical results no matter how its blocks are
//! scheduled — across thread counts, and against a hand-rolled serial
//! evaluation of the same shape.

use proptest::prelude::*;
use sdc_parallel::{det_map_sum, pairwise_sum, set_threads, BLOCK, PAIRWISE_BASE};

/// Reference leaf: the sequential pairwise tree over a slice.
fn leaf_sum(xs: &[f64]) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        xs.iter().sum()
    } else {
        let mid = xs.len() / 2;
        leaf_sum(&xs[..mid]) + leaf_sum(&xs[mid..])
    }
}

/// The canonical shape, written out independently of `det_map_sum`:
/// block partials in order, combined with the pairwise tree.
fn reference_shape(xs: &[f64]) -> f64 {
    if xs.len() <= BLOCK {
        return leaf_sum(xs);
    }
    let partials: Vec<f64> = xs.chunks(BLOCK).map(leaf_sum).collect();
    pairwise_sum(&partials)
}

fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    // Mixed magnitudes so any reassociation would actually change bits.
    proptest::collection::vec(prop_oneof![-1e9f64..1e9, -1.0f64..1.0, -1e-9f64..1e-9], len)
}

proptest! {
    #[test]
    fn det_map_sum_is_bitwise_equal_across_thread_counts(
        xs in (0usize..200_000).prop_flat_map(values)
    ) {
        let _guard = sdc_parallel::test_serial_guard();
        let mut bits = Vec::new();
        for t in [1, 2, 3, 8] {
            set_threads(t);
            bits.push(det_map_sum(xs.len(), &|r| leaf_sum(&xs[r])).to_bits());
        }
        set_threads(0);
        prop_assert!(bits.windows(2).all(|w| w[0] == w[1]), "bits differ: {bits:x?}");
    }

    #[test]
    fn det_map_sum_matches_the_reference_shape(
        xs in (0usize..100_000).prop_flat_map(values)
    ) {
        let _guard = sdc_parallel::test_serial_guard();
        set_threads(4);
        let got = det_map_sum(xs.len(), &|r| leaf_sum(&xs[r])).to_bits();
        set_threads(0);
        prop_assert_eq!(got, reference_shape(&xs).to_bits());
    }

    #[test]
    fn pairwise_sum_matches_independent_tree_reference(
        xs in (1usize..10_000).prop_flat_map(values)
    ) {
        // Pins the canonical tree shape: `leaf_sum` above is an
        // independent re-implementation of the base-64 pairwise tree,
        // so e.g. regressing pairwise_sum to a running left-to-right
        // accumulation would change the bits and fail here.
        prop_assert_eq!(pairwise_sum(&xs).to_bits(), leaf_sum(&xs).to_bits());
    }
}

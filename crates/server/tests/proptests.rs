//! Property tests for the wire protocol: random valid requests
//! round-trip through `sdc_campaigns::json` exactly, and arbitrary
//! malformed frames always come back as structured errors (never a
//! panic, never a dropped frame).

use proptest::prelude::*;
use sdc_campaigns::json::Json;
use sdc_campaigns::{DetectorPolicy, LsqSpec, ProblemSpec};
use sdc_faults::campaign::{FaultClass, FaultTarget, MgsPosition};
use sdc_gmres::precond::PrecondKind;
use sdc_server::protocol::{FaultSpec, LoadMatrixRequest, MatrixSource, Request, SolveRequest};
use sdc_server::SolverKind;
use sdc_sparse::SparseFormat;

/// `Option<T>` from a strategy plus a None arm (the vendored proptest
/// has no `proptest::option`).
fn opt<S>(s: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![s.prop_map(Some), Just(None)].boxed()
}

fn bool_strategy() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

const NAMES: [&str; 8] = ["p", "poisson_100", "dcop", "a1", "m_big", "x", "bench", "k0"];

fn name_strategy() -> impl Strategy<Value = String> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string())
}

fn solver_strategy() -> impl Strategy<Value = SolverKind> {
    prop_oneof![Just(SolverKind::Gmres), Just(SolverKind::Fgmres), Just(SolverKind::FtGmres),]
}

fn detector_strategy() -> impl Strategy<Value = DetectorPolicy> {
    prop_oneof![
        Just(DetectorPolicy::Off),
        Just(DetectorPolicy::Record),
        Just(DetectorPolicy::RestartInner),
        Just(DetectorPolicy::AbortInner),
        Just(DetectorPolicy::Halt),
    ]
}

fn lsq_strategy() -> impl Strategy<Value = LsqSpec> {
    prop_oneof![
        Just(LsqSpec::Standard),
        (1e-15f64..1e-6).prop_map(|tol| LsqSpec::FallbackOnNonFinite { tol }),
        (1e-15f64..1e-6).prop_map(|tol| LsqSpec::RankRevealing { tol }),
    ]
}

fn format_strategy() -> impl Strategy<Value = SparseFormat> {
    prop_oneof![Just(SparseFormat::Auto), Just(SparseFormat::Csr), Just(SparseFormat::Sell)]
}

fn tier_strategy() -> impl Strategy<Value = sdc_sparse::KernelTier> {
    prop_oneof![Just(sdc_sparse::KernelTier::Strict), Just(sdc_sparse::KernelTier::FastMath)]
}

fn precond_strategy() -> impl Strategy<Value = PrecondKind> {
    prop_oneof![
        Just(PrecondKind::None),
        Just(PrecondKind::Jacobi),
        Just(PrecondKind::Ilu0),
        Just(PrecondKind::Chebyshev),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        prop_oneof![Just(FaultClass::Huge), Just(FaultClass::Slight), Just(FaultClass::Tiny)],
        prop_oneof![Just(MgsPosition::First), Just(MgsPosition::Last)],
        1usize..10_000,
        prop_oneof![Just(FaultTarget::Mgs), Just(FaultTarget::Precond)],
    )
        .prop_map(|(class, position, aggregate, target)| FaultSpec {
            class,
            position,
            aggregate,
            target,
        })
}

/// Client-assigned trace ids, including awkward-but-legal shapes
/// (empty, JSON-escaped quote, long).
fn trace_id_strategy() -> impl Strategy<Value = String> {
    let ids = ["req-1", "trc/00042", "", "a\"b\\c", "X", "0123456789abcdef0123456789abcdef"];
    (0usize..ids.len()).prop_map(move |i| ids[i].to_string())
}

/// A random *valid* solve request (fault only with ftgmres, restart
/// only with gmres, finite b) — the invariants `validate()` enforces.
fn solve_strategy() -> impl Strategy<Value = SolveRequest> {
    (
        (
            name_strategy(),
            solver_strategy(),
            opt(proptest::collection::vec(-1e6f64..1e6, 1..20)),
            1e-12f64..1e-2,
            1usize..500,
            opt(1usize..60),
        ),
        (
            1usize..40,
            (format_strategy(), precond_strategy(), tier_strategy()),
            detector_strategy(),
            lsq_strategy(),
            opt(fault_strategy()),
            (
                0u64..u64::MAX,
                bool_strategy(),
                bool_strategy(),
                opt(trace_id_strategy()),
                bool_strategy(),
            ),
        ),
    )
        .prop_map(
            |(
                (matrix, solver, b, tol, maxit, restart),
                (
                    inner_iters,
                    (format, precond, tier),
                    detector,
                    lsq,
                    fault,
                    (seed, return_x, trace, trace_id, timing),
                ),
            )| {
                // A precond-target fault needs a preconditioner to
                // strike; validate() rejects the combination.
                let fault = fault.map(|mut f| {
                    if precond == PrecondKind::None {
                        f.target = FaultTarget::Mgs;
                    }
                    f
                });
                SolveRequest {
                    matrix,
                    solver,
                    b,
                    tol,
                    maxit,
                    restart: if solver == SolverKind::Gmres { restart } else { None },
                    inner_iters,
                    format,
                    // fast_math is CSR-only; validate() rejects it with
                    // an explicit SELL engine.
                    kernel_tier: if format == SparseFormat::Sell {
                        sdc_sparse::KernelTier::Strict
                    } else {
                        tier
                    },
                    precond,
                    // fgmres has no detector hook; validate() rejects it.
                    detector: if solver == SolverKind::Fgmres {
                        DetectorPolicy::Off
                    } else {
                        detector
                    },
                    lsq,
                    fault: if solver == SolverKind::FtGmres { fault } else { None },
                    seed,
                    return_x,
                    trace,
                    trace_id,
                    timing,
                }
            },
        )
}

fn load_strategy() -> impl Strategy<Value = LoadMatrixRequest> {
    let source = prop_oneof![
        (2usize..40).prop_map(|m| MatrixSource::Problem(ProblemSpec::Poisson { m })),
        (
            1usize..8,
            1usize..8,
            proptest::collection::vec((0usize..8, 0usize..8, -100.0f64..100.0), 0..20),
        )
            .prop_map(|(rows, cols, raw)| MatrixSource::Coo {
                rows,
                cols,
                entries: raw.into_iter().map(|(i, j, v)| (i % rows, j % cols, v)).collect(),
            }),
    ];
    (opt(name_strategy()), source).prop_map(|(name, source)| LoadMatrixRequest {
        name,
        source,
        replica: false,
    })
}

proptest! {
    #[test]
    fn solve_requests_round_trip_exactly(req in solve_strategy()) {
        let wire = Request::Solve(req);
        let line = wire.to_json().to_line();
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back, wire);
    }

    #[test]
    fn load_requests_round_trip_exactly(req in load_strategy()) {
        let wire = Request::LoadMatrix(req);
        let line = wire.to_json().to_line();
        let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back, wire);
    }

    #[test]
    fn request_serialization_is_canonical(req in solve_strategy()) {
        // Serializing, parsing as raw JSON and re-serializing is the
        // identity — the property the served-vs-offline diff rests on.
        let line = Request::Solve(req).to_json().to_line();
        prop_assert_eq!(Json::parse(&line).unwrap().to_line(), line);
    }

    #[test]
    fn unknown_precond_values_are_structured_errors(
        idx in 0usize..6
    ) {
        let raw = ["amg", "ssor", "lu", "spai", "cheby", "jacobian"][idx];
        prop_assert!(PrecondKind::parse(raw).is_err());
        // In a solve request.
        let line = format!("{{\"cmd\":\"solve\",\"matrix\":\"p\",\"precond\":\"{raw}\"}}");
        let e = Request::from_json(&Json::parse(&line).unwrap()).unwrap_err();
        prop_assert!(e.msg.contains("unknown preconditioner"), "{}", e.msg);
        // In a fault target.
        let line = format!(
            "{{\"cmd\":\"solve\",\"matrix\":\"p\",\"fault\":{{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":1,\"target\":\"{raw}\"}}}}"
        );
        if FaultTarget::parse(raw).is_err() {
            let e = Request::from_json(&Json::parse(&line).unwrap()).unwrap_err();
            prop_assert!(e.msg.contains("unknown fault target"), "{}", e.msg);
        }
    }

    #[test]
    fn unknown_trace_subfields_are_structured_errors(
        idx in 0usize..6,
        with_id in bool_strategy(),
    ) {
        // The `trace` object admits exactly `id` and `capture`; anything
        // else is a structured parse error naming the offender, whether
        // or not a valid `id` rides alongside.
        let junk = ["sample", "span", "parent", "level", "ids", "Capture"][idx];
        let extra = if with_id { "\"id\":\"req-1\"," } else { "" };
        let line =
            format!("{{\"cmd\":\"solve\",\"matrix\":\"p\",\"trace\":{{{extra}\"{junk}\":1}}}}");
        let e = Request::from_json(&Json::parse(&line).unwrap()).unwrap_err();
        prop_assert!(
            e.msg.contains(&format!("unknown trace subfield '{junk}'")),
            "{}", e.msg
        );
    }

    #[test]
    fn unknown_fields_are_rejected_on_every_no_payload_command(
        cmd_idx in 0usize..4,
        junk_idx in 0usize..8,
    ) {
        // Strict parsing: any key outside the command's allow-list is a
        // structured error, on old commands and the new `metrics` alike.
        let cmd = ["stats", "metrics", "list", "shutdown"][cmd_idx];
        let junk = ["threads", "trace", "verbose", "format", "matrix", "extra", "q", "foo_bar"]
            [junk_idx];
        let line = format!("{{\"cmd\":\"{cmd}\",\"{junk}\":1}}");
        let err = Request::from_json(&Json::parse(&line).unwrap());
        prop_assert!(err.is_err(), "{line} must be rejected");
        // The bare command still parses.
        let line = format!("{{\"cmd\":\"{cmd}\"}}");
        prop_assert!(Request::from_json(&Json::parse(&line).unwrap()).is_ok());
    }

    #[test]
    fn malformed_frames_always_yield_structured_errors(
        bytes in proptest::collection::vec(0x20u8..0x7f, 0..60)
    ) {
        let garbage = String::from_utf8(bytes).expect("printable ascii");
        // Whatever bytes arrive, the engine answers with a frame — it
        // never panics and never goes silent. (Frames that happen to
        // parse as valid requests are allowed to succeed.)
        let engine = sdc_server::Engine::new(sdc_server::EngineConfig {
            queue_cap: 2,
            batch_max: 1,
            threads: 0,
            shard: None,
        });
        let mut events = Vec::new();
        let resp = engine.handle_line(&garbage, &mut |e| events.push(e.clone()));
        let ok = resp.field("ok").unwrap().as_bool().unwrap();
        if !ok {
            let err = resp.field("error").unwrap();
            prop_assert!(!err.field("code").unwrap().as_str().unwrap().is_empty());
            prop_assert!(!err.field("message").unwrap().as_str().unwrap().is_empty());
        }
        engine.drain();
    }
}

/// The TCP-level half of the malformed-frame satellite: the server
/// answers garbage with a structured error *on the same connection*,
/// which stays open for the next (valid) request.
#[test]
fn malformed_frame_over_tcp_keeps_the_connection_alive() {
    use sdc_server::{serve, Client, Engine, EngineConfig};
    use std::sync::Arc;

    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let frames = c.request_lines("{{{{ totally broken").expect("error frame, not a hangup");
    let err = Json::parse(frames.last().unwrap()).unwrap();
    assert!(!err.field("ok").unwrap().as_bool().unwrap());
    assert_eq!(err.field("error").unwrap().field("code").unwrap().as_str().unwrap(), "bad_request");

    let frames = c.request_lines("{\"cmd\":\"stats\"}").expect("connection must survive");
    assert!(frames.last().unwrap().contains("\"ok\":true"));

    let r = c.request_lines("{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.last().unwrap().contains("\"ok\":true"));
    handle.wait();
}

//! End-to-end tests over real sockets: a served session exercising the
//! full protocol, malformed-frame handling, the fixed-threads contract
//! and graceful shutdown.

use sdc_campaigns::json::Json;
use sdc_server::{serve, Client, Engine, EngineConfig, ServerHandle};
use std::sync::Arc;

fn start() -> ServerHandle {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 0,
        queue_cap: 16,
        batch_max: 4,
        shard: None,
    }));
    serve(engine, "127.0.0.1:0").expect("bind")
}

fn call(client: &mut Client, line: &str) -> Json {
    let frames = client.request_lines(line).expect("request");
    Json::parse(frames.last().expect("non-empty")).expect("valid frame")
}

fn shutdown(handle: ServerHandle, client: &mut Client) {
    let r = call(client, "{\"cmd\":\"shutdown\"}");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    handle.wait();
}

#[test]
fn full_session_load_solve_stats_list() {
    let handle = start();
    let mut c = Client::connect(handle.addr()).expect("connect");

    let r = call(
        &mut c,
        "{\"cmd\":\"load_matrix\",\"id\":1,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
    assert_eq!(r.field("id").unwrap().as_usize().unwrap(), 1);

    // A plain solve and a faulted FT-GMRES solve with the detector on.
    let r = call(
        &mut c,
        "{\"cmd\":\"solve\",\"id\":2,\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":300}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
    let r = call(
        &mut c,
        "{\"cmd\":\"solve\",\"id\":3,\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\
         \"inner_iters\":10,\"detector\":\"restart_inner\",\
         \"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12}}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
    let s = r.field("result").unwrap().field("summary").unwrap();
    assert_eq!(s.field("injections").unwrap().as_usize().unwrap(), 1);
    assert!(s.field("converged").unwrap().as_bool().unwrap());

    let r = call(&mut c, "{\"cmd\":\"stats\",\"id\":4}");
    let stats = r.field("result").unwrap();
    assert_eq!(stats.field("queue_capacity").unwrap().as_usize().unwrap(), 16);
    assert_eq!(stats.field("requests").unwrap().field("solve").unwrap().as_usize().unwrap(), 2);
    assert!(stats.field("connections").unwrap().field("active").unwrap().as_usize().unwrap() >= 1);

    let r = call(&mut c, "{\"cmd\":\"list\",\"id\":5}");
    assert_eq!(r.field("result").unwrap().field("matrices").unwrap().as_arr().unwrap().len(), 1);

    shutdown(handle, &mut c);
}

#[test]
fn metrics_request_returns_prometheus_exposition() {
    let handle = start();
    let mut c = Client::connect(handle.addr()).expect("connect");
    call(
        &mut c,
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
    );
    let r = call(
        &mut c,
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,         \"inner_iters\":10,\"detector\":\"restart_inner\",         \"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12}}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());

    let r = call(&mut c, "{\"cmd\":\"metrics\",\"id\":7}");
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
    let result = r.field("result").unwrap();
    let text = result.field("prometheus").unwrap().as_str().unwrap().to_string();
    for needle in [
        "# TYPE sdc_requests_total counter",
        "sdc_requests_total{kind=\"solve\"} 1",
        "sdc_requests_total{kind=\"metrics\"} 1",
        "# TYPE sdc_cache_misses_total counter",
        "sdc_cache_misses_total 1",
        "# TYPE sdc_queue_depth gauge",
        "# TYPE sdc_detector_events_total counter",
        "sdc_injections_committed_total 1",
        "# TYPE sdc_solve_latency_us histogram",
        "sdc_solve_latency_us_bucket{le=\"+Inf\"} 1",
        "sdc_solve_latency_us_count 1",
        "sdc_matrices_registered 1",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in exposition:\n{text}");
    }
    // The flat series map mirrors the text for machine consumers.
    let series = result.field("series").unwrap();
    assert_eq!(series.field("sdc_injections_committed_total").unwrap().as_usize().unwrap(), 1);
    assert_eq!(series.field("sdc_solve_latency_us_count").unwrap().as_usize().unwrap(), 1);

    // Strict parsing applies to the new command as well.
    let r = call(&mut c, "{\"cmd\":\"metrics\",\"bogus\":1}");
    assert!(!r.field("ok").unwrap().as_bool().unwrap());

    // The legacy stats object keeps its pre-`metrics` request shape:
    // the new kind is Prometheus-only, so pinned stats bytes survive.
    let r = call(&mut c, "{\"cmd\":\"stats\"}");
    let requests = r.field("result").unwrap().field("requests").unwrap();
    assert!(requests.get("metrics").is_none(), "{}", requests.to_line());
    assert_eq!(requests.field("solve").unwrap().as_usize().unwrap(), 1);

    shutdown(handle, &mut c);
}

#[test]
fn malformed_frames_get_structured_errors_and_keep_the_connection() {
    let handle = start();
    let mut c = Client::connect(handle.addr()).expect("connect");

    for garbage in ["this is not json", "{\"cmd\":", "[1,2,3", "{\"cmd\":\"nope\"}"] {
        let r = call(&mut c, garbage);
        assert!(!r.field("ok").unwrap().as_bool().unwrap(), "{garbage}");
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "bad_request",
            "{garbage}"
        );
    }
    // The connection must still be perfectly usable afterwards.
    let r = call(&mut c, "{\"cmd\":\"stats\"}");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    assert_eq!(r.field("result").unwrap().field("protocol_errors").unwrap().as_usize().unwrap(), 4);

    shutdown(handle, &mut c);
}

#[test]
fn threads_are_fixed_at_startup_and_requests_cannot_change_them() {
    let handle = start();
    let frozen = handle.engine().threads();
    let mut c = Client::connect(handle.addr()).expect("connect");

    let before = call(&mut c, "{\"cmd\":\"stats\"}");
    assert_eq!(
        before.field("result").unwrap().field("threads").unwrap().as_usize().unwrap(),
        frozen
    );

    // A client trying to re-size the pool gets a pointed error…
    let r = call(&mut c, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"threads\":64}");
    assert!(!r.field("ok").unwrap().as_bool().unwrap());
    let msg = r.field("error").unwrap().field("message").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("fixed at server startup"), "{msg}");
    // …on every command that could plausibly carry it.
    let r = call(&mut c, "{\"cmd\":\"stats\",\"threads\":64}");
    assert!(!r.field("ok").unwrap().as_bool().unwrap());

    // And the pool is exactly as it was.
    let after = call(&mut c, "{\"cmd\":\"stats\"}");
    assert_eq!(
        after.field("result").unwrap().field("threads").unwrap().as_usize().unwrap(),
        frozen
    );
    assert_eq!(handle.engine().threads(), frozen);

    shutdown(handle, &mut c);
}

#[test]
fn concurrent_connections_solve_the_same_matrix() {
    let handle = start();
    let mut setup = Client::connect(handle.addr()).expect("connect");
    let r = call(
        &mut setup,
        "{\"cmd\":\"load_matrix\",\"name\":\"shared\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap());

    let solve = "{\"cmd\":\"solve\",\"matrix\":\"shared\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":8}";
    let report = sdc_server::load_gen(handle.addr(), 4, 3, &Json::parse(solve).unwrap())
        .expect("load generator");
    assert_eq!(report.completed, 12, "every request must succeed");
    assert_eq!(report.rejected, 0);
    assert!(report.percentile_us(50.0) > 0.0);

    // The cache amortized: one matrix, many solves.
    let r = call(&mut setup, "{\"cmd\":\"stats\"}");
    let stats = r.field("result").unwrap();
    assert_eq!(stats.field("matrices").unwrap().as_usize().unwrap(), 1);
    assert_eq!(stats.field("solves").unwrap().field("converged").unwrap().as_usize().unwrap(), 12);

    shutdown(handle, &mut setup);
}

#[test]
fn shutdown_drains_and_wait_returns() {
    let handle = start();
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");
    call(
        &mut c,
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
    );
    // Queue a few solves, then shut down from a second connection: the
    // in-flight work must complete (graceful drain), then wait() ends.
    let solve =
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":200}";
    let r = call(&mut c, solve);
    assert!(r.field("ok").unwrap().as_bool().unwrap());

    let mut c2 = Client::connect(addr).expect("connect 2");
    let r = call(&mut c2, "{\"cmd\":\"shutdown\"}");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    assert!(r.field("result").unwrap().field("draining").unwrap().as_bool().unwrap());
    handle.wait();

    // Post-drain solves on a still-open connection are refused loudly
    // (the socket may also already be closed — both are clean outcomes).
    if let Ok(frames) = c.request_lines(solve) {
        let last = Json::parse(frames.last().unwrap()).unwrap();
        assert_eq!(
            last.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "shutting_down"
        );
    }
}

//! Adversarial transport tests: the event loop must survive hostile or
//! broken clients — connection bursts, slowloris drip-feeds, mid-frame
//! disconnects, oversized frames — without blocking, dropping consumed
//! bytes, or answering anything but structured errors.

use sdc_campaigns::json::Json;
use sdc_server::{
    netpoll, serve, serve_with, Client, Engine, EngineConfig, ServerHandle, ServerOptions,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start() -> ServerHandle {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 0,
        queue_cap: 16,
        batch_max: 4,
        shard: None,
    }));
    serve(engine, "127.0.0.1:0").expect("bind")
}

fn call(client: &mut Client, line: &str) -> Json {
    let frames = client.request_lines(line).expect("request");
    Json::parse(frames.last().expect("non-empty")).expect("valid frame")
}

fn shutdown(handle: ServerHandle) {
    let mut c = Client::connect(handle.addr()).expect("connect for shutdown");
    let r = call(&mut c, "{\"cmd\":\"shutdown\"}");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    handle.wait();
}

#[test]
fn burst_of_512_connections_all_get_answers() {
    netpoll::ensure_fd_limit(4096);
    let handle = start();
    let addr = handle.addr();

    // Open every connection before sending anything: the loop must
    // hold 512 concurrent sockets (the old transport needed 512
    // threads for this).
    let mut conns: Vec<Client> = (0..512)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    for (i, c) in conns.iter_mut().enumerate() {
        c.send_line(&format!("{{\"cmd\":\"stats\",\"id\":{i}}}")).expect("send");
    }
    for (i, c) in conns.iter_mut().enumerate() {
        let frame = c.read_frame().expect("read").expect("frame");
        let v = Json::parse(&frame).expect("json");
        assert!(v.field("ok").unwrap().as_bool().unwrap(), "{frame}");
        assert_eq!(v.field("id").unwrap().as_usize().unwrap(), i);
    }
    let stats = call(&mut conns[0], "{\"cmd\":\"stats\"}");
    let active = stats.field("result").unwrap().field("connections").unwrap();
    assert!(active.field("active").unwrap().as_usize().unwrap() >= 512);

    drop(conns);
    shutdown(handle);
}

#[test]
fn slowloris_partial_frames_never_block_other_clients() {
    let handle = start();
    let addr = handle.addr();

    // The slow client drips one request byte at a time…
    let mut slow = TcpStream::connect(addr).expect("connect slow");
    slow.set_nodelay(true).ok();
    let request = b"{\"cmd\":\"stats\",\"id\":42}\n";
    let (head, tail) = request.split_at(7);
    slow.write_all(head).expect("drip head");

    // …while a normal client gets immediate service on every byte of
    // the drip (a blocked loop would wedge right here).
    let mut fast = Client::connect(addr).expect("connect fast");
    for byte in tail {
        let r = call(&mut fast, "{\"cmd\":\"list\"}");
        assert!(r.field("ok").unwrap().as_bool().unwrap());
        slow.write_all(std::slice::from_ref(byte)).expect("drip");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Every consumed byte was kept: the reassembled frame answers.
    slow.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert_eq!(slow.read(&mut byte).expect("slow read"), 1, "eof before response");
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
    }
    let v = Json::parse(&String::from_utf8(buf).expect("utf8")).expect("json");
    assert!(v.field("ok").unwrap().as_bool().unwrap());
    assert_eq!(v.field("id").unwrap().as_usize().unwrap(), 42);

    shutdown(handle);
}

#[test]
fn mid_frame_disconnect_leaves_the_server_healthy() {
    let handle = start();
    let addr = handle.addr();

    // Abort mid-frame (no newline ever arrives)…
    let mut dead = TcpStream::connect(addr).expect("connect");
    dead.write_all(b"{\"cmd\":\"solve\",\"matrix").expect("partial write");
    drop(dead);

    // …and mid-pipeline (a full request, then vanish before reading).
    let mut ghost = TcpStream::connect(addr).expect("connect");
    ghost.write_all(b"{\"cmd\":\"list\"}\n").expect("full write");
    drop(ghost);

    // The server keeps serving; the unterminated tail was never
    // treated as a request.
    let mut c = Client::connect(addr).expect("connect");
    let r = call(&mut c, "{\"cmd\":\"stats\"}");
    assert!(r.field("ok").unwrap().as_bool().unwrap());
    let requests = r.field("result").unwrap().field("requests").unwrap();
    assert_eq!(
        requests.field("solve").unwrap().as_usize().unwrap(),
        0,
        "a partial frame must not become a request"
    );

    shutdown(handle);
}

/// A scratch flight-recorder directory, wiped before use.
fn flight_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sdc_flight_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Waits for `count` post-mortems named `flight-*-{reason}.jsonl` and
/// returns their paths, sorted (the sequence number orders them).
fn wait_for_dumps(dir: &std::path::Path, reason: &str, count: usize) -> Vec<std::path::PathBuf> {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let mut found: Vec<_> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        let name = p.file_name().unwrap_or_default().to_string_lossy();
                        name.starts_with("flight-") && name.ends_with(&format!("-{reason}.jsonl"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if found.len() >= count {
            found.sort();
            return found;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no flight-*-{reason}.jsonl appeared in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The det-channel lines of a dump or trace: iteration-level solver
/// events, with the timing spans (same name prefixes, but carrying
/// `parent`) filtered out so both sides compare apples to apples.
fn det_lines(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| {
            let v = Json::parse(l).expect("canonical line");
            if v.get("parent").is_some() {
                return false;
            }
            let ev = v.get("ev").and_then(|e| e.as_str().ok()).unwrap_or_default();
            ["gmres.", "fgmres.", "precond.", "fault."].iter().any(|p| ev.starts_with(p))
        })
        .cloned()
        .collect()
}

#[test]
fn oversized_frames_get_a_structured_error_and_a_close() {
    let dir = flight_dir("oversize");
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 0,
        queue_cap: 16,
        batch_max: 4,
        shard: None,
    }));
    engine.set_flight_dir(dir.clone());
    let handle = serve_with(
        engine,
        "127.0.0.1:0",
        ServerOptions { max_frame: 1024, ..ServerOptions::default() },
    )
    .expect("bind");
    let addr = handle.addr();

    // An unterminated frame past the cap is rejected without waiting
    // for a newline that may never come.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&vec![b'x'; 4096]).expect("flood");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read until close");
    let line = resp.lines().next().expect("one error frame");
    let v = Json::parse(line).expect("json");
    assert!(!v.field("ok").unwrap().as_bool().unwrap());
    let err = v.field("error").unwrap();
    assert_eq!(err.field("code").unwrap().as_str().unwrap(), "bad_request");
    assert!(err.field("message").unwrap().as_str().unwrap().contains("max_frame"));

    // A terminated-but-huge frame is rejected the same way.
    let mut s = TcpStream::connect(addr).expect("connect");
    let mut big = vec![b'y'; 2048];
    big.push(b'\n');
    s.write_all(&big).expect("big frame");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read until close");
    assert!(resp.contains("max_frame"), "{resp}");

    // Within the limit everything still works, and the rejections were
    // counted.
    let mut c = Client::connect(addr).expect("connect");
    let r = call(&mut c, "{\"cmd\":\"metrics\"}");
    let text =
        r.field("result").unwrap().field("prometheus").unwrap().as_str().unwrap().to_string();
    assert!(text.contains("sdc_frames_oversized_total 2"), "{text}");

    // Both rejections left a post-mortem behind: the loop-thread flight
    // recorder dumped its recent window under an `oversized_frame`
    // header that names the offending connection.
    let dumps = wait_for_dumps(&dir, "oversized_frame", 2);
    let first = std::fs::read_to_string(&dumps[0]).expect("dump");
    let header = Json::parse(first.lines().next().expect("header line")).expect("json");
    assert_eq!(header.field("ev").unwrap().as_str().unwrap(), "flight.header");
    assert_eq!(header.field("reason").unwrap().as_str().unwrap(), "oversized_frame");
    assert!(header.field("token").is_ok(), "{first}");

    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `SO_LINGER` with a zero timeout: dropping the socket sends an RST
/// instead of an orderly FIN, which the loop reads as a hard error
/// (dead write side), not a half-close. `TcpStream::set_linger` is
/// still unstable, so this goes through the raw syscall like netpoll.
fn set_rst_on_close(s: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const Linger, len: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger { l_onoff: 1, l_linger: 0 };
    // SAFETY: plain syscall on a live fd with a properly-sized struct.
    let rc = unsafe {
        setsockopt(
            s.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            &linger,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
}

#[test]
fn mid_solve_disconnect_writes_a_suffix_consistent_post_mortem() {
    let dir = flight_dir("disconnect");
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 0,
        queue_cap: 16,
        batch_max: 4,
        shard: None,
    }));
    engine.set_flight_dir(dir.clone());
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    // A solve slow enough (in a debug build) that the RST below always
    // lands while it is still in flight.
    const SOLVE: &str = "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\
                         \"tol\":1e-10,\"maxit\":60,\"inner_iters\":10";

    let mut c = Client::connect(addr).expect("connect");
    let r = call(
        &mut c,
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":32}}",
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());

    // Reference: the identical solve, blocking, with the det trace
    // captured in the response.
    let traced = call(&mut c, &format!("{SOLVE},\"trace\":true}}"));
    assert!(traced.field("ok").unwrap().as_bool().unwrap(), "{}", traced.to_line());
    let reference: Vec<String> = traced
        .field("result")
        .unwrap()
        .field("trace")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|l| l.as_str().expect("trace lines are strings").to_string())
        .collect();
    let reference = det_lines(&reference);
    assert!(!reference.is_empty());
    // The clean delivered solve must NOT have dumped.
    assert!(!dir.exists(), "clean solve left a post-mortem");

    // Fire the same solve and slam the door: linger(0) turns the close
    // into an RST, so the loop sees a hard read error — a dead write
    // side — while the solve is still running.
    let mut ghost = TcpStream::connect(addr).expect("connect ghost");
    ghost.write_all(format!("{SOLVE}}}\n").as_bytes()).expect("send solve");
    set_rst_on_close(&ghost);
    drop(ghost);

    let dumps = wait_for_dumps(&dir, "disconnect", 1);
    let content = std::fs::read_to_string(&dumps[0]).expect("dump");
    let mut lines = content.lines().map(str::to_string);
    let header = Json::parse(&lines.next().expect("header line")).expect("json");
    assert_eq!(header.field("ev").unwrap().as_str().unwrap(), "flight.header");
    assert_eq!(header.field("reason").unwrap().as_str().unwrap(), "disconnect");
    assert_eq!(header.field("solver").unwrap().as_str().unwrap(), "ftgmres");

    // The dump's det lines are byte-for-byte the tail of the reference
    // trace: same events, same fields, ending where the solve ended —
    // the determinism guarantee carried into the post-mortem.
    let body: Vec<String> = lines.collect();
    let dumped = det_lines(&body);
    assert!(!dumped.is_empty(), "{content}");
    assert!(
        reference.ends_with(&dumped),
        "dump det lines must be a suffix of the traced reference\nlast dumped: {:?}\nlast ref: {:?}",
        dumped.last(),
        reference.last()
    );

    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let handle = start();
    let addr = handle.addr();

    // Many frames in one TCP segment, including a solve in the middle:
    // responses must come back in request order with matching ids.
    let mut s = TcpStream::connect(addr).expect("connect");
    let mut batch = String::new();
    batch.push_str("{\"cmd\":\"load_matrix\",\"id\":0,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}\n");
    for id in 1..=10 {
        if id % 3 == 0 {
            batch.push_str(&format!(
                "{{\"cmd\":\"solve\",\"id\":{id},\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":200}}\n"
            ));
        } else {
            batch.push_str(&format!("{{\"cmd\":\"stats\",\"id\":{id}}}\n"));
        }
    }
    s.write_all(batch.as_bytes()).expect("pipeline");
    s.shutdown(std::net::Shutdown::Write).ok();

    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut all = String::new();
    s.read_to_string(&mut all).expect("responses");
    let ids: Vec<usize> = all
        .lines()
        .map(|l| Json::parse(l).expect("json").field("id").unwrap().as_usize().unwrap())
        .collect();
    assert_eq!(ids, (0..=10).collect::<Vec<_>>(), "in-order pipelined responses");
    for l in all.lines() {
        let v = Json::parse(l).expect("json");
        assert!(v.field("ok").unwrap().as_bool().unwrap(), "{l}");
    }

    shutdown(handle);
}

//! The acceptance-criteria pin: a served `solve` / `campaign` with a
//! fixed request sequence is **byte-identical** to the offline
//! equivalent, at two different thread counts.
//!
//! "Offline" means the same engine driven without sockets — exactly
//! what `solve-client offline` runs — and, for campaigns, the plain
//! `sdc_campaigns::run` path the `campaign` binary uses. Responses are
//! compared as raw frame bytes; campaign artifacts as raw file bytes.

use sdc_campaigns::json::Json;
use sdc_campaigns::{CampaignSpec, ProblemSpec, RunOptions};
use sdc_server::{serve, Client, Engine, EngineConfig};
use std::sync::Arc;

/// The smoke request sequence: load a matrix, three solves (plain
/// GMRES, clean FT-GMRES returning x, faulted+detected FT-GMRES
/// returning x). Mirrors the CI `serve_smoke` script.
fn request_sequence() -> Vec<String> {
    let raw = [
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":12}}",
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":300}",
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"return_x\":true}",
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"restart_inner\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12},\"return_x\":true}",
    ];
    let mut next = 1u64;
    raw.iter()
        .map(|l| sdc_server::protocol::assign_id(Json::parse(l).unwrap(), &mut next).to_line())
        .collect()
}

/// Runs the sequence through an in-process engine (the `solve-client
/// offline` path) and returns every output frame.
fn run_offline(requests: &[String]) -> Vec<String> {
    let engine = Engine::new(EngineConfig::default());
    let mut out = Vec::new();
    for req in requests {
        let resp = engine.handle_line(req, &mut |ev| out.push(ev.to_line()));
        out.push(resp.to_line());
    }
    engine.drain();
    out
}

/// Runs the sequence against a real server over TCP.
fn run_served(requests: &[String]) -> Vec<String> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut out = Vec::new();
    for req in requests {
        out.extend(client.request_lines(req).expect("request"));
    }
    let r = client.request_lines("{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.last().unwrap().contains("\"ok\":true"));
    handle.wait();
    out
}

#[test]
fn served_solves_match_offline_bitwise_at_two_thread_counts() {
    let _guard = sdc_parallel::test_serial_guard();
    let requests = request_sequence();

    let mut outputs = Vec::new();
    for threads in [1usize, 3] {
        sdc_parallel::set_threads(threads);
        outputs.push((threads, "offline", run_offline(&requests)));
        outputs.push((threads, "served", run_served(&requests)));
    }
    sdc_parallel::set_threads(0);

    let (t0, k0, reference) = &outputs[0];
    assert_eq!(reference.len(), requests.len(), "one final frame per request, no events");
    // The faulted solve really did inject and detect.
    let last = Json::parse(reference.last().unwrap()).unwrap();
    let summary = last.field("result").unwrap().field("summary").unwrap();
    assert_eq!(summary.field("injections").unwrap().as_usize().unwrap(), 1);
    assert!(summary.field("detector_events").unwrap().as_usize().unwrap() >= 1);
    assert!(last.field("result").unwrap().get("x").is_some(), "return_x honored");

    for (t, kind, lines) in &outputs[1..] {
        assert_eq!(
            lines, reference,
            "{kind} at {t} threads must be byte-identical to {k0} at {t0} threads"
        );
    }
}

#[test]
fn traced_preconditioned_solve_matches_offline_bitwise_at_two_thread_counts() {
    let _guard = sdc_parallel::test_serial_guard();
    // `trace: true` embeds the solve's Det-channel event stream in the
    // response, so the byte-diff now covers the trace too: every event
    // field must be a pure function of the request sequence at any
    // thread count, served or offline.
    let raw = [
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"precond\":\"ilu0\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"restart_inner\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12},\"trace\":true}",
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"precond\":\"jacobi\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"trace\":true}",
    ];
    let mut next = 1u64;
    let requests: Vec<String> = raw
        .iter()
        .map(|l| sdc_server::protocol::assign_id(Json::parse(l).unwrap(), &mut next).to_line())
        .collect();

    let mut outputs = Vec::new();
    for threads in [1usize, 3] {
        sdc_parallel::set_threads(threads);
        outputs.push((threads, "offline", run_offline(&requests)));
        outputs.push((threads, "served", run_served(&requests)));
    }
    sdc_parallel::set_threads(0);

    let (t0, k0, reference) = &outputs[0];
    // The faulted ILU(0) solve's trace covers every layer it crossed.
    let faulted = Json::parse(&reference[1]).unwrap();
    let trace = faulted.field("result").unwrap().field("trace").unwrap();
    let lines: Vec<&str> = trace.as_arr().unwrap().iter().map(|l| l.as_str().unwrap()).collect();
    assert!(!lines.is_empty());
    for ev in
        ["gmres.iter", "gmres.done", "fgmres.outer", "fgmres.done", "precond.apply", "fault.inject"]
    {
        assert!(
            lines.iter().any(|l| l.contains(&format!("\"ev\":\"{ev}\""))),
            "trace must contain {ev} events"
        );
    }
    // The clean Jacobi solve traces applies but no injection.
    let clean = Json::parse(&reference[2]).unwrap();
    let trace = clean.field("result").unwrap().field("trace").unwrap();
    let joined = trace.to_line();
    assert!(joined.contains("precond.apply"));
    assert!(!joined.contains("fault.inject"));

    for (t, kind, lines) in &outputs[1..] {
        assert_eq!(
            lines, reference,
            "{kind} at {t} threads must be byte-identical to {k0} at {t0} threads"
        );
    }
}

#[test]
fn served_campaign_artifact_matches_offline_bitwise_at_two_thread_counts() {
    let _guard = sdc_parallel::test_serial_guard();
    let spec = CampaignSpec {
        inner_iters: 6,
        outer_tol: 1e-8,
        outer_max: 60,
        stride: 9,
        ..CampaignSpec::paper_shape("det", vec![ProblemSpec::Poisson { m: 8 }])
    };

    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let mut artifacts: Vec<(String, Vec<u8>, Vec<String>)> = Vec::new();

    for threads in [1usize, 3] {
        sdc_parallel::set_threads(threads);

        // Offline reference: the `campaign run` library path.
        let off_path = tmp.join(format!("sdc_det_off_{pid}_{threads}.jsonl"));
        std::fs::remove_file(&off_path).ok();
        sdc_campaigns::run(
            &spec,
            &off_path,
            false,
            &RunOptions { quiet: true, ..Default::default() },
        )
        .expect("offline campaign");
        let off_bytes = std::fs::read(&off_path).expect("offline artifact");
        std::fs::remove_file(&off_path).ok();
        artifacts.push((format!("offline@{threads}"), off_bytes, Vec::new()));

        // Served: the same spec through the engine, streaming records.
        let srv_path = tmp.join(format!("sdc_det_srv_{pid}_{threads}.jsonl"));
        std::fs::remove_file(&srv_path).ok();
        let engine = Engine::new(EngineConfig::default());
        let req = format!(
            "{{\"cmd\":\"campaign\",\"id\":1,\"spec\":{},\"artifact\":{}}}",
            spec.to_json().to_line(),
            Json::str(srv_path.to_string_lossy()).to_line()
        );
        let mut events = Vec::new();
        let resp = engine.handle_line(&req, &mut |ev| {
            events.push(ev.field("record").unwrap().to_line());
        });
        assert!(resp.field("ok").unwrap().as_bool().unwrap(), "{}", resp.to_line());
        assert!(resp.field("result").unwrap().field("complete").unwrap().as_bool().unwrap());
        engine.drain();
        let srv_bytes = std::fs::read(&srv_path).expect("served artifact");
        std::fs::remove_file(&srv_path).ok();
        artifacts.push((format!("served@{threads}"), srv_bytes, events));
    }
    sdc_parallel::set_threads(0);

    let (name0, reference, _) = &artifacts[0];
    assert!(!reference.is_empty());
    for (name, bytes, events) in &artifacts[1..] {
        assert_eq!(bytes, reference, "{name} artifact must be byte-identical to {name0}");
        if !events.is_empty() {
            // The streamed records are exactly the artifact's lines.
            let artifact_lines: Vec<String> =
                String::from_utf8(bytes.clone()).unwrap().lines().map(String::from).collect();
            assert_eq!(events, &artifact_lines, "{name} stream must mirror the artifact");
        }
    }
}

//! Shard-routing determinism over real sockets: the same request
//! sequence played through a 1-shard and a 3-shard cluster must produce
//! the same bytes as the offline engine, replicas must serve, and
//! misrouted requests must name the owner.

use sdc_campaigns::json::Json;
use sdc_server::{
    serve, shard_of, Client, ClusterClient, Engine, EngineConfig, ServerHandle, ShardSpec,
};
use std::sync::Arc;

fn start_cluster(count: u64) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..count {
        let engine = Arc::new(Engine::new(EngineConfig {
            threads: 0,
            queue_cap: 16,
            batch_max: 4,
            shard: Some(ShardSpec { index, count }),
        }));
        let handle = serve(engine, "127.0.0.1:0").expect("bind shard");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

fn shutdown_cluster(handles: Vec<ServerHandle>, cluster: &mut ClusterClient) {
    for frame in cluster.request_lines("{\"cmd\":\"shutdown\"}").expect("shutdown") {
        let v = Json::parse(&frame).expect("frame");
        assert!(v.field("ok").unwrap().as_bool().unwrap(), "{frame}");
    }
    for handle in handles {
        handle.wait();
    }
}

/// The deterministic request sequence: named loads, plain solves,
/// trace-id-carrying solves (id-only and id+capture — the ids must
/// leave every response byte untouched), a not-found miss, a
/// replicate, and a pinned campaign. Every frame routes per-request
/// (no broadcasts), so output length is cluster-size-independent.
fn sequence() -> Vec<String> {
    vec![
        "{\"cmd\":\"load_matrix\",\"id\":1,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}".into(),
        "{\"cmd\":\"load_matrix\",\"id\":2,\"name\":\"q\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}".into(),
        "{\"cmd\":\"solve\",\"id\":3,\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":300,\
         \"trace\":{\"id\":\"trc-3\"}}".into(),
        "{\"cmd\":\"solve\",\"id\":4,\"matrix\":\"q\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\
         \"inner_iters\":10,\"detector\":\"restart_inner\",\
         \"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12},\
         \"trace\":{\"capture\":true,\"id\":\"trc-4\"}}".into(),
        "{\"cmd\":\"replicate\",\"id\":5,\"matrix\":\"p\"}".into(),
        "{\"cmd\":\"solve\",\"id\":6,\"matrix\":\"nope\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":10}".into(),
        format!(
            "{{\"cmd\":\"campaign\",\"id\":7,\"spec\":{}}}",
            sdc_campaigns::CampaignSpec {
                inner_iters: 6,
                outer_tol: 1e-8,
                outer_max: 60,
                stride: 9,
                ..sdc_campaigns::CampaignSpec::paper_shape(
                    "det",
                    vec![sdc_campaigns::ProblemSpec::Poisson { m: 8 }],
                )
            }
            .to_json()
            .to_line()
        ),
    ]
}

fn offline_baseline(requests: &[String]) -> Vec<String> {
    let engine = Engine::new(EngineConfig::default());
    let mut lines = Vec::new();
    for req in requests {
        let resp = engine.handle_line(req, &mut |ev| lines.push(ev.to_line()));
        lines.push(resp.to_line());
    }
    engine.drain();
    lines
}

#[test]
fn cluster_bytes_match_offline_at_one_and_three_shards() {
    let _guard = sdc_parallel::test_serial_guard();
    let requests = sequence();
    let reference = offline_baseline(&requests);
    assert!(!reference.is_empty());

    for count in [1u64, 3] {
        let (handles, addrs) = start_cluster(count);
        let mut cluster = ClusterClient::connect(&addrs).expect("connect cluster");
        let mut lines = Vec::new();
        for req in &requests {
            lines.extend(cluster.request_lines(req).expect("request"));
        }
        assert_eq!(lines, reference, "{count}-shard cluster must be byte-identical to offline");
        shutdown_cluster(handles, &mut cluster);
    }
}

#[test]
fn wrong_shard_names_the_owner_and_replicas_serve() {
    let _guard = sdc_parallel::test_serial_guard();
    let (handles, addrs) = start_cluster(2);
    let owner = shard_of("p", 2) as usize;
    let other = 1 - owner;

    let call = |addr: &str, line: &str| -> Json {
        let mut c = Client::connect_str(addr).expect("connect");
        let frames = c.request_lines(line).expect("request");
        Json::parse(frames.last().expect("non-empty")).expect("frame")
    };

    let load =
        "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}";
    let solve =
        "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"gmres\",\"tol\":1e-8,\"maxit\":300}";

    // A named load or a solve on the wrong shard is redirected, with
    // the owner's index in the message.
    for line in [load, solve] {
        let r = call(&addrs[other], line);
        assert!(!r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let err = r.field("error").unwrap();
        assert_eq!(err.field("code").unwrap().as_str().unwrap(), "wrong_shard");
        let msg = err.field("message").unwrap().as_str().unwrap().to_string();
        assert!(msg.contains(&format!("shard {owner}/2")), "{msg}");
    }

    // Owner accepts, solves, and pushes a replica to the peer.
    let r = call(&addrs[owner], load);
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
    let owner_solve = call(&addrs[owner], solve).to_line();
    let r = call(
        &addrs[owner],
        &format!("{{\"cmd\":\"replicate\",\"matrix\":\"p\",\"peers\":[\"{}\"]}}", addrs[other]),
    );
    assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());

    // The replica now serves the same solve, byte for byte, and each
    // shard reports its identity in stats.
    let replica_solve = call(&addrs[other], solve).to_line();
    assert_eq!(replica_solve, owner_solve);
    for (index, addr) in addrs.iter().enumerate() {
        let r = call(addr, "{\"cmd\":\"stats\"}");
        let shard = r.field("result").unwrap().field("shard").unwrap();
        assert_eq!(shard.field("index").unwrap().as_usize().unwrap(), index);
        assert_eq!(shard.field("count").unwrap().as_usize().unwrap(), 2);
    }

    let mut cluster = ClusterClient::connect(&addrs).expect("connect cluster");
    shutdown_cluster(handles, &mut cluster);
}

mod routing_properties {
    use proptest::prelude::*;
    use sdc_server::{shard_of, ShardSpec};

    fn key_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(0x20u8..0x7f, 0..40)
            .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
    }

    proptest! {
        // Every reference is owned by exactly one shard, and that
        // shard is the one `shard_of` names; routing is a pure
        // function of the reference string (repeated calls agree).
        #[test]
        fn every_key_routes_to_exactly_one_shard(
            key in key_strategy(),
            count in 1u64..8,
        ) {
            let owner = shard_of(&key, count);
            prop_assert!(owner < count);
            prop_assert_eq!(owner, shard_of(&key, count));
            let owners: Vec<u64> = (0..count)
                .filter(|&index| ShardSpec { index, count }.owns(&key))
                .collect();
            prop_assert_eq!(owners, vec![owner]);
        }
    }
}

//! Shard routing: which server process owns a registry reference.
//!
//! Scale-out model: N identical `serve --shard i/N` processes each own
//! a deterministic slice of the matrix key space. The routing rule is
//! a pure function of the *reference string the client uses* — an
//! alias like `"p"` or a content key like `"m1f0b3..."` — so any
//! client (or shell script) can compute the owner without talking to a
//! server:
//!
//! ```text
//! owner(reference, N) = fnv1a64(reference) % N
//! ```
//!
//! FNV-1a is the same hash family the registry uses for content keys,
//! and is trivially portable to other languages. A shard accepts
//! requests for references it owns, serves any matrix it actually
//! holds (replicas included — see `replicate`), and answers
//! `wrong_shard` with the owner's index for everything else, so a
//! misrouted client can self-correct.
//!
//! [`route_frame`] classifies a raw request frame for the cluster
//! client: route by reference, pin to shard 0 (campaigns, which hold a
//! server-wide lock), or broadcast (stats/metrics/list/shutdown).

use sdc_campaigns::json::Json;

/// 64-bit FNV-1a — matches `registry::content_key`'s hash family.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The shard index (in `0..shards`) that owns `reference`. A
/// single-shard "cluster" owns everything.
pub fn shard_of(reference: &str, shards: u64) -> u64 {
    if shards <= 1 {
        0
    } else {
        fnv1a(reference.as_bytes()) % shards
    }
}

/// A server's identity within a cluster: shard `index` of `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub index: u64,
    pub count: u64,
}

impl ShardSpec {
    /// Parse the `--shard i/N` syntax (`0 <= i < N`, `N >= 1`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let err = || format!("invalid shard spec '{s}' (expected i/N with 0 <= i < N)");
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let index: u64 = i.trim().parse().map_err(|_| err())?;
        let count: u64 = n.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }

    pub fn owns(&self, reference: &str) -> bool {
        shard_of(reference, self.count) == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// How the cluster client should deliver one request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Hash this reference and send to its owner shard.
    Reference(String),
    /// Send to shard 0 (commands serialized by a server-wide lock).
    Pinned,
    /// Send to every shard in index order, concatenating the frames.
    Broadcast,
}

/// Classify a raw frame for cluster routing. Errors are protocol-level
/// (the frame could never be routed deterministically), not transport
/// failures.
pub fn route_frame(v: &Json) -> Result<Routing, String> {
    let cmd = v
        .get("cmd")
        .and_then(|j| j.as_str().ok())
        .ok_or_else(|| "frame has no string \"cmd\" field".to_string())?;
    let reference = |field: &str| -> Result<Routing, String> {
        match v.get(field).and_then(|j| j.as_str().ok()) {
            Some(r) => Ok(Routing::Reference(r.to_string())),
            None => {
                Err(format!("cluster routing needs a string \"{field}\" field on \"{cmd}\" frames"))
            }
        }
    };
    match cmd {
        "solve" | "replicate" => reference("matrix"),
        // The name is the routing key; an anonymous load has no
        // deterministic owner.
        "load_matrix" => reference("name").map_err(|_| {
            "cluster routing needs load_matrix frames to carry a \"name\" (the routing key)"
                .to_string()
        }),
        "campaign" => Ok(Routing::Pinned),
        "stats" | "metrics" | "list" | "shutdown" => Ok(Routing::Broadcast),
        other => Err(format!("unknown command \"{other}\" cannot be routed")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parse_accepts_valid_and_rejects_garbage() {
        assert_eq!(ShardSpec::parse("0/1").unwrap(), ShardSpec { index: 0, count: 1 });
        assert_eq!(ShardSpec::parse("2/3").unwrap(), ShardSpec { index: 2, count: 3 });
        assert_eq!(ShardSpec::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["", "1", "3/3", "5/2", "-1/2", "a/b", "1/0", "1//2"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn ownership_partitions_the_key_space() {
        for n in 1..6u64 {
            for key in ["p", "q", "bench", "m0123456789abcdef", "poisson_100"] {
                let owner = shard_of(key, n);
                assert!(owner < n);
                let owners: Vec<u64> =
                    (0..n).filter(|&i| ShardSpec { index: i, count: n }.owns(key)).collect();
                assert_eq!(owners, vec![owner], "exactly one shard owns {key} at N={n}");
            }
        }
    }

    #[test]
    fn route_frame_classification() {
        let parse = |s: &str| Json::parse(s).unwrap();
        assert_eq!(
            route_frame(&parse("{\"cmd\":\"solve\",\"matrix\":\"p\"}")).unwrap(),
            Routing::Reference("p".into())
        );
        assert_eq!(
            route_frame(&parse("{\"cmd\":\"replicate\",\"matrix\":\"m0f\"}")).unwrap(),
            Routing::Reference("m0f".into())
        );
        assert_eq!(
            route_frame(&parse("{\"cmd\":\"load_matrix\",\"name\":\"p\"}")).unwrap(),
            Routing::Reference("p".into())
        );
        assert_eq!(route_frame(&parse("{\"cmd\":\"campaign\"}")).unwrap(), Routing::Pinned);
        for cmd in ["stats", "metrics", "list", "shutdown"] {
            assert_eq!(
                route_frame(&parse(&format!("{{\"cmd\":\"{cmd}\"}}"))).unwrap(),
                Routing::Broadcast
            );
        }
        assert!(route_frame(&parse("{\"cmd\":\"load_matrix\"}")).is_err());
        assert!(route_frame(&parse("{\"cmd\":\"solve\"}")).is_err());
        assert!(route_frame(&parse("{\"nope\":1}")).is_err());
    }
}

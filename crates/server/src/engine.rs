//! The request engine: everything the service does, minus the sockets.
//!
//! [`Engine::handle_line`] maps one request frame to one final response
//! frame (plus streamed event frames through a sink). The TCP layer
//! ([`crate::server`]) and the offline mode of `solve-client` both call
//! it, which is what makes the served-vs-offline byte-diff meaningful:
//! there is exactly one implementation of the service semantics.
//!
//! Determinism contract: for a fixed request sequence, every `result`
//! frame the engine produces is a pure function of that sequence — no
//! timestamps, no paths, no thread-count-dependent values. (`stats` and
//! `list` report live state and are exempt.) Every solver kernel below
//! is bitwise thread-count-independent, so the contract holds at any
//! `--threads` setting; `tests/determinism.rs` pins it.

use crate::metrics::Metrics;
use crate::protocol::{
    error_response, event_response, ok_response, CampaignRequest, ErrorCode, LoadMatrixRequest,
    MatrixSource, Request, SolveRequest, SolverKind, PROTOCOL_VERSION,
};
use crate::registry::MatrixRegistry;
use crate::scheduler::{Scheduler, SolveJob, SubmitError};
use sdc_campaigns::json::{fmt_f64, Json};
use sdc_campaigns::{Problem, RunOptions};
use sdc_faults::campaign::{CampaignPoint, FaultTarget};
use sdc_faults::NoFaults;
use sdc_gmres::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` snapshots the current `sdc_parallel` setting
    /// (`SDC_THREADS` / hardware default); nonzero pins the pool once.
    /// Either way the value is frozen at construction: the protocol has
    /// no way to change it, and `stats` reports it for the lifetime of
    /// the engine.
    pub threads: usize,
    /// Solve-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Max same-matrix solves per scheduler dispatch.
    pub batch_max: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { threads: 0, queue_cap: 64, batch_max: 8 }
    }
}

/// The service brain: registry + scheduler + metrics + handlers.
pub struct Engine {
    registry: MatrixRegistry,
    /// Shared counters (the TCP layer updates connection gauges).
    pub metrics: Arc<Metrics>,
    scheduler: Scheduler,
    /// Pool size frozen at construction.
    threads: usize,
    shutdown: AtomicBool,
    /// Serializes campaign jobs: two concurrent jobs could otherwise
    /// race on one artifact file.
    campaign_lock: Mutex<()>,
}

impl Engine {
    /// Builds an engine, freezing the worker-pool size (see
    /// [`EngineConfig::threads`]).
    pub fn new(cfg: EngineConfig) -> Self {
        let threads = if cfg.threads > 0 {
            sdc_parallel::set_threads(cfg.threads);
            cfg.threads
        } else {
            sdc_parallel::threads()
        };
        let metrics = Arc::new(Metrics::new());
        Self {
            registry: MatrixRegistry::new(),
            metrics: metrics.clone(),
            scheduler: Scheduler::new(cfg.queue_cap, cfg.batch_max, metrics),
            threads,
            shutdown: AtomicBool::new(false),
            campaign_lock: Mutex::new(()),
        }
    }

    /// The frozen worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True once a `shutdown` request was processed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Relaxed)
    }

    /// Finishes all queued solves and stops the scheduler.
    pub fn drain(&self) {
        self.scheduler.drain();
    }

    /// Handles one raw frame. Event frames stream through `sink`; the
    /// returned frame is final. Never panics on client input.
    pub fn handle_line(&self, line: &str, sink: &mut dyn FnMut(&Json)) -> Json {
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                return error_response(
                    None,
                    ErrorCode::BadRequest,
                    format!("malformed frame: {e}"),
                );
            }
        };
        let id = v.get("id").cloned();
        let req = match Request::from_json(&v) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                return error_response(id.as_ref(), ErrorCode::BadRequest, e.msg);
            }
        };
        self.handle(&req, id.as_ref(), sink)
    }

    /// Handles one parsed request.
    pub fn handle(&self, req: &Request, id: Option<&Json>, sink: &mut dyn FnMut(&Json)) -> Json {
        self.metrics.count_request(req.cmd());
        // Once draining, only observation and (idempotent) shutdown are
        // served; new work of any kind — not just solves — is refused,
        // so a drain cannot be delayed indefinitely.
        if self.shutdown_requested()
            && !matches!(req, Request::Stats | Request::Metrics | Request::List | Request::Shutdown)
        {
            return error_response(id, ErrorCode::ShuttingDown, "server is draining");
        }
        match req {
            Request::LoadMatrix(r) => self.handle_load(r, id),
            Request::Solve(r) => self.handle_solve(r, id),
            Request::Campaign(r) => self.handle_campaign(r, id, sink),
            Request::Stats => ok_response(id, self.stats()),
            Request::Metrics => ok_response(id, self.prometheus()),
            Request::List => ok_response(id, self.list()),
            Request::Shutdown => {
                self.shutdown.store(true, Relaxed);
                ok_response(id, Json::obj(vec![("draining", Json::Bool(true))]))
            }
        }
    }

    // ---- load_matrix ----

    fn handle_load(&self, r: &LoadMatrixRequest, id: Option<&Json>) -> Json {
        let problem = match build_problem(&r.source) {
            Ok(p) => p,
            Err(msg) => {
                self.metrics.protocol_errors.inc();
                return error_response(id, ErrorCode::BadRequest, msg);
            }
        };
        let (key, problem, cached) = self.registry.insert(r.name.as_deref(), problem);
        if cached {
            self.metrics.cache_hits.inc();
        } else {
            self.metrics.cache_misses.inc();
        }
        // The content key and hit/miss verdict are pure functions of the
        // request sequence, so this is a Det-channel event.
        if sdc_obs::enabled() {
            static EV_LOOKUP: sdc_obs::Callsite =
                sdc_obs::Callsite { name: "registry.lookup", channel: sdc_obs::Channel::Det };
            sdc_obs::Event::new(&EV_LOOKUP)
                .str("key", key.clone())
                .bool("cached", cached)
                .u64("nnz", problem.a.nnz() as u64)
                .emit();
        }
        let mut fields = vec![
            ("key", Json::str(&key)),
            ("cached", Json::Bool(cached)),
            ("rows", Json::Num(problem.a.nrows() as f64)),
            ("cols", Json::Num(problem.a.ncols() as f64)),
            ("nnz", Json::Num(problem.a.nnz() as f64)),
        ];
        if let Some(name) = &r.name {
            fields.push(("name", Json::str(name)));
        }
        ok_response(id, Json::obj(fields))
    }

    // ---- solve ----

    fn handle_solve(&self, r: &SolveRequest, id: Option<&Json>) -> Json {
        let Some((key, problem)) = self.registry.resolve(&r.matrix) else {
            return error_response(
                id,
                ErrorCode::NotFound,
                format!("unknown matrix '{}' (load_matrix it first, or see list)", r.matrix),
            );
        };
        if let Some(b) = &r.b {
            if b.len() != problem.a.nrows() {
                return error_response(
                    id,
                    ErrorCode::BadRequest,
                    format!("b has {} entries; matrix has {} rows", b.len(), problem.a.nrows()),
                );
            }
        }

        let started = Instant::now();
        let (tx, rx) = mpsc::channel::<Result<(Json, SolveSummary), String>>();
        let req = r.clone();
        let job_problem = problem.clone();
        let job_key = key.clone();
        // `trace: true` captures the Det event stream of exactly this
        // solve: the sink is installed thread-locally around
        // execute_solve *on the worker that runs it*, so concurrent
        // solves cannot bleed into each other's traces and the captured
        // lines stay a pure function of the request sequence.
        let sink = r.trace.then(|| Arc::new(sdc_obs::trace::TraceSink::new()));
        let job_sink = sink.clone();
        let job = SolveJob {
            matrix_key: key,
            run: Box::new(move || {
                let solve = || execute_solve(&job_problem, &job_key, &req);
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job_sink {
                        Some(s) => sdc_obs::with_local(s.clone(), solve),
                        None => solve(),
                    }));
                let _ = tx.send(match out {
                    Ok(res) => res,
                    Err(_) => Err("solver panicked".into()),
                });
            }),
        };
        match self.scheduler.submit(job) {
            Err(SubmitError::Busy) => {
                return error_response(
                    id,
                    ErrorCode::Busy,
                    format!(
                        "solve queue full (capacity {}); retry later",
                        self.scheduler.capacity()
                    ),
                );
            }
            Err(SubmitError::Draining) => {
                return error_response(id, ErrorCode::ShuttingDown, "server is draining");
            }
            Ok(()) => {}
        }
        let outcome = rx.recv();
        self.metrics.solve_latency.record(started.elapsed().as_micros() as u64);
        match outcome {
            Ok(Ok((mut result, summary))) => {
                self.record_solve_metrics(&summary);
                if let Some(s) = &sink {
                    if let Json::Obj(fields) = &mut result {
                        let lines = s.det_lines().into_iter().map(Json::str).collect();
                        fields.insert("trace".into(), Json::Arr(lines));
                    }
                }
                ok_response(id, result)
            }
            Ok(Err(msg)) => {
                self.metrics.solves_unconverged.inc();
                error_response(id, ErrorCode::Internal, msg)
            }
            Err(_) => error_response(id, ErrorCode::Internal, "solve worker disappeared"),
        }
    }

    fn record_solve_metrics(&self, s: &SolveSummary) {
        if s.converged {
            self.metrics.solves_converged.inc();
        } else {
            self.metrics.solves_unconverged.inc();
        }
        self.metrics.detector_events.add(s.detector_events as u64);
        self.metrics.injections_committed.add(s.injections as u64);
        self.metrics.inner_rejections.add(s.inner_rejections as u64);
    }

    // ---- campaign ----

    fn handle_campaign(
        &self,
        r: &CampaignRequest,
        id: Option<&Json>,
        sink: &mut dyn FnMut(&Json),
    ) -> Json {
        let _serial = self.campaign_lock.lock().unwrap_or_else(|e| e.into_inner());
        let scratch;
        let (artifact, persistent) = match &r.artifact {
            Some(p) => (p.clone(), true),
            None => {
                // Scratch name: unique per job within the process.
                static JOB_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                scratch = std::env::temp_dir().join(format!(
                    "sdc_server_job_{}_{}.jsonl",
                    std::process::id(),
                    JOB_SEQ.fetch_add(1, Relaxed)
                ));
                std::fs::remove_file(&scratch).ok();
                (scratch, false)
            }
        };
        let resume = artifact.exists();
        let (tx, rx) = mpsc::channel::<Json>();
        let spec = r.spec.clone();
        let opts = RunOptions {
            quiet: true,
            on_record: Some(Arc::new(move |rec: &sdc_campaigns::artifact::Record| {
                let _ = tx.send(rec.to_json());
            })),
            ..Default::default()
        };
        let job_artifact = artifact.clone();
        let job =
            std::thread::spawn(move || sdc_campaigns::run(&spec, &job_artifact, resume, &opts));
        // Stream records as the artifact gains them; the channel closes
        // when the run returns (the hook's sender is dropped with opts).
        for rec in rx {
            self.metrics.campaign_records_streamed.inc();
            sink(&event_response(id, "record", vec![("record", rec)]));
        }
        let summary = match job.join() {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                if !persistent {
                    std::fs::remove_file(&artifact).ok();
                }
                return error_response(id, ErrorCode::BadRequest, format!("campaign failed: {e}"));
            }
            Err(_) => {
                if !persistent {
                    std::fs::remove_file(&artifact).ok();
                }
                return error_response(id, ErrorCode::Internal, "campaign job panicked");
            }
        };
        self.metrics.campaigns_completed.inc();
        if !persistent {
            std::fs::remove_file(&artifact).ok();
        }
        let mut fields = vec![
            ("total_units", Json::Num(summary.total_units as f64)),
            ("skipped_units", Json::Num(summary.skipped_units as f64)),
            ("ran_units", Json::Num(summary.ran_units as f64)),
            ("remaining_units", Json::Num(summary.remaining_units as f64)),
            ("complete", Json::Bool(summary.is_complete())),
        ];
        if persistent {
            fields.push(("artifact", Json::str(artifact.to_string_lossy())));
            fields.push(("resumed", Json::Bool(resume)));
        }
        ok_response(id, Json::obj(fields))
    }

    // ---- stats / list ----

    /// The `metrics` command: Prometheus text plus the flat series map
    /// (the machine-readable face the bench gate consumes).
    fn prometheus(&self) -> Json {
        // Server-level gauges are set at exposition time so the text is
        // self-describing, like the `stats` object.
        self.metrics.server_threads.set(self.threads as u64);
        self.metrics.simd_lanes.set(sdc_sparse::simd::active().lanes() as u64);
        self.metrics.queue_capacity.set(self.scheduler.capacity() as u64);
        self.metrics.matrices_registered.set(self.registry.len() as u64);
        self.metrics.draining.set(self.shutdown_requested() as u64);
        let series: std::collections::BTreeMap<String, Json> =
            self.metrics.series().into_iter().map(|(k, v)| (k, Json::Num(v as f64))).collect();
        Json::obj(vec![
            ("prometheus", Json::str(self.metrics.render_prometheus())),
            ("series", Json::Obj(series)),
        ])
    }

    fn stats(&self) -> Json {
        self.metrics.snapshot(vec![
            ("protocol_version", Json::Num(PROTOCOL_VERSION as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("simd", Json::str(sdc_sparse::simd::active().as_str())),
            ("queue_capacity", Json::Num(self.scheduler.capacity() as f64)),
            ("batch_max", Json::Num(self.scheduler.batch_max() as f64)),
            ("matrices", Json::Num(self.registry.len() as f64)),
            ("draining", Json::Bool(self.shutdown_requested())),
        ])
    }

    fn list(&self) -> Json {
        let entries = self
            .registry
            .list()
            .into_iter()
            .map(|m| {
                Json::obj(vec![
                    ("key", Json::str(&m.key)),
                    ("names", Json::Arr(m.names.iter().map(Json::str).collect())),
                    ("problem", Json::str(&m.problem)),
                    ("rows", Json::Num(m.rows as f64)),
                    ("cols", Json::Num(m.cols as f64)),
                    ("nnz", Json::Num(m.nnz as f64)),
                    ("in_use", Json::Num(m.in_use as f64)),
                ])
            })
            .collect();
        Json::obj(vec![("matrices", Json::Arr(entries))])
    }
}

/// Builds the [`Problem`] a `load_matrix` source describes.
fn build_problem(source: &MatrixSource) -> Result<Problem, String> {
    match source {
        MatrixSource::Problem(spec) => {
            // ProblemSpec::build panics on unreadable files; keep that a
            // structured error at the protocol boundary.
            std::panic::catch_unwind(|| spec.build())
                .map_err(|_| "problem spec failed to build (unreadable path?)".to_string())
        }
        MatrixSource::Coo { rows, cols, entries } => {
            let mut coo = sdc_sparse::CooMatrix::new(*rows, *cols);
            for &(i, j, v) in entries {
                if i >= *rows || j >= *cols {
                    return Err(format!("coo entry ({i},{j}) out of bounds {rows}x{cols}"));
                }
                coo.push(i, j, v);
            }
            Ok(Problem::with_ones_solution(format!("coo {rows}x{cols}"), coo.to_csr()))
        }
        MatrixSource::MatrixMarket(text) => {
            let a = sdc_sparse::io::read_matrix_market_from(std::io::Cursor::new(text.as_bytes()))
                .map_err(|e| format!("bad matrix market content: {e}"))?;
            Ok(Problem::with_ones_solution(format!("mtx inline {}x{}", a.nrows(), a.ncols()), a))
        }
    }
}

/// Runs one solve and renders its canonical result object. Pure: the
/// output depends only on `(problem, key, req)` — never on timing,
/// scheduling or thread count.
fn execute_solve(
    problem: &Problem,
    key: &str,
    req: &SolveRequest,
) -> Result<(Json, SolveSummary), String> {
    let op = problem.operator_tiered(req.format, req.kernel_tier);
    let op = &op;
    let b: &[f64] = req.b.as_deref().unwrap_or(&problem.b);
    // Built once per (matrix, kind) and cached on the registered
    // problem; an unfactorable matrix surfaces as a structured error.
    let precond = problem.precond(req.precond)?;
    // The Frobenius bound is an O(nnz) scan; build it only for the
    // solvers that wire a detector in (validate() rejects detector +
    // fgmres, which has no hook). A preconditioned iteration projects
    // `A·M⁻¹`, so its bound carries the `‖M⁻¹‖₂` estimate.
    let detector = || {
        req.detector.response().map(|resp| {
            if precond.is_none() {
                SdcDetector::with_frobenius_bound(&problem.a, resp)
            } else {
                SdcDetector::with_preconditioned_bound(&problem.a, precond, resp)
            }
        })
    };

    let (x, rep) = match req.solver {
        SolverKind::Gmres => {
            let cfg = GmresConfig {
                tol: req.tol,
                max_iters: req.maxit,
                restart: req.restart,
                lsq_policy: req.lsq.policy(),
                detector: detector(),
                ..Default::default()
            };
            gmres_solve_right_precond(op, b, None, &cfg, precond)
        }
        SolverKind::Fgmres => {
            let cfg = FgmresConfig {
                tol: req.tol,
                max_outer: req.maxit,
                lsq_policy: req.lsq.policy(),
                ..Default::default()
            };
            if precond.is_none() {
                let mut pm = sdc_gmres::fgmres::FixedPrecond(IdentityPrecond);
                sdc_gmres::fgmres::fgmres_solve(op, b, None, &cfg, &mut pm)
            } else {
                let mut pm = sdc_gmres::fgmres::FixedPrecond(precond);
                sdc_gmres::fgmres::fgmres_solve(op, b, None, &cfg, &mut pm)
            }
        }
        SolverKind::FtGmres => {
            let cfg = FtGmresConfig {
                outer: FgmresConfig { tol: req.tol, max_outer: req.maxit, ..Default::default() },
                inner_iters: req.inner_iters,
                inner_lsq_policy: req.lsq.policy(),
                inner_detector: detector(),
                ..Default::default()
            };
            match &req.fault {
                None => {
                    sdc_gmres::ftgmres::ftgmres_solve_precond(op, b, None, &cfg, precond, &NoFaults)
                }
                Some(f) => {
                    let point = CampaignPoint {
                        aggregate_iteration: f.aggregate,
                        inner_per_outer: req.inner_iters,
                        class: f.class,
                        position: f.position,
                    };
                    let inj = match f.target {
                        FaultTarget::Mgs => point.injector(),
                        // Opaque-preconditioner surface: corrupt a stored
                        // ILU factor slot, or flip one element of a
                        // transient Jacobi/Chebyshev application.
                        FaultTarget::Precond => match precond {
                            BuiltPrecond::Ilu0(ilu) => {
                                point.injector_precond_factor(ilu.factor_data().nnz())
                            }
                            _ => point.injector_precond_apply(problem.a.nrows()),
                        },
                    };
                    sdc_gmres::ftgmres::ftgmres_solve_precond(op, b, None, &cfg, precond, &inj)
                }
            }
        }
    };

    // Reliable true residual against the CSR source of truth.
    let mut r = vec![0.0; b.len()];
    sdc_gmres::operator::residual(&problem.a, b, &x, &mut r);
    let true_rel = sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(b).max(1e-300);

    let summary = SolveSummary::from_report(&rep);
    let mut fields = vec![
        ("matrix", Json::str(key)),
        ("solver", Json::str(req.solver.as_str())),
        ("resolved_format", Json::str(problem.resolved_format(req.format).as_str())),
        ("seed", Json::u64(req.seed)),
    ];
    // Like the request side, the tier appears in the result only when
    // non-default, keeping legacy response bytes unchanged.
    if req.kernel_tier != sdc_sparse::KernelTier::Strict {
        fields.push(("kernel_tier", Json::str(req.kernel_tier.as_str())));
    }
    fields.push(("summary", sdc_campaigns::summary_json(&summary)));
    fields.push(("true_rel_residual", Json::Num(true_rel)));
    if req.return_x {
        fields.push(("x", Json::Arr(x.iter().map(|&v| Json::Num(v)).collect())));
    }
    // fmt_f64 guarantees the serialized x parses back bit-identical;
    // assert the invariant cheaply on the first entry in debug builds.
    debug_assert!(
        x.is_empty() || fmt_f64(x[0]).parse::<f64>().unwrap().to_bits() == x[0].to_bits()
    );
    Ok((Json::obj(fields), summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig { threads: 0, queue_cap: 8, batch_max: 4 })
    }

    fn drive(e: &Engine, line: &str) -> (Vec<Json>, Json) {
        let mut events = Vec::new();
        let resp = e.handle_line(line, &mut |j| events.push(j.clone()));
        (events, resp)
    }

    #[test]
    fn load_solve_stats_list_flow() {
        let e = engine();
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"id\":1,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let key = r.field("result").unwrap().field("key").unwrap().as_str().unwrap().to_string();
        assert!(!r.field("result").unwrap().field("cached").unwrap().as_bool().unwrap());

        // Solve by alias and by key, gmres and ftgmres.
        for matref in ["p", key.as_str()] {
            for solver in ["gmres", "ftgmres"] {
                let (_, r) = drive(
                    &e,
                    &format!(
                        "{{\"cmd\":\"solve\",\"matrix\":\"{matref}\",\"solver\":\"{solver}\",\"tol\":1e-8,\"maxit\":200,\"inner_iters\":10}}"
                    ),
                );
                assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
                let summary = r.field("result").unwrap().field("summary").unwrap();
                assert!(summary.field("converged").unwrap().as_bool().unwrap());
                assert!(
                    r.field("result")
                        .unwrap()
                        .field("true_rel_residual")
                        .unwrap()
                        .as_f64()
                        .unwrap()
                        < 1e-6
                );
            }
        }

        let (_, r) = drive(&e, "{\"cmd\":\"stats\"}");
        let stats = r.field("result").unwrap();
        assert_eq!(stats.field("matrices").unwrap().as_usize().unwrap(), 1);
        assert_eq!(stats.field("requests").unwrap().field("solve").unwrap().as_usize().unwrap(), 4);
        assert_eq!(stats.field("threads").unwrap().as_usize().unwrap(), e.threads());
        assert_eq!(
            stats.field("solve_latency").unwrap().field("count").unwrap().as_usize().unwrap(),
            4
        );

        let (_, r) = drive(&e, "{\"cmd\":\"list\"}");
        let list = r.field("result").unwrap().field("matrices").unwrap();
        assert_eq!(list.as_arr().unwrap().len(), 1);
        assert_eq!(list.as_arr().unwrap()[0].field("key").unwrap().as_str().unwrap(), key);
        e.drain();
    }

    #[test]
    fn fastmath_solves_are_deterministic_and_isa_invariant() {
        use sdc_sparse::simd::{set_mode, test_mode_guard, SimdMode};
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        let solve = "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-8,\
             \"maxit\":200,\"inner_iters\":10,\"format\":\"csr\",\"kernel_tier\":\"fast_math\",\
             \"return_x\":true}";
        let _guard = test_mode_guard();
        set_mode(SimdMode::Scalar).unwrap();
        let (_, r1) = drive(&e, solve);
        assert!(r1.field("ok").unwrap().as_bool().unwrap(), "{}", r1.to_line());
        let result = r1.field("result").unwrap();
        // The tier is part of the result (elided only when strict).
        assert_eq!(result.field("kernel_tier").unwrap().as_str().unwrap(), "fast_math");
        assert!(result.field("summary").unwrap().field("converged").unwrap().as_bool().unwrap());
        // Deterministic run-to-run: the whole canonical frame repeats.
        let (_, r2) = drive(&e, solve);
        assert_eq!(r1.to_line(), r2.to_line());
        // Both fused bodies (scalar mul_add, AVX2 vfmadd) are correctly
        // rounded, so the response bytes are host/ISA-independent.
        if set_mode(SimdMode::Avx2).is_ok() {
            let (_, r3) = drive(&e, solve);
            assert_eq!(r1.to_line(), r3.to_line());
        }
        // Strict solves elide the tier field.
        let (_, rs) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-8,\
             \"maxit\":200,\"inner_iters\":10}",
        );
        assert!(rs.field("result").unwrap().get("kernel_tier").is_none());
        e.drain();
    }

    #[test]
    fn malformed_and_unknown_requests_return_structured_errors() {
        let e = engine();
        let (_, r) = drive(&e, "this is not json");
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "bad_request"
        );
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"nope\"}");
        assert_eq!(r.field("error").unwrap().field("code").unwrap().as_str().unwrap(), "not_found");
        assert_eq!(e.metrics.protocol_errors.get(), 1);
        e.drain();
    }

    #[test]
    fn faulted_ftgmres_solve_reports_injection_and_detection() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"restart_inner\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let s = r.field("result").unwrap().field("summary").unwrap();
        assert_eq!(s.field("injections").unwrap().as_usize().unwrap(), 1);
        assert!(s.field("detector_events").unwrap().as_usize().unwrap() >= 1);
        assert!(s.field("converged").unwrap().as_bool().unwrap());
        assert_eq!(e.metrics.injections_committed.get(), 1);
        e.drain();
    }

    #[test]
    fn preconditioned_solves_converge_for_every_kind_and_solver() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        for solver in ["gmres", "fgmres", "ftgmres"] {
            for precond in ["jacobi", "ilu0", "chebyshev"] {
                let (_, r) = drive(
                    &e,
                    &format!(
                        "{{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"{solver}\",\"precond\":\"{precond}\",\"tol\":1e-8,\"maxit\":200,\"inner_iters\":10}}"
                    ),
                );
                assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
                let res = r.field("result").unwrap();
                assert!(
                    res.field("summary").unwrap().field("converged").unwrap().as_bool().unwrap(),
                    "{solver}+{precond}: {}",
                    r.to_line()
                );
                assert!(
                    res.field("true_rel_residual").unwrap().as_f64().unwrap() < 1e-6,
                    "{solver}+{precond}"
                );
            }
        }
        e.drain();
    }

    #[test]
    fn opaque_precond_fault_is_injected_and_survived() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        // Transient per-apply flip (chebyshev, apply 3 of solve 1 — always
        // reached) and stored-factor corruption (ilu0, aggregate selects
        // the corrupted slot and is committed on the first apply).
        for (precond, aggregate) in [("chebyshev", 3), ("ilu0", 12)] {
            let (_, r) = drive(
                &e,
                &format!(
                    "{{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"precond\":\"{precond}\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"record\",\"fault\":{{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":{aggregate},\"target\":\"precond\"}}}}"
                ),
            );
            assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
            let s = r.field("result").unwrap().field("summary").unwrap();
            assert_eq!(
                s.field("injections").unwrap().as_usize().unwrap(),
                1,
                "{precond}: {}",
                r.to_line()
            );
            assert!(s.field("converged").unwrap().as_bool().unwrap(), "{precond}");
        }
        // target=precond without a preconditioner is a structured error.
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":1,\"target\":\"precond\"}}",
        );
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "bad_request"
        );
        e.drain();
    }

    #[test]
    fn inline_coo_and_mtx_sources_load_and_cache_hit() {
        let e = engine();
        let coo = "{\"cmd\":\"load_matrix\",\"coo\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0,4],[0,1,-1],[1,0,-1],[1,1,4]]}}";
        let (_, r1) = drive(&e, coo);
        assert!(r1.field("ok").unwrap().as_bool().unwrap(), "{}", r1.to_line());
        let key1 = r1.field("result").unwrap().field("key").unwrap().as_str().unwrap().to_string();

        // The same matrix as inline Matrix Market must hit the cache.
        let mtx = "%%MatrixMarket matrix coordinate real general\\n2 2 4\\n1 1 4.0\\n1 2 -1.0\\n2 1 -1.0\\n2 2 4.0\\n";
        let (_, r2) = drive(&e, &format!("{{\"cmd\":\"load_matrix\",\"mtx\":\"{mtx}\"}}"));
        assert!(r2.field("ok").unwrap().as_bool().unwrap(), "{}", r2.to_line());
        assert!(r2.field("result").unwrap().field("cached").unwrap().as_bool().unwrap());
        assert_eq!(r2.field("result").unwrap().field("key").unwrap().as_str().unwrap(), key1);
        assert_eq!(e.metrics.cache_hits.get(), 1);

        // Solve it with an explicit right-hand side and returned x.
        let (_, r) = drive(
            &e,
            &format!(
                "{{\"cmd\":\"solve\",\"matrix\":\"{key1}\",\"solver\":\"gmres\",\"b\":[3,3],\"tol\":1e-12,\"maxit\":10,\"return_x\":true}}"
            ),
        );
        let x = r.field("result").unwrap().field("x").unwrap();
        assert_eq!(x.as_arr().unwrap().len(), 2);
        for xi in x.as_arr().unwrap() {
            assert!((xi.as_f64().unwrap() - 1.0).abs() < 1e-10);
        }
        e.drain();
    }

    #[test]
    fn bad_rhs_and_bounds_are_structured_errors() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
        );
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"b\":[1,2,3]}");
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"coo\":{\"rows\":2,\"cols\":2,\"entries\":[[5,0,1]]}}",
        );
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert!(r
            .field("error")
            .unwrap()
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("out of bounds"));
        e.drain();
    }

    #[test]
    fn campaign_streams_records_and_scratch_artifact_is_removed() {
        let e = engine();
        let spec = sdc_campaigns::CampaignSpec {
            inner_iters: 6,
            outer_tol: 1e-8,
            outer_max: 60,
            stride: 9,
            ..sdc_campaigns::CampaignSpec::paper_shape(
                "served",
                vec![sdc_campaigns::ProblemSpec::Poisson { m: 8 }],
            )
        };
        let req =
            format!("{{\"cmd\":\"campaign\",\"id\":9,\"spec\":{}}}", spec.to_json().to_line());
        let (events, r) = drive(&e, &req);
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let total = r.field("result").unwrap().field("total_units").unwrap().as_usize().unwrap();
        assert!(r.field("result").unwrap().field("complete").unwrap().as_bool().unwrap());
        assert!(r.field("result").unwrap().get("artifact").is_none(), "scratch job leaks no path");
        // Streamed: header + 1 problem + 1 baseline + every unit.
        assert_eq!(events.len(), 3 + total);
        assert_eq!(events[0].field("event").unwrap().as_str().unwrap(), "record");
        assert_eq!(events[0].field("id").unwrap().as_usize().unwrap(), 9);
        assert_eq!(
            events[0].field("record").unwrap().field("kind").unwrap().as_str().unwrap(),
            "header"
        );
        e.drain();
    }

    #[test]
    fn shutdown_flags_and_rejects_followup_solves() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
        );
        let (_, r) = drive(&e, "{\"cmd\":\"shutdown\"}");
        assert!(r.field("ok").unwrap().as_bool().unwrap());
        assert!(e.shutdown_requested());
        e.drain();
        // Draining refuses ALL new work — solves, loads and campaigns —
        // not just scheduler submissions, so a drain cannot stall.
        for req in [
            "{\"cmd\":\"solve\",\"matrix\":\"p\"}",
            "{\"cmd\":\"load_matrix\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
            "{\"cmd\":\"campaign\",\"spec\":{}}",
        ] {
            let (_, r) = drive(&e, req);
            let code = r.field("error").unwrap().field("code").unwrap();
            // The empty campaign spec would be bad_request when not
            // draining; the drain gate must win for real specs, but a
            // parse error may fire first — accept either loud refusal.
            assert!(
                matches!(code.as_str().unwrap(), "shutting_down" | "bad_request"),
                "{}",
                r.to_line()
            );
        }
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\"}");
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "shutting_down"
        );
        // Observation stays available while draining.
        let (_, r) = drive(&e, "{\"cmd\":\"stats\"}");
        assert!(r.field("result").unwrap().field("draining").unwrap().as_bool().unwrap());
    }
}

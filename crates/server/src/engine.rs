//! The request engine: everything the service does, minus the sockets.
//!
//! [`Engine::handle_line`] maps one request frame to one final response
//! frame (plus streamed event frames through a sink). The TCP layer
//! ([`crate::server`]) and the offline mode of `solve-client` both call
//! it, which is what makes the served-vs-offline byte-diff meaningful:
//! there is exactly one implementation of the service semantics.
//!
//! Determinism contract: for a fixed request sequence, every `result`
//! frame the engine produces is a pure function of that sequence — no
//! timestamps, no paths, no thread-count-dependent values. (`stats` and
//! `list` report live state and are exempt.) Every solver kernel below
//! is bitwise thread-count-independent, so the contract holds at any
//! `--threads` setting; `tests/determinism.rs` pins it.

use crate::metrics::Metrics;
use crate::protocol::{
    error_response, event_response, ok_response, CampaignRequest, ErrorCode, LoadMatrixRequest,
    MatrixSource, ReplicateRequest, Request, SolveRequest, SolverKind, PROTOCOL_VERSION,
};
use crate::registry::MatrixRegistry;
use crate::scheduler::{Scheduler, SolveJob, SubmitError};
use crate::shard::{shard_of, ShardSpec};
use sdc_campaigns::json::{fmt_f64, Json};
use sdc_campaigns::{Problem, RunOptions};
use sdc_faults::campaign::{CampaignPoint, FaultTarget};
use sdc_faults::NoFaults;
use sdc_gmres::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// How the event loop receives frames from the engine: `emit(frame,
/// last)` is called once per streamed event (`last = false`) and
/// exactly once with the final frame (`last = true`). `Arc` because
/// long-running commands move it onto worker/background threads.
pub type Emit = Arc<dyn Fn(Json, bool) + Send + Sync>;

/// Per-request context a transport can attach to an async frame. The
/// engine's outputs never depend on it — hooks only steer side-band
/// observability (flight-recorder post-mortems).
#[derive(Default)]
pub struct SolveHooks {
    /// Queried once, when a solve finishes: `true` means the requesting
    /// connection died mid-solve and the response is undeliverable. The
    /// solve still completes (results are deterministic and metrics
    /// must count it), but its last moments are worth keeping — with a
    /// `--flight-dir` configured, the worker writes a post-mortem with
    /// reason `disconnect`.
    pub delivery_dead: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` snapshots the current `sdc_parallel` setting
    /// (`SDC_THREADS` / hardware default); nonzero pins the pool once.
    /// Either way the value is frozen at construction: the protocol has
    /// no way to change it, and `stats` reports it for the lifetime of
    /// the engine.
    pub threads: usize,
    /// Solve-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Max same-matrix solves per scheduler dispatch.
    pub batch_max: usize,
    /// Cluster identity (`--shard i/N`). `None` (the default) serves
    /// the whole key space; `Some` makes the engine refuse references
    /// owned by other shards with `wrong_shard` (replicas excepted).
    pub shard: Option<ShardSpec>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { threads: 0, queue_cap: 64, batch_max: 8, shard: None }
    }
}

/// The service brain: registry + scheduler + metrics + handlers.
pub struct Engine {
    registry: MatrixRegistry,
    /// Shared counters (the TCP layer updates connection gauges).
    pub metrics: Arc<Metrics>,
    scheduler: Scheduler,
    /// Pool size frozen at construction.
    threads: usize,
    shutdown: AtomicBool,
    /// Serializes campaign jobs: two concurrent jobs could otherwise
    /// race on one artifact file.
    campaign_lock: Mutex<()>,
    /// Cluster identity (None = unsharded).
    shard: Option<ShardSpec>,
    /// Threads running long commands dispatched from the async path
    /// (campaigns, replications); joined by [`Engine::drain`].
    background: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Post-mortem directory (`serve --flight-dir`). When set, every
    /// solve runs under a per-solve [`sdc_obs::flight::FlightRecorder`]
    /// and dumps it here when it ends badly.
    flight_dir: Mutex<Option<PathBuf>>,
}

impl Engine {
    /// Builds an engine, freezing the worker-pool size (see
    /// [`EngineConfig::threads`]).
    pub fn new(cfg: EngineConfig) -> Self {
        let threads = if cfg.threads > 0 {
            sdc_parallel::set_threads(cfg.threads);
            cfg.threads
        } else {
            sdc_parallel::threads()
        };
        let metrics = Arc::new(Metrics::new());
        metrics.shard_index.set(cfg.shard.map_or(0, |s| s.index));
        metrics.shard_count.set(cfg.shard.map_or(1, |s| s.count));
        Self {
            registry: MatrixRegistry::new(),
            metrics: metrics.clone(),
            scheduler: Scheduler::new(cfg.queue_cap, cfg.batch_max, metrics),
            threads,
            shutdown: AtomicBool::new(false),
            campaign_lock: Mutex::new(()),
            shard: cfg.shard,
            background: Mutex::new(Vec::new()),
            flight_dir: Mutex::new(None),
        }
    }

    /// Enables flight-recorder post-mortems, written to `dir` (created
    /// on first dump).
    pub fn set_flight_dir(&self, dir: PathBuf) {
        *self.flight_dir.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir);
    }

    /// The configured post-mortem directory, if any.
    pub fn flight_dir(&self) -> Option<PathBuf> {
        self.flight_dir.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The frozen worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cluster identity this engine was built with.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// True once a `shutdown` request was processed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Relaxed)
    }

    /// Finishes all queued solves, joins background command threads and
    /// stops the scheduler. Idempotent.
    pub fn drain(&self) {
        self.scheduler.drain();
        let jobs = std::mem::take(&mut *self.background.lock().unwrap_or_else(|e| e.into_inner()));
        for j in jobs {
            let _ = j.join();
        }
    }

    /// Runs `f` on a tracked background thread (joined by `drain`),
    /// sweeping already-finished handles so the list stays bounded.
    fn spawn_background(&self, f: impl FnOnce() + Send + 'static) {
        let mut jobs = self.background.lock().unwrap_or_else(|e| e.into_inner());
        jobs.retain(|j| !j.is_finished());
        jobs.push(std::thread::Builder::new().name("sdc-bg".into()).spawn(f).expect("spawn"));
    }

    /// Handles one raw frame. Event frames stream through `sink`; the
    /// returned frame is final. Never panics on client input.
    pub fn handle_line(&self, line: &str, sink: &mut dyn FnMut(&Json)) -> Json {
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                return error_response(
                    None,
                    ErrorCode::BadRequest,
                    format!("malformed frame: {e}"),
                );
            }
        };
        let id = v.get("id").cloned();
        let req = match Request::from_json(&v) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                return error_response(id.as_ref(), ErrorCode::BadRequest, e.msg);
            }
        };
        self.handle(&req, id.as_ref(), sink)
    }

    /// Handles one parsed request.
    pub fn handle(&self, req: &Request, id: Option<&Json>, sink: &mut dyn FnMut(&Json)) -> Json {
        self.metrics.count_request(req.cmd());
        if let Some(refusal) = self.drain_gate(req, id) {
            return refusal;
        }
        match req {
            Request::Solve(r) => self.handle_solve(r, id),
            Request::Campaign(r) => self.handle_campaign(r, id, sink),
            Request::Replicate(r) => self.handle_replicate(r, id),
            other => self.handle_quick(other, id),
        }
    }

    /// The drain policy: once draining, only observation and
    /// (idempotent) shutdown are served; new work of any kind — not
    /// just solves — is refused, so a drain cannot be delayed
    /// indefinitely.
    fn drain_gate(&self, req: &Request, id: Option<&Json>) -> Option<Json> {
        if self.shutdown_requested()
            && !matches!(req, Request::Stats | Request::Metrics | Request::List | Request::Shutdown)
        {
            return Some(error_response(id, ErrorCode::ShuttingDown, "server is draining"));
        }
        None
    }

    /// The commands that complete without blocking on solvers, peers or
    /// worker threads. Callers must have already counted the request
    /// and applied [`Engine::drain_gate`].
    fn handle_quick(&self, req: &Request, id: Option<&Json>) -> Json {
        match req {
            Request::LoadMatrix(r) => self.handle_load(r, id),
            Request::Stats => ok_response(id, self.stats()),
            Request::Metrics => ok_response(id, self.prometheus()),
            Request::List => ok_response(id, self.list()),
            Request::Shutdown => {
                self.shutdown.store(true, Relaxed);
                ok_response(id, Json::obj(vec![("draining", Json::Bool(true))]))
            }
            Request::Solve(_) | Request::Campaign(_) | Request::Replicate(_) => {
                unreachable!("blocking command routed to handle_quick")
            }
        }
    }

    /// The event loop's entry point: handles one raw frame without ever
    /// blocking the calling thread on a solve, campaign or peer push.
    /// Frames flow through `emit(frame, last)` — streamed events with
    /// `last = false`, then exactly one final frame with `last = true`,
    /// possibly from another thread after this call returned. The
    /// frames (and their order) are byte-identical to what
    /// [`Engine::handle_line`] produces for the same input; only the
    /// delivery is asynchronous.
    pub fn handle_line_async(self: &Arc<Self>, line: &str, emit: Emit) {
        self.handle_line_async_with(line, emit, SolveHooks::default());
    }

    /// [`Engine::handle_line_async`] with per-request [`SolveHooks`]
    /// attached (the event loop passes a delivery-death probe so a
    /// mid-solve disconnect can trigger a flight-recorder post-mortem).
    pub fn handle_line_async_with(self: &Arc<Self>, line: &str, emit: Emit, hooks: SolveHooks) {
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                let resp =
                    error_response(None, ErrorCode::BadRequest, format!("malformed frame: {e}"));
                return emit(resp, true);
            }
        };
        let id = v.get("id").cloned();
        let req = match Request::from_json(&v) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.protocol_errors.inc();
                return emit(error_response(id.as_ref(), ErrorCode::BadRequest, e.msg), true);
            }
        };
        self.metrics.count_request(req.cmd());
        if let Some(refusal) = self.drain_gate(&req, id.as_ref()) {
            return emit(refusal, true);
        }
        match req {
            Request::Solve(r) => {
                let done = {
                    let emit = emit.clone();
                    Box::new(move |resp| emit(resp, true))
                };
                if let Some(rejection) = self.start_solve(&r, id.as_ref(), done, hooks) {
                    emit(rejection, true);
                }
            }
            Request::Campaign(r) => {
                // Campaigns block on the campaign lock and run whole
                // sweep grids; never on the loop thread.
                let engine = self.clone();
                self.spawn_background(move || {
                    let mut sink = |ev: &Json| emit(ev.clone(), false);
                    let resp = engine.handle_campaign(&r, id.as_ref(), &mut sink);
                    emit(resp, true);
                });
            }
            Request::Replicate(r) => {
                // Peer pushes are synchronous TCP round trips.
                let engine = self.clone();
                self.spawn_background(move || {
                    emit(engine.handle_replicate(&r, id.as_ref()), true);
                });
            }
            other => emit(self.handle_quick(&other, id.as_ref()), true),
        }
    }

    // ---- load_matrix ----

    fn handle_load(&self, r: &LoadMatrixRequest, id: Option<&Json>) -> Json {
        // Sharded: a *named* load must land on the name's owner — the
        // name is the routing key later solves will hash — unless it is
        // an explicit replica push from the owner. Anonymous loads are
        // only addressable by content key, which routes wherever it
        // routes; accepting them anywhere keeps single-shard clients
        // working and the replica path needs no exemption logic.
        if let (Some(shard), Some(name), false) = (&self.shard, &r.name, r.replica) {
            let owner = shard_of(name, shard.count);
            if owner != shard.index {
                return error_response(
                    id,
                    ErrorCode::WrongShard,
                    format!(
                        "matrix name '{name}' routes to shard {owner}/{count}; this is shard \
                         {index}/{count} (set replica:true only for owner-driven copies)",
                        count = shard.count,
                        index = shard.index,
                    ),
                );
            }
        }
        let problem = match build_problem(&r.source) {
            Ok(p) => p,
            Err(msg) => {
                self.metrics.protocol_errors.inc();
                return error_response(id, ErrorCode::BadRequest, msg);
            }
        };
        let (key, problem, cached) = self.registry.insert(r.name.as_deref(), problem);
        if cached {
            self.metrics.cache_hits.inc();
        } else {
            self.metrics.cache_misses.inc();
        }
        // The content key and hit/miss verdict are pure functions of the
        // request sequence, so this is a Det-channel event.
        if sdc_obs::enabled() {
            static EV_LOOKUP: sdc_obs::Callsite =
                sdc_obs::Callsite { name: "registry.lookup", channel: sdc_obs::Channel::Det };
            sdc_obs::Event::new(&EV_LOOKUP)
                .str("key", key.clone())
                .bool("cached", cached)
                .u64("nnz", problem.a.nnz() as u64)
                .emit();
        }
        let mut fields = vec![
            ("key", Json::str(&key)),
            ("cached", Json::Bool(cached)),
            ("rows", Json::Num(problem.a.nrows() as f64)),
            ("cols", Json::Num(problem.a.ncols() as f64)),
            ("nnz", Json::Num(problem.a.nnz() as f64)),
        ];
        if let Some(name) = &r.name {
            fields.push(("name", Json::str(name)));
        }
        ok_response(id, Json::obj(fields))
    }

    // ---- solve ----

    /// Resolves a matrix reference or explains why it can't be: a
    /// sharded engine serves every matrix it actually holds (replicas
    /// included), answers `wrong_shard` with the owner's index for
    /// missing references it does not own, and `not_found` only for
    /// missing references it does.
    fn resolve_or_route(
        &self,
        reference: &str,
        id: Option<&Json>,
    ) -> Result<(String, Arc<Problem>), Json> {
        if let Some(found) = self.registry.resolve(reference) {
            return Ok(found);
        }
        if let Some(shard) = &self.shard {
            let owner = shard_of(reference, shard.count);
            if owner != shard.index {
                return Err(error_response(
                    id,
                    ErrorCode::WrongShard,
                    format!(
                        "matrix '{reference}' routes to shard {owner}/{count}; this is shard \
                         {index}/{count}",
                        count = shard.count,
                        index = shard.index,
                    ),
                ));
            }
        }
        Err(error_response(
            id,
            ErrorCode::NotFound,
            format!("unknown matrix '{reference}' (load_matrix it first, or see list)"),
        ))
    }

    /// Submits one solve to the scheduler without blocking on its
    /// completion. Returns `Some(response)` when the request was
    /// rejected synchronously (unknown matrix, bad rhs, queue full,
    /// draining) — `done` is dropped unused in that case. Otherwise the
    /// worker thread builds the final response (bytes identical to the
    /// blocking path) and hands it to `done`.
    fn start_solve(
        &self,
        r: &SolveRequest,
        id: Option<&Json>,
        done: Box<dyn FnOnce(Json) + Send>,
        hooks: SolveHooks,
    ) -> Option<Json> {
        let (key, problem) = match self.resolve_or_route(&r.matrix, id) {
            Ok(found) => found,
            Err(resp) => return Some(resp),
        };
        if let Some(b) = &r.b {
            if b.len() != problem.a.nrows() {
                return Some(error_response(
                    id,
                    ErrorCode::BadRequest,
                    format!("b has {} entries; matrix has {} rows", b.len(), problem.a.nrows()),
                ));
            }
        }

        let started = Instant::now();
        let req = r.clone();
        let job_key = key.clone();
        // `trace: true` captures the Det event stream of exactly this
        // solve: the sink is installed thread-locally around
        // execute_solve *on the worker that runs it*, so concurrent
        // solves cannot bleed into each other's traces and the captured
        // lines stay a pure function of the request sequence.
        let sink = r.trace.then(|| Arc::new(sdc_obs::trace::TraceSink::new()));
        // With `--flight-dir` set, every solve keeps a ring of its most
        // recent events (both channels) for a post-mortem.
        let flight = self.flight_dir().map(|dir| {
            (dir, Arc::new(sdc_obs::flight::FlightRecorder::new(sdc_obs::flight::DEFAULT_CAPACITY)))
        });
        let trace_id = r.trace_id.clone();
        let metrics = self.metrics.clone();
        let job_id = id.cloned();
        let job = SolveJob {
            matrix_key: key,
            trace_id: r.trace_id.clone(),
            run: Box::new(move || {
                let solve = || {
                    // The per-request root span: everything the solver
                    // opens below it (gmres.solve, pool.run, …) nests
                    // beneath this id in the span log.
                    static EV_SOLVE_EXEC: sdc_obs::Callsite =
                        sdc_obs::Callsite { name: "solve.exec", channel: sdc_obs::Channel::Timing };
                    let mut span = sdc_obs::span(&EV_SOLVE_EXEC);
                    if let Some(s) = &mut span {
                        s.str("matrix", job_key.clone()).str("solver", req.solver.as_str());
                    }
                    execute_solve(&problem, &job_key, &req)
                };
                // Compose the thread-local context inside-out: the det
                // sink closest to the solver, then the flight recorder
                // (sees both channels), then the trace id (read by
                // context-aware subscribers at render time — never by
                // anything that feeds det bytes).
                let mut body: Box<dyn FnOnce() -> Result<(Json, SolveSummary), String> + '_> =
                    Box::new(solve);
                if let Some(s) = &sink {
                    let (s, inner) = (s.clone(), body);
                    body = Box::new(move || sdc_obs::with_local(s, inner));
                }
                if let Some((_, rec)) = &flight {
                    let (rec, inner) = (rec.clone(), body);
                    body = Box::new(move || sdc_obs::with_local(rec, inner));
                }
                if let Some(tid) = &trace_id {
                    let (tid, inner) = (tid.clone(), body);
                    body = Box::new(move || sdc_obs::with_trace(tid, inner));
                }
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                // Release the registry borrow before the response can
                // leave: a client that has the final frame must not
                // still see this solve in `list`'s in_use count.
                drop(problem);
                let duration_us = started.elapsed().as_micros() as u64;
                metrics.solve_latency.record(duration_us);
                let id = job_id.as_ref();
                let (resp, dump_reason) = match out {
                    Ok(Ok((mut result, summary))) => {
                        metrics.record_solve(&summary);
                        if let Json::Obj(fields) = &mut result {
                            if let Some(s) = &sink {
                                let lines = s.det_lines().into_iter().map(Json::str).collect();
                                fields.insert("trace".into(), Json::Arr(lines));
                            }
                            if req.timing {
                                fields.insert("duration_us".into(), Json::u64(duration_us));
                            }
                        }
                        let reason = (summary.detector_events > 0).then_some("fault_detected");
                        (ok_response(id, result), reason)
                    }
                    Ok(Err(msg)) => {
                        metrics.solves_unconverged.inc();
                        (error_response(id, ErrorCode::Internal, msg), Some("solve_error"))
                    }
                    Err(_) => (
                        error_response(id, ErrorCode::Internal, "solver panicked"),
                        Some("solver_panic"),
                    ),
                };
                // A clean solve whose requester died mid-flight is still
                // dump-worthy: the response below goes nowhere.
                let dump_reason = dump_reason.or_else(|| {
                    hooks.delivery_dead.as_ref().is_some_and(|dead| dead()).then_some("disconnect")
                });
                if let Some((dir, rec)) = &flight {
                    if let Some(reason) = dump_reason {
                        let mut header = sdc_obs::Event::new(&sdc_obs::flight::HEADER)
                            .str("reason", reason)
                            .str("matrix", job_key.clone())
                            .str("solver", req.solver.as_str());
                        if let Some(tid) = &trace_id {
                            header = header.str("trace", tid.clone());
                        }
                        if write_flight_dump(dir, reason, &rec.dump(header)).is_ok() {
                            metrics.flight_dumps.inc();
                        }
                    }
                }
                done(resp);
            }),
        };
        match self.scheduler.submit(job) {
            Err(SubmitError::Busy) => Some(error_response(
                id,
                ErrorCode::Busy,
                format!("solve queue full (capacity {}); retry later", self.scheduler.capacity()),
            )),
            Err(SubmitError::Draining) => {
                Some(error_response(id, ErrorCode::ShuttingDown, "server is draining"))
            }
            Ok(()) => None,
        }
    }

    /// The blocking solve path (offline mode and [`Engine::handle`]):
    /// submit, then wait for the worker's response.
    fn handle_solve(&self, r: &SolveRequest, id: Option<&Json>) -> Json {
        let (tx, rx) = mpsc::channel::<Json>();
        match self.start_solve(
            r,
            id,
            Box::new(move |resp| drop(tx.send(resp))),
            SolveHooks::default(),
        ) {
            Some(rejection) => rejection,
            None => rx.recv().unwrap_or_else(|_| {
                error_response(id, ErrorCode::Internal, "solve worker disappeared")
            }),
        }
    }

    // ---- campaign ----

    fn handle_campaign(
        &self,
        r: &CampaignRequest,
        id: Option<&Json>,
        sink: &mut dyn FnMut(&Json),
    ) -> Json {
        let _serial = self.campaign_lock.lock().unwrap_or_else(|e| e.into_inner());
        let scratch;
        let (artifact, persistent) = match &r.artifact {
            Some(p) => (p.clone(), true),
            None => {
                // Scratch name: unique per job within the process.
                static JOB_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                scratch = std::env::temp_dir().join(format!(
                    "sdc_server_job_{}_{}.jsonl",
                    std::process::id(),
                    JOB_SEQ.fetch_add(1, Relaxed)
                ));
                std::fs::remove_file(&scratch).ok();
                (scratch, false)
            }
        };
        let resume = artifact.exists();
        let (tx, rx) = mpsc::channel::<Json>();
        let spec = r.spec.clone();
        let opts = RunOptions {
            quiet: true,
            on_record: Some(Arc::new(move |rec: &sdc_campaigns::artifact::Record| {
                let _ = tx.send(rec.to_json());
            })),
            ..Default::default()
        };
        let job_artifact = artifact.clone();
        let job =
            std::thread::spawn(move || sdc_campaigns::run(&spec, &job_artifact, resume, &opts));
        // Stream records as the artifact gains them; the channel closes
        // when the run returns (the hook's sender is dropped with opts).
        for rec in rx {
            self.metrics.campaign_records_streamed.inc();
            sink(&event_response(id, "record", vec![("record", rec)]));
        }
        let summary = match job.join() {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                if !persistent {
                    std::fs::remove_file(&artifact).ok();
                }
                return error_response(id, ErrorCode::BadRequest, format!("campaign failed: {e}"));
            }
            Err(_) => {
                if !persistent {
                    std::fs::remove_file(&artifact).ok();
                }
                return error_response(id, ErrorCode::Internal, "campaign job panicked");
            }
        };
        self.metrics.campaigns_completed.inc();
        if !persistent {
            std::fs::remove_file(&artifact).ok();
        }
        let mut fields = vec![
            ("total_units", Json::Num(summary.total_units as f64)),
            ("skipped_units", Json::Num(summary.skipped_units as f64)),
            ("ran_units", Json::Num(summary.ran_units as f64)),
            ("remaining_units", Json::Num(summary.remaining_units as f64)),
            ("complete", Json::Bool(summary.is_complete())),
        ];
        if persistent {
            fields.push(("artifact", Json::str(artifact.to_string_lossy())));
            fields.push(("resumed", Json::Bool(resume)));
        }
        ok_response(id, Json::obj(fields))
    }

    // ---- replicate ----

    /// Pushes a held matrix to each peer as a `replica:true` load with
    /// round-trip-exact COO triplets, verifying every peer derives the
    /// same content key (bit divergence is a hard error, exactly like
    /// the registry's own collision check). The response mentions only
    /// the matrix — not the peers — so a cluster-routed replicate (the
    /// client fills in the peer list) byte-matches the offline baseline
    /// (no peers at all).
    fn handle_replicate(&self, r: &ReplicateRequest, id: Option<&Json>) -> Json {
        let (key, problem) = match self.resolve_or_route(&r.matrix, id) {
            Ok(found) => found,
            Err(resp) => return resp,
        };
        if !r.peers.is_empty() {
            // Serialize once; values as f64 survive the wire exactly
            // (fmt_f64 is round-trip-exact).
            let a = &problem.a;
            let mut entries = Vec::with_capacity(a.nnz());
            for row in 0..a.nrows() {
                let (cols, vals) = a.row(row);
                for (c, v) in cols.iter().zip(vals) {
                    entries.push((row, *c, *v));
                }
            }
            let load = Request::LoadMatrix(LoadMatrixRequest {
                // Propagate the alias only when the client routed by
                // one, so replicas answer to the same names.
                name: (r.matrix != key).then(|| r.matrix.clone()),
                source: MatrixSource::Coo { rows: a.nrows(), cols: a.ncols(), entries },
                replica: true,
            });
            let frame = load.to_json();
            for peer in &r.peers {
                let mut client = match crate::client::Client::connect_str(peer) {
                    Ok(c) => c,
                    Err(e) => {
                        return error_response(
                            id,
                            ErrorCode::Internal,
                            format!("cannot reach peer {peer}: {e}"),
                        );
                    }
                };
                let resp = match client.call(&frame) {
                    Ok(resp) => resp,
                    Err(e) => {
                        return error_response(
                            id,
                            ErrorCode::Internal,
                            format!("replica push to {peer} failed: {e}"),
                        );
                    }
                };
                let peer_key =
                    resp.get("result").and_then(|res| res.get("key")).and_then(|k| k.as_str().ok());
                if !resp.get("ok").map(|ok| ok.as_bool().unwrap_or(false)).unwrap_or(false)
                    || peer_key != Some(key.as_str())
                {
                    return error_response(
                        id,
                        ErrorCode::Internal,
                        format!(
                            "replica diverged on {peer}: expected key {key}, got {}",
                            resp.to_line()
                        ),
                    );
                }
                self.metrics.replications.inc();
            }
        }
        ok_response(id, Json::obj(vec![("key", Json::str(&key)), ("matrix", Json::str(&r.matrix))]))
    }

    // ---- stats / list ----

    /// The `metrics` command: Prometheus text plus the flat series map
    /// (the machine-readable face the bench gate consumes).
    fn prometheus(&self) -> Json {
        // Server-level gauges are set at exposition time so the text is
        // self-describing, like the `stats` object.
        self.metrics.server_threads.set(self.threads as u64);
        self.metrics.simd_lanes.set(sdc_sparse::simd::active().lanes() as u64);
        self.metrics.queue_capacity.set(self.scheduler.capacity() as u64);
        self.metrics.matrices_registered.set(self.registry.len() as u64);
        self.metrics.draining.set(self.shutdown_requested() as u64);
        let series: std::collections::BTreeMap<String, Json> =
            self.metrics.series().into_iter().map(|(k, v)| (k, Json::Num(v as f64))).collect();
        Json::obj(vec![
            ("prometheus", Json::str(self.metrics.render_prometheus())),
            ("series", Json::Obj(series)),
        ])
    }

    fn stats(&self) -> Json {
        let mut server = vec![
            ("protocol_version", Json::Num(PROTOCOL_VERSION as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("simd", Json::str(sdc_sparse::simd::active().as_str())),
            ("queue_capacity", Json::Num(self.scheduler.capacity() as f64)),
            ("batch_max", Json::Num(self.scheduler.batch_max() as f64)),
            ("matrices", Json::Num(self.registry.len() as f64)),
            ("draining", Json::Bool(self.shutdown_requested())),
        ];
        // Only sharded servers report an identity: the unsharded stats
        // object's bytes are pinned by goldens and stay unchanged.
        if let Some(shard) = &self.shard {
            server.push((
                "shard",
                Json::obj(vec![
                    ("index", Json::Num(shard.index as f64)),
                    ("count", Json::Num(shard.count as f64)),
                ]),
            ));
        }
        self.metrics.snapshot(server)
    }

    fn list(&self) -> Json {
        let entries = self
            .registry
            .list()
            .into_iter()
            .map(|m| {
                Json::obj(vec![
                    ("key", Json::str(&m.key)),
                    ("names", Json::Arr(m.names.iter().map(Json::str).collect())),
                    ("problem", Json::str(&m.problem)),
                    ("rows", Json::Num(m.rows as f64)),
                    ("cols", Json::Num(m.cols as f64)),
                    ("nnz", Json::Num(m.nnz as f64)),
                    ("in_use", Json::Num(m.in_use as f64)),
                ])
            })
            .collect();
        Json::obj(vec![("matrices", Json::Arr(entries))])
    }
}

/// Writes one flight-recorder post-mortem into `dir` (created on
/// demand). Files are process-sequence-numbered so concurrent dumps —
/// or an engine dump racing a transport-side one — never collide.
pub(crate) fn write_flight_dump(
    dir: &Path,
    reason: &str,
    content: &str,
) -> std::io::Result<PathBuf> {
    static FLIGHT_SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("flight-{:06}-{reason}.jsonl", FLIGHT_SEQ.fetch_add(1, Relaxed)));
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Builds the [`Problem`] a `load_matrix` source describes.
fn build_problem(source: &MatrixSource) -> Result<Problem, String> {
    match source {
        MatrixSource::Problem(spec) => {
            // ProblemSpec::build panics on unreadable files; keep that a
            // structured error at the protocol boundary.
            std::panic::catch_unwind(|| spec.build())
                .map_err(|_| "problem spec failed to build (unreadable path?)".to_string())
        }
        MatrixSource::Coo { rows, cols, entries } => {
            let mut coo = sdc_sparse::CooMatrix::new(*rows, *cols);
            for &(i, j, v) in entries {
                if i >= *rows || j >= *cols {
                    return Err(format!("coo entry ({i},{j}) out of bounds {rows}x{cols}"));
                }
                coo.push(i, j, v);
            }
            Ok(Problem::with_ones_solution(format!("coo {rows}x{cols}"), coo.to_csr()))
        }
        MatrixSource::MatrixMarket(text) => {
            let a = sdc_sparse::io::read_matrix_market_from(std::io::Cursor::new(text.as_bytes()))
                .map_err(|e| format!("bad matrix market content: {e}"))?;
            Ok(Problem::with_ones_solution(format!("mtx inline {}x{}", a.nrows(), a.ncols()), a))
        }
    }
}

/// Runs one solve and renders its canonical result object. Pure: the
/// output depends only on `(problem, key, req)` — never on timing,
/// scheduling or thread count.
fn execute_solve(
    problem: &Problem,
    key: &str,
    req: &SolveRequest,
) -> Result<(Json, SolveSummary), String> {
    let op = problem.operator_tiered(req.format, req.kernel_tier);
    let op = &op;
    let b: &[f64] = req.b.as_deref().unwrap_or(&problem.b);
    // Built once per (matrix, kind) and cached on the registered
    // problem; an unfactorable matrix surfaces as a structured error.
    let precond = problem.precond(req.precond)?;
    // The Frobenius bound is an O(nnz) scan; build it only for the
    // solvers that wire a detector in (validate() rejects detector +
    // fgmres, which has no hook). A preconditioned iteration projects
    // `A·M⁻¹`, so its bound carries the `‖M⁻¹‖₂` estimate.
    let detector = || {
        req.detector.response().map(|resp| {
            if precond.is_none() {
                SdcDetector::with_frobenius_bound(&problem.a, resp)
            } else {
                SdcDetector::with_preconditioned_bound(&problem.a, precond, resp)
            }
        })
    };

    let (x, rep) = match req.solver {
        SolverKind::Gmres => {
            let cfg = GmresConfig {
                tol: req.tol,
                max_iters: req.maxit,
                restart: req.restart,
                lsq_policy: req.lsq.policy(),
                detector: detector(),
                ..Default::default()
            };
            gmres_solve_right_precond(op, b, None, &cfg, precond)
        }
        SolverKind::Fgmres => {
            let cfg = FgmresConfig {
                tol: req.tol,
                max_outer: req.maxit,
                lsq_policy: req.lsq.policy(),
                ..Default::default()
            };
            if precond.is_none() {
                let mut pm = sdc_gmres::fgmres::FixedPrecond(IdentityPrecond);
                sdc_gmres::fgmres::fgmres_solve(op, b, None, &cfg, &mut pm)
            } else {
                let mut pm = sdc_gmres::fgmres::FixedPrecond(precond);
                sdc_gmres::fgmres::fgmres_solve(op, b, None, &cfg, &mut pm)
            }
        }
        SolverKind::FtGmres => {
            let cfg = FtGmresConfig {
                outer: FgmresConfig { tol: req.tol, max_outer: req.maxit, ..Default::default() },
                inner_iters: req.inner_iters,
                inner_lsq_policy: req.lsq.policy(),
                inner_detector: detector(),
                ..Default::default()
            };
            match &req.fault {
                None => {
                    sdc_gmres::ftgmres::ftgmres_solve_precond(op, b, None, &cfg, precond, &NoFaults)
                }
                Some(f) => {
                    let point = CampaignPoint {
                        aggregate_iteration: f.aggregate,
                        inner_per_outer: req.inner_iters,
                        class: f.class,
                        position: f.position,
                    };
                    let inj = match f.target {
                        FaultTarget::Mgs => point.injector(),
                        // Opaque-preconditioner surface: corrupt a stored
                        // ILU factor slot, or flip one element of a
                        // transient Jacobi/Chebyshev application.
                        FaultTarget::Precond => match precond {
                            BuiltPrecond::Ilu0(ilu) => {
                                point.injector_precond_factor(ilu.factor_data().nnz())
                            }
                            _ => point.injector_precond_apply(problem.a.nrows()),
                        },
                    };
                    sdc_gmres::ftgmres::ftgmres_solve_precond(op, b, None, &cfg, precond, &inj)
                }
            }
        }
    };

    // Reliable true residual against the CSR source of truth.
    let mut r = vec![0.0; b.len()];
    sdc_gmres::operator::residual(&problem.a, b, &x, &mut r);
    let true_rel = sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(b).max(1e-300);

    let summary = SolveSummary::from_report(&rep);
    let mut fields = vec![
        ("matrix", Json::str(key)),
        ("solver", Json::str(req.solver.as_str())),
        ("resolved_format", Json::str(problem.resolved_format(req.format).as_str())),
        ("seed", Json::u64(req.seed)),
    ];
    // Like the request side, the tier appears in the result only when
    // non-default, keeping legacy response bytes unchanged.
    if req.kernel_tier != sdc_sparse::KernelTier::Strict {
        fields.push(("kernel_tier", Json::str(req.kernel_tier.as_str())));
    }
    fields.push(("summary", sdc_campaigns::summary_json(&summary)));
    fields.push(("true_rel_residual", Json::Num(true_rel)));
    if req.return_x {
        fields.push(("x", Json::Arr(x.iter().map(|&v| Json::Num(v)).collect())));
    }
    // fmt_f64 guarantees the serialized x parses back bit-identical;
    // assert the invariant cheaply on the first entry in debug builds.
    debug_assert!(
        x.is_empty() || fmt_f64(x[0]).parse::<f64>().unwrap().to_bits() == x[0].to_bits()
    );
    Ok((Json::obj(fields), summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig { threads: 0, queue_cap: 8, batch_max: 4, shard: None })
    }

    fn sharded(index: u64, count: u64) -> Engine {
        Engine::new(EngineConfig {
            threads: 0,
            queue_cap: 8,
            batch_max: 4,
            shard: Some(ShardSpec { index, count }),
        })
    }

    fn drive(e: &Engine, line: &str) -> (Vec<Json>, Json) {
        let mut events = Vec::new();
        let resp = e.handle_line(line, &mut |j| events.push(j.clone()));
        (events, resp)
    }

    #[test]
    fn load_solve_stats_list_flow() {
        let e = engine();
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"id\":1,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let key = r.field("result").unwrap().field("key").unwrap().as_str().unwrap().to_string();
        assert!(!r.field("result").unwrap().field("cached").unwrap().as_bool().unwrap());

        // Solve by alias and by key, gmres and ftgmres.
        for matref in ["p", key.as_str()] {
            for solver in ["gmres", "ftgmres"] {
                let (_, r) = drive(
                    &e,
                    &format!(
                        "{{\"cmd\":\"solve\",\"matrix\":\"{matref}\",\"solver\":\"{solver}\",\"tol\":1e-8,\"maxit\":200,\"inner_iters\":10}}"
                    ),
                );
                assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
                let summary = r.field("result").unwrap().field("summary").unwrap();
                assert!(summary.field("converged").unwrap().as_bool().unwrap());
                assert!(
                    r.field("result")
                        .unwrap()
                        .field("true_rel_residual")
                        .unwrap()
                        .as_f64()
                        .unwrap()
                        < 1e-6
                );
            }
        }

        let (_, r) = drive(&e, "{\"cmd\":\"stats\"}");
        let stats = r.field("result").unwrap();
        assert_eq!(stats.field("matrices").unwrap().as_usize().unwrap(), 1);
        assert_eq!(stats.field("requests").unwrap().field("solve").unwrap().as_usize().unwrap(), 4);
        assert_eq!(stats.field("threads").unwrap().as_usize().unwrap(), e.threads());
        assert_eq!(
            stats.field("solve_latency").unwrap().field("count").unwrap().as_usize().unwrap(),
            4
        );

        let (_, r) = drive(&e, "{\"cmd\":\"list\"}");
        let list = r.field("result").unwrap().field("matrices").unwrap();
        assert_eq!(list.as_arr().unwrap().len(), 1);
        assert_eq!(list.as_arr().unwrap()[0].field("key").unwrap().as_str().unwrap(), key);
        e.drain();
    }

    #[test]
    fn fastmath_solves_are_deterministic_and_isa_invariant() {
        use sdc_sparse::simd::{set_mode, test_mode_guard, SimdMode};
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        let solve = "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-8,\
             \"maxit\":200,\"inner_iters\":10,\"format\":\"csr\",\"kernel_tier\":\"fast_math\",\
             \"return_x\":true}";
        let _guard = test_mode_guard();
        set_mode(SimdMode::Scalar).unwrap();
        let (_, r1) = drive(&e, solve);
        assert!(r1.field("ok").unwrap().as_bool().unwrap(), "{}", r1.to_line());
        let result = r1.field("result").unwrap();
        // The tier is part of the result (elided only when strict).
        assert_eq!(result.field("kernel_tier").unwrap().as_str().unwrap(), "fast_math");
        assert!(result.field("summary").unwrap().field("converged").unwrap().as_bool().unwrap());
        // Deterministic run-to-run: the whole canonical frame repeats.
        let (_, r2) = drive(&e, solve);
        assert_eq!(r1.to_line(), r2.to_line());
        // Both fused bodies (scalar mul_add, AVX2 vfmadd) are correctly
        // rounded, so the response bytes are host/ISA-independent.
        if set_mode(SimdMode::Avx2).is_ok() {
            let (_, r3) = drive(&e, solve);
            assert_eq!(r1.to_line(), r3.to_line());
        }
        // Strict solves elide the tier field.
        let (_, rs) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-8,\
             \"maxit\":200,\"inner_iters\":10}",
        );
        assert!(rs.field("result").unwrap().get("kernel_tier").is_none());
        e.drain();
    }

    #[test]
    fn malformed_and_unknown_requests_return_structured_errors() {
        let e = engine();
        let (_, r) = drive(&e, "this is not json");
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "bad_request"
        );
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"nope\"}");
        assert_eq!(r.field("error").unwrap().field("code").unwrap().as_str().unwrap(), "not_found");
        assert_eq!(e.metrics.protocol_errors.get(), 1);
        e.drain();
    }

    #[test]
    fn faulted_ftgmres_solve_reports_injection_and_detection() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"restart_inner\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let s = r.field("result").unwrap().field("summary").unwrap();
        assert_eq!(s.field("injections").unwrap().as_usize().unwrap(), 1);
        assert!(s.field("detector_events").unwrap().as_usize().unwrap() >= 1);
        assert!(s.field("converged").unwrap().as_bool().unwrap());
        assert_eq!(e.metrics.injections_committed.get(), 1);
        e.drain();
    }

    #[test]
    fn timing_field_returns_duration_and_is_elided_by_default() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
        );
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"maxit\":60,\"timing\":true}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        assert!(r.field("result").unwrap().field("duration_us").unwrap().as_u64().is_ok());
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"maxit\":60}");
        assert!(r.field("result").unwrap().get("duration_us").is_none());
        e.drain();
    }

    #[test]
    fn trace_ids_leave_response_bytes_unchanged() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
        );
        let body = "\"id\":7,\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10";
        let (_, plain) = drive(&e, &format!("{{\"cmd\":\"solve\",{body}}}"));
        // An id-only trace field is pure correlation: same bytes out.
        let (_, tagged) =
            drive(&e, &format!("{{\"cmd\":\"solve\",{body},\"trace\":{{\"id\":\"req-1\"}}}}"));
        assert_eq!(plain.to_line(), tagged.to_line());
        // id + capture behaves exactly like trace:true — the result
        // grows the trace array and nothing else changes.
        let (_, captured) = drive(
            &e,
            &format!(
                "{{\"cmd\":\"solve\",{body},\"trace\":{{\"capture\":true,\"id\":\"req-2\"}}}}"
            ),
        );
        let (_, boolean) = drive(&e, &format!("{{\"cmd\":\"solve\",{body},\"trace\":true}}"));
        assert_eq!(captured.to_line(), boolean.to_line());
        let mut stripped = captured.clone();
        if let Json::Obj(resp) = &mut stripped {
            if let Some(Json::Obj(result)) = resp.get_mut("result") {
                assert!(result.remove("trace").is_some(), "capture returns the det trace");
            }
        }
        assert_eq!(plain.to_line(), stripped.to_line());
        e.drain();
    }

    #[test]
    fn fault_detection_writes_a_flight_post_mortem() {
        let e = engine();
        let dir =
            std::env::temp_dir().join(format!("sdc_flight_engine_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        e.set_flight_dir(dir.clone());
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        // A clean solve dumps nothing.
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"maxit\":60}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        assert!(!dir.exists(), "clean solves must not dump");
        // A detector-confirmed injection does.
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"restart_inner\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":12},\"trace\":{\"id\":\"req-9\"}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        e.drain();
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|f| f.unwrap().path()).collect();
        assert_eq!(files.len(), 1, "{files:?}");
        let name = files[0].file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("flight-") && name.ends_with("-fault_detected.jsonl"), "{name}");
        let content = std::fs::read_to_string(&files[0]).unwrap();
        let header = content.lines().next().unwrap();
        assert!(header.contains("\"ev\":\"flight.header\""), "{header}");
        assert!(header.contains("\"reason\":\"fault_detected\""), "{header}");
        assert!(header.contains("\"trace\":\"req-9\""), "{header}");
        assert!(
            content.contains("\"ev\":\"gmres.") || content.contains("\"ev\":\"fgmres."),
            "post-mortem retains solver events:\n{content}"
        );
        assert_eq!(e.metrics.flight_dumps.get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preconditioned_solves_converge_for_every_kind_and_solver() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        for solver in ["gmres", "fgmres", "ftgmres"] {
            for precond in ["jacobi", "ilu0", "chebyshev"] {
                let (_, r) = drive(
                    &e,
                    &format!(
                        "{{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"{solver}\",\"precond\":\"{precond}\",\"tol\":1e-8,\"maxit\":200,\"inner_iters\":10}}"
                    ),
                );
                assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
                let res = r.field("result").unwrap();
                assert!(
                    res.field("summary").unwrap().field("converged").unwrap().as_bool().unwrap(),
                    "{solver}+{precond}: {}",
                    r.to_line()
                );
                assert!(
                    res.field("true_rel_residual").unwrap().as_f64().unwrap() < 1e-6,
                    "{solver}+{precond}"
                );
            }
        }
        e.drain();
    }

    #[test]
    fn opaque_precond_fault_is_injected_and_survived() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":10}}",
        );
        // Transient per-apply flip (chebyshev, apply 3 of solve 1 — always
        // reached) and stored-factor corruption (ilu0, aggregate selects
        // the corrupted slot and is committed on the first apply).
        for (precond, aggregate) in [("chebyshev", 3), ("ilu0", 12)] {
            let (_, r) = drive(
                &e,
                &format!(
                    "{{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"precond\":\"{precond}\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"detector\":\"record\",\"fault\":{{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":{aggregate},\"target\":\"precond\"}}}}"
                ),
            );
            assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
            let s = r.field("result").unwrap().field("summary").unwrap();
            assert_eq!(
                s.field("injections").unwrap().as_usize().unwrap(),
                1,
                "{precond}: {}",
                r.to_line()
            );
            assert!(s.field("converged").unwrap().as_bool().unwrap(), "{precond}");
        }
        // target=precond without a preconditioner is a structured error.
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"solve\",\"matrix\":\"p\",\"solver\":\"ftgmres\",\"fault\":{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":1,\"target\":\"precond\"}}",
        );
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "bad_request"
        );
        e.drain();
    }

    #[test]
    fn inline_coo_and_mtx_sources_load_and_cache_hit() {
        let e = engine();
        let coo = "{\"cmd\":\"load_matrix\",\"coo\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0,4],[0,1,-1],[1,0,-1],[1,1,4]]}}";
        let (_, r1) = drive(&e, coo);
        assert!(r1.field("ok").unwrap().as_bool().unwrap(), "{}", r1.to_line());
        let key1 = r1.field("result").unwrap().field("key").unwrap().as_str().unwrap().to_string();

        // The same matrix as inline Matrix Market must hit the cache.
        let mtx = "%%MatrixMarket matrix coordinate real general\\n2 2 4\\n1 1 4.0\\n1 2 -1.0\\n2 1 -1.0\\n2 2 4.0\\n";
        let (_, r2) = drive(&e, &format!("{{\"cmd\":\"load_matrix\",\"mtx\":\"{mtx}\"}}"));
        assert!(r2.field("ok").unwrap().as_bool().unwrap(), "{}", r2.to_line());
        assert!(r2.field("result").unwrap().field("cached").unwrap().as_bool().unwrap());
        assert_eq!(r2.field("result").unwrap().field("key").unwrap().as_str().unwrap(), key1);
        assert_eq!(e.metrics.cache_hits.get(), 1);

        // Solve it with an explicit right-hand side and returned x.
        let (_, r) = drive(
            &e,
            &format!(
                "{{\"cmd\":\"solve\",\"matrix\":\"{key1}\",\"solver\":\"gmres\",\"b\":[3,3],\"tol\":1e-12,\"maxit\":10,\"return_x\":true}}"
            ),
        );
        let x = r.field("result").unwrap().field("x").unwrap();
        assert_eq!(x.as_arr().unwrap().len(), 2);
        for xi in x.as_arr().unwrap() {
            assert!((xi.as_f64().unwrap() - 1.0).abs() < 1e-10);
        }
        e.drain();
    }

    #[test]
    fn bad_rhs_and_bounds_are_structured_errors() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
        );
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"b\":[1,2,3]}");
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"coo\":{\"rows\":2,\"cols\":2,\"entries\":[[5,0,1]]}}",
        );
        assert!(!r.field("ok").unwrap().as_bool().unwrap());
        assert!(r
            .field("error")
            .unwrap()
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("out of bounds"));
        e.drain();
    }

    #[test]
    fn campaign_streams_records_and_scratch_artifact_is_removed() {
        let e = engine();
        let spec = sdc_campaigns::CampaignSpec {
            inner_iters: 6,
            outer_tol: 1e-8,
            outer_max: 60,
            stride: 9,
            ..sdc_campaigns::CampaignSpec::paper_shape(
                "served",
                vec![sdc_campaigns::ProblemSpec::Poisson { m: 8 }],
            )
        };
        let req =
            format!("{{\"cmd\":\"campaign\",\"id\":9,\"spec\":{}}}", spec.to_json().to_line());
        let (events, r) = drive(&e, &req);
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let total = r.field("result").unwrap().field("total_units").unwrap().as_usize().unwrap();
        assert!(r.field("result").unwrap().field("complete").unwrap().as_bool().unwrap());
        assert!(r.field("result").unwrap().get("artifact").is_none(), "scratch job leaks no path");
        // Streamed: header + 1 problem + 1 baseline + every unit.
        assert_eq!(events.len(), 3 + total);
        assert_eq!(events[0].field("event").unwrap().as_str().unwrap(), "record");
        assert_eq!(events[0].field("id").unwrap().as_usize().unwrap(), 9);
        assert_eq!(
            events[0].field("record").unwrap().field("kind").unwrap().as_str().unwrap(),
            "header"
        );
        e.drain();
    }

    #[test]
    fn shutdown_flags_and_rejects_followup_solves() {
        let e = engine();
        drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
        );
        let (_, r) = drive(&e, "{\"cmd\":\"shutdown\"}");
        assert!(r.field("ok").unwrap().as_bool().unwrap());
        assert!(e.shutdown_requested());
        e.drain();
        // Draining refuses ALL new work — solves, loads and campaigns —
        // not just scheduler submissions, so a drain cannot stall.
        for req in [
            "{\"cmd\":\"solve\",\"matrix\":\"p\"}",
            "{\"cmd\":\"load_matrix\",\"problem\":{\"kind\":\"poisson\",\"m\":6}}",
            "{\"cmd\":\"campaign\",\"spec\":{}}",
        ] {
            let (_, r) = drive(&e, req);
            let code = r.field("error").unwrap().field("code").unwrap();
            // The empty campaign spec would be bad_request when not
            // draining; the drain gate must win for real specs, but a
            // parse error may fire first — accept either loud refusal.
            assert!(
                matches!(code.as_str().unwrap(), "shutting_down" | "bad_request"),
                "{}",
                r.to_line()
            );
        }
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\"}");
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "shutting_down"
        );
        // Observation stays available while draining.
        let (_, r) = drive(&e, "{\"cmd\":\"stats\"}");
        assert!(r.field("result").unwrap().field("draining").unwrap().as_bool().unwrap());
    }

    #[test]
    fn async_path_produces_the_same_bytes_as_the_blocking_path() {
        let requests = [
            "{\"cmd\":\"load_matrix\",\"id\":1,\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
            "{\"cmd\":\"solve\",\"id\":2,\"matrix\":\"p\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":10,\"trace\":true}",
            "{\"cmd\":\"solve\",\"id\":3,\"matrix\":\"nope\"}",
            "not json at all",
            "{\"cmd\":\"replicate\",\"id\":4,\"matrix\":\"p\"}",
            "{\"cmd\":\"list\",\"id\":5}",
        ];
        let blocking: Vec<String> = {
            let e = engine();
            let out = requests
                .iter()
                .map(|line| {
                    let mut events = Vec::new();
                    let resp = e.handle_line(line, &mut |j| events.push(j.to_line()));
                    events.push(resp.to_line());
                    events.join("\n")
                })
                .collect();
            e.drain();
            out
        };
        let e = Arc::new(engine());
        let mut asynced = Vec::new();
        for line in requests {
            // One request in flight at a time — the per-connection
            // serialization the event loop enforces.
            let (tx, rx) = mpsc::channel::<(Json, bool)>();
            let tx = Mutex::new(tx);
            let emit: Emit = Arc::new(move |frame, last| {
                drop(tx.lock().unwrap().send((frame, last)));
            });
            e.handle_line_async(line, emit);
            let mut frames = Vec::new();
            loop {
                let (frame, last) = rx.recv().expect("final frame");
                frames.push(frame.to_line());
                if last {
                    break;
                }
            }
            asynced.push(frames.join("\n"));
        }
        e.drain();
        assert_eq!(blocking, asynced);
    }

    #[test]
    fn sharded_engine_enforces_ownership_and_serves_replicas() {
        // "p" hashes to some owner under 3 shards; build engines on
        // both sides of the split.
        let owner = shard_of("p", 3);
        let other = (owner + 1) % 3;

        // The owner accepts the named load and solves it.
        let e = sharded(owner, 3);
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        let key = r.field("result").unwrap().field("key").unwrap().as_str().unwrap().to_string();
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"maxit\":60}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        // Sharded stats report the identity.
        let (_, r) = drive(&e, "{\"cmd\":\"stats\"}");
        let shard = r.field("result").unwrap().field("shard").unwrap();
        assert_eq!(shard.field("index").unwrap().as_u64().unwrap(), owner);
        assert_eq!(shard.field("count").unwrap().as_u64().unwrap(), 3);
        // A replicate with no peers succeeds and echoes key + matrix.
        let (_, r) = drive(&e, "{\"cmd\":\"replicate\",\"matrix\":\"p\"}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        assert_eq!(r.field("result").unwrap().field("key").unwrap().as_str().unwrap(), key);
        e.drain();

        // A non-owner refuses the named load and misses with
        // wrong_shard (the owner's index in the message).
        let e = sharded(other, 3);
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
        );
        let code = r.field("error").unwrap().field("code").unwrap().as_str().unwrap().to_string();
        assert_eq!(code, "wrong_shard", "{}", r.to_line());
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\"}");
        assert_eq!(
            r.field("error").unwrap().field("code").unwrap().as_str().unwrap(),
            "wrong_shard"
        );
        assert!(r
            .field("error")
            .unwrap()
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains(&format!("shard {owner}/3")));
        // But the same load marked replica:true is accepted, after
        // which the non-owner serves the matrix directly.
        let (_, r) = drive(
            &e,
            "{\"cmd\":\"load_matrix\",\"name\":\"p\",\"replica\":true,\"problem\":{\"kind\":\"poisson\",\"m\":8}}",
        );
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        assert_eq!(r.field("result").unwrap().field("key").unwrap().as_str().unwrap(), key);
        let (_, r) = drive(&e, "{\"cmd\":\"solve\",\"matrix\":\"p\",\"maxit\":60}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        // An unknown reference owned *here* is not_found, not
        // wrong_shard.
        let ghost = (0..).map(|i| format!("ghost{i}")).find(|n| shard_of(n, 3) == other).unwrap();
        let (_, r) = drive(&e, &format!("{{\"cmd\":\"solve\",\"matrix\":\"{ghost}\"}}"));
        assert_eq!(r.field("error").unwrap().field("code").unwrap().as_str().unwrap(), "not_found");
        // Anonymous loads are accepted on any shard.
        let (_, r) =
            drive(&e, "{\"cmd\":\"load_matrix\",\"problem\":{\"kind\":\"poisson\",\"m\":5}}");
        assert!(r.field("ok").unwrap().as_bool().unwrap(), "{}", r.to_line());
        e.drain();
    }
}

//! The solve-service daemon.
//!
//! ```text
//! serve [--addr HOST] [--port N] [--threads N] [--queue-cap N] [--batch-max N]
//!       [--shard I/N] [--max-frame BYTES] [--span-log PATH] [--flight-dir DIR]
//! ```
//!
//! Binds `HOST:PORT` (default `127.0.0.1:0`, an OS-assigned port),
//! prints `listening on HOST:PORT` on stdout, and serves until a client
//! sends `shutdown` — then drains the solve queue and exits.
//!
//! `--shard I/N` makes this process shard `I` of an `N`-way cluster: it
//! owns the references that hash to `I` (`fnv1a64(ref) % N`), serves
//! replicas pushed to it via `replicate`, and answers `wrong_shard`
//! (with the owner index) for everything else. Start N identical
//! processes with `--shard 0/N .. (N-1)/N` and point
//! `solve-client cluster` at all of them.
//!
//! The worker-pool size is read **once** here, before the engine is
//! built (`--threads` > `SDC_THREADS` > hardware default), and reported
//! by `stats` for the lifetime of the process; no request can change it.

use sdc_campaigns::cli::Cli;
use sdc_server::{serve_with, Engine, EngineConfig, ServerOptions, ShardSpec};
use std::io::Write;
use std::sync::Arc;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

fn main() {
    let cli = Cli::new("serve", "long-lived solve service (newline-delimited JSON over TCP)")
        .opt("addr", "HOST", "bind address (default 127.0.0.1)")
        .opt("port", "N", "bind port; 0 = OS-assigned (default 0)")
        .opt("queue-cap", "N", "solve-queue capacity before busy rejections (default 64)")
        .opt("batch-max", "N", "max same-matrix solves per dispatch (default 8)")
        .opt("shard", "I/N", "serve as shard I of an N-way cluster (default: standalone)")
        .opt("max-frame", "BYTES", "largest accepted request frame (default 8388608)")
        .opt("span-log", "PATH", "append timing spans (JSONL) here; sdc_trace merges them")
        .opt("flight-dir", "DIR", "write flight-recorder post-mortems for bad solve endings")
        .with_threads()
        .with_simd();
    let p = cli.parse_env(1);
    // The one and only point where the pool size is set for this
    // process; Engine::new snapshots it and stats reports it. Same for
    // the SIMD kernel mode: resolved once at startup (`--simd` >
    // `SDC_SIMD` > detection), reported by stats, never per-request.
    p.apply_threads().unwrap_or_else(|e| fail(e));
    let isa = p.apply_simd().unwrap_or_else(|e| fail(e));

    let defaults = EngineConfig::default();
    let shard = p.value("shard").map(|s| ShardSpec::parse(s).unwrap_or_else(|e| fail(e)));
    let cfg = EngineConfig {
        threads: 0, // snapshot what apply_threads just established
        queue_cap: p
            .get::<usize>("queue-cap")
            .unwrap_or_else(|e| fail(e))
            .unwrap_or(defaults.queue_cap),
        batch_max: p
            .get::<usize>("batch-max")
            .unwrap_or_else(|e| fail(e))
            .unwrap_or(defaults.batch_max),
        shard,
    };
    let opt_defaults = ServerOptions::default();
    let opts = ServerOptions {
        max_frame: p
            .get::<usize>("max-frame")
            .unwrap_or_else(|e| fail(e))
            .unwrap_or(opt_defaults.max_frame),
        ..opt_defaults
    };
    let addr = p.value("addr").unwrap_or("127.0.0.1");
    let port = p.get::<u16>("port").unwrap_or_else(|e| fail(e)).unwrap_or(0);

    // One loop thread plus a bounded pool; the fd budget is the real
    // per-connection cost, so raise the soft limit up front.
    sdc_server::netpoll::ensure_fd_limit(16 * 1024);

    // The span log is a process-global subscriber: it sees every event
    // from the loop thread, dispatcher and workers — timing spans,
    // point events, and mirrored det events — each stamped with the
    // ambient trace id, in a file headed by this process's shard
    // identity so `sdc_trace merge` can tag cross-shard children. The
    // det *channel* itself stays pure: the mirror is a timing-class
    // sidecar and is never byte-diffed.
    if let Some(path) = p.value("span-log") {
        let (index, count) = shard.map_or((0, 1), |s| (s.index as usize, s.count as usize));
        let log = sdc_obs::spanlog::SpanLog::create(std::path::Path::new(path), index, count)
            .unwrap_or_else(|e| fail(format!("cannot open span log {path}: {e}")));
        sdc_obs::install_global(Arc::new(log));
    }

    let engine = Arc::new(Engine::new(cfg));
    if let Some(dir) = p.value("flight-dir") {
        engine.set_flight_dir(std::path::PathBuf::from(dir));
    }
    eprintln!(
        "serve: threads={} simd={} queue_cap={} batch_max={} shard={}",
        engine.threads(),
        isa,
        cfg.queue_cap,
        cfg.batch_max,
        shard.map_or("none".to_string(), |s| s.to_string()),
    );
    let handle = serve_with(engine, &format!("{addr}:{port}"), opts).unwrap_or_else(|e| fail(e));
    // The machine-readable line scripts and CI wait for.
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.wait();
    eprintln!("serve: drained, bye");
}

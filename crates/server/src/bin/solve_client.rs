//! The service client, script driver and load generator.
//!
//! ```text
//! solve-client send     --addr HOST:PORT [--file reqs.jsonl] [REQUEST_JSON ...]
//! solve-client cluster  --addrs A:P0,A:P1,... [--file reqs.jsonl] [REQUEST_JSON ...]
//! solve-client offline  [--threads N] [--file reqs.jsonl] [REQUEST_JSON ...]
//! solve-client route    --shards N REFERENCE [REFERENCE ...]
//! solve-client bench    --addr HOST:PORT [--connections N] [--requests M] [--m SIZE]
//!                       [--open-loop RATE_HZ] [--metrics-out PATH]
//! solve-client json-get PATH.TO.FIELD [--expect VALUE]
//! ```
//!
//! `send` plays request frames against a live server and prints every
//! response frame verbatim. `offline` plays the same frames through an
//! in-process [`sdc_server::Engine`] — no sockets — and prints the
//! same bytes; `diff <(send …) <(offline …)` is the serve-vs-offline
//! determinism check CI runs. Both assign sequential `id`s to frames
//! that lack one, so outputs line up.
//!
//! `cluster` is `send` against an N-shard cluster: every frame routes
//! to the shard owning its reference (`fnv1a64(ref) % N`), campaigns
//! pin to shard 0, and stats/metrics/list/shutdown broadcast. Routed
//! per-request output is byte-identical to `offline`, so the same diff
//! works at any shard count. `route` prints the owner index for each
//! reference (the same hash scripts can't easily compute).
//!
//! `bench` is the load generator: it registers a Poisson matrix, then
//! drives N connections × M FT-GMRES solves and prints latency
//! percentiles and throughput. `--open-loop RATE_HZ` switches from
//! closed-loop (each connection sends as fast as responses return) to a
//! fixed arrival schedule measured from intended send times — the
//! coordinated-omission-free view. `--metrics-out` additionally fetches
//! the server's `metrics` snapshot and dumps every series as a
//! `BENCH_JSON`-shaped JSONL file the `bench_gate` binary can gate
//! (counter series use a zero baseline as an exact-count gate).
//!
//! `json-get` is the jq-less JSON field extractor CI scripts use:
//! it reads JSON lines from stdin, resolves a dotted path (numeric
//! segments index arrays, and `name[i]` sugar indexes an array-valued
//! field, e.g. `result.trace[0]`) in each, prints the value (strings
//! raw, everything else canonical), and exits nonzero when the path is
//! missing or `--expect` does not match.
//!
//! `send` and `cluster` take `--trace-ids`, which tags every solve
//! frame lacking a `trace` field with `trace:{"id":"req-<id>"}`. The id
//! is pure correlation context: responses stay byte-identical, but
//! server span logs (`serve --span-log`) stamp it on every record of
//! that solve, which is what `sdc_trace merge` joins across shards.

use sdc_campaigns::cli::Cli;
use sdc_campaigns::json::Json;
use sdc_server::{
    load_gen, load_gen_open, protocol, shard_of, Client, ClusterClient, Engine, EngineConfig,
};
use std::io::{BufRead, Write};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("solve-client: {msg}");
    std::process::exit(1);
}

/// Request frames from `--file` (one per line) and/or positionals, with
/// sequential ids assigned to frames that lack one.
fn gather_requests(p: &sdc_campaigns::cli::Parsed) -> Vec<String> {
    let mut raw: Vec<String> = Vec::new();
    if let Some(path) = p.path("file") {
        let f = std::fs::File::open(&path)
            .unwrap_or_else(|e| fail(format_args!("cannot open {}: {e}", path.display())));
        for line in std::io::BufReader::new(f).lines() {
            let line = line.unwrap_or_else(|e| fail(e));
            if !line.trim().is_empty() {
                raw.push(line);
            }
        }
    }
    raw.extend(p.positional.iter().cloned());
    if raw.is_empty() {
        fail("no requests given (use --file and/or positional JSON frames)");
    }
    let mut next_id = 1u64;
    raw.iter()
        .map(|line| {
            let v = Json::parse(line)
                .unwrap_or_else(|e| fail(format_args!("bad request frame: {e}\n  in: {line}")));
            protocol::assign_id(v, &mut next_id).to_line()
        })
        .collect()
}

/// The `--trace-ids` switch: tags every solve frame that lacks a
/// `trace` field with `trace:{"id":"req-<id>"}` derived from the
/// frame's (possibly auto-assigned) id. Ids are correlation-only — the
/// response bytes do not change — so this is safe to combine with the
/// byte-diff legs of the smoke scripts.
fn tag_trace_ids(requests: Vec<String>) -> Vec<String> {
    requests
        .into_iter()
        .map(|line| {
            let mut v = Json::parse(&line).expect("validated by gather_requests");
            let is_solve = v.get("cmd").and_then(|c| c.as_str().ok()).is_some_and(|c| c == "solve");
            if !is_solve || v.get("trace").is_some() {
                return line;
            }
            let id = v.get("id").map(|i| i.to_line()).unwrap_or_default();
            if let Json::Obj(m) = &mut v {
                m.insert("trace".into(), Json::obj(vec![("id", Json::str(format!("req-{id}")))]));
            }
            v.to_line()
        })
        .collect()
}

fn send() {
    let cli = Cli::new("solve-client send", "play request frames against a live server")
        .opt("addr", "HOST:PORT", "server address (required)")
        .opt("file", "PATH", "request frames, one JSON object per line")
        .switch("trace-ids", "tag solve frames with trace:{id:req-<id>} for span correlation")
        .positional();
    let p = cli.parse_env(2);
    let addr = p
        .value("addr")
        .unwrap_or_else(|| fail("--addr is required"))
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad --addr: {e}")));
    let mut requests = gather_requests(&p);
    if p.has("trace-ids") {
        requests = tag_trace_ids(requests);
    }
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(e));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let frames = client.request_lines(req).unwrap_or_else(|e| fail(e));
        for frame in frames {
            writeln!(out, "{frame}").unwrap_or_else(|e| fail(e));
        }
    }
    out.flush().ok();
}

fn cluster() {
    let cli = Cli::new(
        "solve-client cluster",
        "play request frames against an N-shard cluster as one service",
    )
    .opt("addrs", "A:P0,A:P1,...", "comma-separated shard addresses, index order (required)")
    .opt("file", "PATH", "request frames, one JSON object per line")
    .switch("trace-ids", "tag solve frames with trace:{id:req-<id>} for span correlation")
    .positional();
    let p = cli.parse_env(2);
    let addrs: Vec<String> = p
        .value("addrs")
        .unwrap_or_else(|| fail("--addrs is required"))
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    let mut requests = gather_requests(&p);
    if p.has("trace-ids") {
        requests = tag_trace_ids(requests);
    }
    let mut cluster = ClusterClient::connect(&addrs).unwrap_or_else(|e| fail(e));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let frames = cluster.request_lines(req).unwrap_or_else(|e| fail(e));
        for frame in frames {
            writeln!(out, "{frame}").unwrap_or_else(|e| fail(e));
        }
    }
    out.flush().ok();
}

fn route() {
    let cli = Cli::new(
        "solve-client route",
        "print the owning shard index for each reference (fnv1a64(ref) % N)",
    )
    .opt("shards", "N", "cluster size (required)")
    .positional();
    let p = cli.parse_env(2);
    let shards = p
        .get::<u64>("shards")
        .unwrap_or_else(|e| fail(e))
        .unwrap_or_else(|| fail("--shards is required"));
    if shards == 0 {
        fail("--shards must be >= 1");
    }
    if p.positional.is_empty() {
        fail("at least one reference is required");
    }
    for reference in &p.positional {
        println!("{}", shard_of(reference, shards));
    }
}

fn offline() {
    let cli = Cli::new(
        "solve-client offline",
        "play request frames through an in-process engine (no server)",
    )
    .opt("file", "PATH", "request frames, one JSON object per line")
    .positional()
    .with_threads()
    .with_simd();
    let p = cli.parse_env(2);
    p.apply_threads().unwrap_or_else(|e| fail(e));
    p.apply_simd().unwrap_or_else(|e| fail(e));
    let requests = gather_requests(&p);
    let engine = Engine::new(EngineConfig::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let mut emit = |j: &Json| {
            writeln!(out, "{}", j.to_line()).unwrap_or_else(|e| fail(e));
        };
        let resp = engine.handle_line(req, &mut emit);
        writeln!(out, "{}", resp.to_line()).unwrap_or_else(|e| fail(e));
    }
    out.flush().ok();
    engine.drain();
}

fn bench() {
    let cli = Cli::new("solve-client bench", "load generator: N connections x M solves")
        .opt("addr", "HOST:PORT", "server address (required)")
        .opt("connections", "N", "concurrent connections (default 4)")
        .opt("requests", "M", "requests per connection (default 25)")
        .opt("m", "SIZE", "Poisson grid side for the workload matrix (default 24)")
        .opt("inner", "N", "inner iterations per outer (default 10)")
        .opt("open-loop", "RATE_HZ", "fixed aggregate arrival rate instead of closed-loop")
        .opt("metrics-out", "PATH", "dump the server metrics snapshot as BENCH_JSON-shaped JSONL")
        .with_precond();
    let p = cli.parse_env(2);
    let addr: std::net::SocketAddr = p
        .value("addr")
        .unwrap_or_else(|| fail("--addr is required"))
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad --addr: {e}")));
    let connections = p.get::<usize>("connections").unwrap_or_else(|e| fail(e)).unwrap_or(4);
    let requests = p.get::<usize>("requests").unwrap_or_else(|e| fail(e)).unwrap_or(25);
    let m = p.get::<usize>("m").unwrap_or_else(|e| fail(e)).unwrap_or(24);
    let inner = p.get::<usize>("inner").unwrap_or_else(|e| fail(e)).unwrap_or(10);
    let precond = p.precond().unwrap_or_else(|e| fail(e));

    let mut setup = Client::connect(addr).unwrap_or_else(|e| fail(e));
    let load = Json::parse(&format!(
        "{{\"cmd\":\"load_matrix\",\"name\":\"bench\",\"problem\":{{\"kind\":\"poisson\",\"m\":{m}}}}}"
    ))
    .expect("static frame");
    let resp = setup.call(&load).unwrap_or_else(|e| fail(e));
    if !resp.field("ok").and_then(|v| v.as_bool()).unwrap_or(false) {
        fail(format_args!("load_matrix failed: {}", resp.to_line()));
    }
    let precond_field = if precond == sdc_gmres::precond::PrecondKind::None {
        String::new()
    } else {
        format!(",\"precond\":\"{precond}\"")
    };
    let solve = Json::parse(&format!(
        "{{\"cmd\":\"solve\",\"matrix\":\"bench\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":{inner}{precond_field}}}"
    ))
    .expect("static frame");

    let open_loop = p.get::<f64>("open-loop").unwrap_or_else(|e| fail(e));
    let report = match open_loop {
        Some(rate) => {
            sdc_server::netpoll::ensure_fd_limit(connections as u64 + 64);
            eprintln!(
                "bench: {connections} connections x {requests} requests @ {rate} req/s open-loop, \
                 poisson m={m}, inner={inner}, precond={precond}"
            );
            load_gen_open(addr, connections, requests, rate, &solve).unwrap_or_else(|e| fail(e))
        }
        None => {
            eprintln!(
                "bench: {connections} connections x {requests} requests, poisson m={m}, \
                 inner={inner}, precond={precond}"
            );
            load_gen(addr, connections, requests, &solve).unwrap_or_else(|e| fail(e))
        }
    };
    println!("{}", report.render());

    if let Some(path) = p.path("metrics-out") {
        let metrics = Json::parse("{\"cmd\":\"metrics\"}").expect("static frame");
        let resp = setup.call(&metrics).unwrap_or_else(|e| fail(e));
        let series = resp
            .field("result")
            .and_then(|r| r.field("series"))
            .unwrap_or_else(|e| fail(format_args!("metrics response missing series: {e}")));
        let Json::Obj(map) = series else { fail("metrics series is not an object") };
        // One dump line per series, in the BENCH_JSON shape bench_gate
        // parses: a counter is a single \"sample\" whose value is the
        // count, so a zero baseline gates it as an exact count.
        let mut out = String::new();
        for (name, value) in map {
            let v = value.as_f64().unwrap_or_else(|e| fail(e));
            out.push_str(
                &Json::obj(vec![
                    ("id", Json::str(format!("metrics/{name}"))),
                    ("samples", Json::Num(1.0)),
                    ("min_us", Json::Num(v)),
                    ("median_us", Json::Num(v)),
                    ("mean_us", Json::Num(v)),
                ])
                .to_line(),
            );
            out.push('\n');
        }
        std::fs::write(&path, out)
            .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", path.display())));
        eprintln!("bench: wrote metrics snapshot -> {}", path.display());
    }
}

/// Resolves a dotted path in a JSON value; numeric segments index
/// arrays, everything else is an object key, and `name[i][j]` sugar
/// indexes array-valued fields (e.g. `result.trace[0]`,
/// `result.matrices[1].key`).
fn lookup<'a>(v: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = v;
    for seg in path.split('.') {
        let (name, indices) = split_indices(seg)?;
        if !name.is_empty() {
            cur = match (cur, name.parse::<usize>()) {
                (Json::Arr(items), Ok(i)) => items.get(i)?,
                _ => cur.get(name)?,
            };
        }
        for i in indices {
            let Json::Arr(items) = cur else { return None };
            cur = items.get(i)?;
        }
    }
    Some(cur)
}

/// Splits one path segment into its key and trailing `[i]` indices;
/// `None` on malformed brackets (unclosed, non-numeric).
fn split_indices(seg: &str) -> Option<(&str, Vec<usize>)> {
    let Some(start) = seg.find('[') else { return Some((seg, Vec::new())) };
    let mut indices = Vec::new();
    let mut rest = &seg[start..];
    while !rest.is_empty() {
        let inner = rest.strip_prefix('[')?;
        let close = inner.find(']')?;
        indices.push(inner[..close].parse().ok()?);
        rest = &inner[close + 1..];
    }
    Some((&seg[..start], indices))
}

fn json_get() {
    let cli = Cli::new(
        "solve-client json-get",
        "extract a dotted field path from JSON lines on stdin (jq-less CI checks)",
    )
    .opt("expect", "VALUE", "exit nonzero unless every extracted value equals VALUE")
    .positional();
    let p = cli.parse_env(2);
    let path = p
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| fail("a dotted field path is required (e.g. result.threads)"));
    let expect = p.value("expect");
    let stdin = std::io::stdin();
    let mut lines_seen = 0usize;
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_else(|e| fail(e));
        if line.trim().is_empty() {
            continue;
        }
        lines_seen += 1;
        let v = Json::parse(&line)
            .unwrap_or_else(|e| fail(format_args!("bad JSON on stdin: {e}\n  in: {line}")));
        let Some(found) = lookup(&v, &path) else {
            fail(format_args!("field '{path}' not found in: {line}"));
        };
        // Strings print raw so shell comparisons don't fight quoting;
        // everything else prints in canonical form.
        let rendered = match found {
            Json::Str(s) => s.clone(),
            other => other.to_line(),
        };
        println!("{rendered}");
        if let Some(want) = &expect {
            if rendered != *want {
                fail(format_args!("field '{path}' is '{rendered}', expected '{want}'"));
            }
        }
    }
    if lines_seen == 0 {
        fail("no JSON lines on stdin");
    }
}

fn main() {
    let sub = std::env::args().nth(1).unwrap_or_default();
    match sub.as_str() {
        "send" => send(),
        "cluster" => cluster(),
        "route" => route(),
        "offline" => offline(),
        "bench" => bench(),
        "json-get" => json_get(),
        other => {
            eprintln!(
                "usage: solve-client <send|cluster|route|offline|bench|json-get> [flags]\n\
                 (got '{other}'; each subcommand supports --help)"
            );
            std::process::exit(2);
        }
    }
}

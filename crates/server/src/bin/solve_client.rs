//! The service client, script driver and load generator.
//!
//! ```text
//! solve-client send    --addr HOST:PORT [--file reqs.jsonl] [REQUEST_JSON ...]
//! solve-client offline [--threads N] [--file reqs.jsonl] [REQUEST_JSON ...]
//! solve-client bench   --addr HOST:PORT [--connections N] [--requests M] [--m SIZE]
//! ```
//!
//! `send` plays request frames against a live server and prints every
//! response frame verbatim. `offline` plays the same frames through an
//! in-process [`sdc_server::Engine`] — no sockets — and prints the
//! same bytes; `diff <(send …) <(offline …)` is the serve-vs-offline
//! determinism check CI runs. Both assign sequential `id`s to frames
//! that lack one, so outputs line up.
//!
//! `bench` is the load generator: it registers a Poisson matrix, then
//! drives N connections × M FT-GMRES solves and prints latency
//! percentiles and throughput.

use sdc_campaigns::cli::Cli;
use sdc_campaigns::json::Json;
use sdc_server::{load_gen, protocol, Client, Engine, EngineConfig};
use std::io::{BufRead, Write};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("solve-client: {msg}");
    std::process::exit(1);
}

/// Request frames from `--file` (one per line) and/or positionals, with
/// sequential ids assigned to frames that lack one.
fn gather_requests(p: &sdc_campaigns::cli::Parsed) -> Vec<String> {
    let mut raw: Vec<String> = Vec::new();
    if let Some(path) = p.path("file") {
        let f = std::fs::File::open(&path)
            .unwrap_or_else(|e| fail(format_args!("cannot open {}: {e}", path.display())));
        for line in std::io::BufReader::new(f).lines() {
            let line = line.unwrap_or_else(|e| fail(e));
            if !line.trim().is_empty() {
                raw.push(line);
            }
        }
    }
    raw.extend(p.positional.iter().cloned());
    if raw.is_empty() {
        fail("no requests given (use --file and/or positional JSON frames)");
    }
    let mut next_id = 1u64;
    raw.iter()
        .map(|line| {
            let v = Json::parse(line)
                .unwrap_or_else(|e| fail(format_args!("bad request frame: {e}\n  in: {line}")));
            protocol::assign_id(v, &mut next_id).to_line()
        })
        .collect()
}

fn send() {
    let cli = Cli::new("solve-client send", "play request frames against a live server")
        .opt("addr", "HOST:PORT", "server address (required)")
        .opt("file", "PATH", "request frames, one JSON object per line")
        .positional();
    let p = cli.parse_env(2);
    let addr = p
        .value("addr")
        .unwrap_or_else(|| fail("--addr is required"))
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad --addr: {e}")));
    let requests = gather_requests(&p);
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(e));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let frames = client.request_lines(req).unwrap_or_else(|e| fail(e));
        for frame in frames {
            writeln!(out, "{frame}").unwrap_or_else(|e| fail(e));
        }
    }
    out.flush().ok();
}

fn offline() {
    let cli = Cli::new(
        "solve-client offline",
        "play request frames through an in-process engine (no server)",
    )
    .opt("file", "PATH", "request frames, one JSON object per line")
    .positional()
    .with_threads();
    let p = cli.parse_env(2);
    p.apply_threads().unwrap_or_else(|e| fail(e));
    let requests = gather_requests(&p);
    let engine = Engine::new(EngineConfig::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for req in &requests {
        let mut emit = |j: &Json| {
            writeln!(out, "{}", j.to_line()).unwrap_or_else(|e| fail(e));
        };
        let resp = engine.handle_line(req, &mut emit);
        writeln!(out, "{}", resp.to_line()).unwrap_or_else(|e| fail(e));
    }
    out.flush().ok();
    engine.drain();
}

fn bench() {
    let cli = Cli::new("solve-client bench", "load generator: N connections x M solves")
        .opt("addr", "HOST:PORT", "server address (required)")
        .opt("connections", "N", "concurrent connections (default 4)")
        .opt("requests", "M", "requests per connection (default 25)")
        .opt("m", "SIZE", "Poisson grid side for the workload matrix (default 24)")
        .opt("inner", "N", "inner iterations per outer (default 10)")
        .with_precond();
    let p = cli.parse_env(2);
    let addr: std::net::SocketAddr = p
        .value("addr")
        .unwrap_or_else(|| fail("--addr is required"))
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad --addr: {e}")));
    let connections = p.get::<usize>("connections").unwrap_or_else(|e| fail(e)).unwrap_or(4);
    let requests = p.get::<usize>("requests").unwrap_or_else(|e| fail(e)).unwrap_or(25);
    let m = p.get::<usize>("m").unwrap_or_else(|e| fail(e)).unwrap_or(24);
    let inner = p.get::<usize>("inner").unwrap_or_else(|e| fail(e)).unwrap_or(10);
    let precond = p.precond().unwrap_or_else(|e| fail(e));

    let mut setup = Client::connect(addr).unwrap_or_else(|e| fail(e));
    let load = Json::parse(&format!(
        "{{\"cmd\":\"load_matrix\",\"name\":\"bench\",\"problem\":{{\"kind\":\"poisson\",\"m\":{m}}}}}"
    ))
    .expect("static frame");
    let resp = setup.call(&load).unwrap_or_else(|e| fail(e));
    if !resp.field("ok").and_then(|v| v.as_bool()).unwrap_or(false) {
        fail(format_args!("load_matrix failed: {}", resp.to_line()));
    }
    let precond_field = if precond == sdc_gmres::precond::PrecondKind::None {
        String::new()
    } else {
        format!(",\"precond\":\"{precond}\"")
    };
    let solve = Json::parse(&format!(
        "{{\"cmd\":\"solve\",\"matrix\":\"bench\",\"solver\":\"ftgmres\",\"tol\":1e-7,\"maxit\":60,\"inner_iters\":{inner}{precond_field}}}"
    ))
    .expect("static frame");

    eprintln!(
        "bench: {connections} connections x {requests} requests, poisson m={m}, inner={inner}, precond={precond}"
    );
    let report = load_gen(addr, connections, requests, &solve).unwrap_or_else(|e| fail(e));
    println!("{}", report.render());
}

fn main() {
    let sub = std::env::args().nth(1).unwrap_or_default();
    match sub.as_str() {
        "send" => send(),
        "offline" => offline(),
        "bench" => bench(),
        other => {
            eprintln!(
                "usage: solve-client <send|offline|bench> [flags]\n\
                 (got '{other}'; each subcommand supports --help)"
            );
            std::process::exit(2);
        }
    }
}
